"""PL009 — RNG flow: no legacy globals, no Generators escaping their scope.

Two ways randomness breaks seeded reproducibility, both invisible to the
per-file PL001 check:

* **Legacy global-state calls** — ``np.random.rand`` / ``np.random.seed``
  and friends draw from one process-wide ``RandomState``.  Any two call
  sites share a stream, so adding a draw in one module silently shifts
  every draw after it in another; under the fleet gateway that couples
  sessions that must stay bit-independent.  The modern API
  (``np.random.default_rng(seed)`` returning a ``Generator``) has no
  global state and is the only sanctioned form.
* **Escaped Generators** — a seeded ``Generator`` bound at module level,
  on a class body, or imported across module boundaries is shared state
  with a consumption order: whichever caller draws first changes what the
  next caller sees.  Generators must live on the object that owns the
  stream (per session, per scenario) and be passed explicitly.

The fix for both is the same shape: derive a child seed
(``SeedSequence.spawn`` or the FNV-1a per-session scheme the fleet uses)
and construct the ``Generator`` inside the scope that consumes it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import LintConfig
from ..findings import Finding
from ..project import ModuleInfo, ProjectIndex, dotted_call_name
from .base import ProjectRule

__all__ = ["RngFlowRule"]

# numpy.random attributes that are part of the *modern* API surface and
# fine to reference: factories, classes, and bit generators — not the
# module-level convenience functions backed by the legacy global state.
_NP_RANDOM_OK = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "RandomState",  # explicit instance; flagged only as np.random.<fn>()
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

_LEGACY_MSG = (
    "legacy global-state call numpy.random.{leaf}(); this draws from the "
    "shared process-wide RandomState and couples every call site in the "
    "program — use a seeded np.random.default_rng(seed) Generator owned "
    "by the consuming scope"
)
_MODULE_RNG_MSG = (
    "module-level Generator '{name}' is shared mutable state: every "
    "importer draws from one stream, so call order changes the values "
    "each consumer sees — construct the Generator inside the session or "
    "scenario that owns it (spawn child seeds if several are needed)"
)
_CLASS_RNG_MSG = (
    "class-level Generator '{cls}.{name}' is shared by all instances; "
    "move it to the instance (seeded in __init__) so each session owns "
    "its stream"
)
_IMPORT_RNG_MSG = (
    "importing Generator '{symbol}' from {module} shares one RNG stream "
    "across module boundaries — import a seed (or a factory) and build "
    "the Generator locally instead"
)


class RngFlowRule(ProjectRule):
    """Flag legacy numpy RNG globals and Generators that escape scope."""

    code = "PL009"
    name = "rng-stays-in-scope"
    description = (
        "no legacy np.random.* global-state calls; seeded Generators must "
        "not be bound at module/class level or imported across modules"
    )

    def check_project(
        self, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        """Yield findings over every indexed module."""
        for name in sorted(index.modules):
            info = index.modules[name]
            yield from self._check_legacy_calls(info)
            yield from self._check_escaped_generators(index, info)

    # ------------------------------------------------------------------

    def _check_legacy_calls(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.file.tree):
            if not isinstance(node, ast.Call):
                continue
            full = self._expand(info, dotted_call_name(node.func))
            if full is None or not full.startswith("numpy.random."):
                continue
            leaf = full.rpartition(".")[2]
            if leaf not in _NP_RANDOM_OK:
                yield self.finding(
                    info, node, _LEGACY_MSG.format(leaf=leaf)
                )

    @staticmethod
    def _expand(info: ModuleInfo, dotted: str | None) -> str | None:
        """Rewrite a call name's head through the module's import maps."""
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = info.import_aliases.get(head) or info.from_imports.get(
            head
        )
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def _check_escaped_generators(
        self, index: ProjectIndex, info: ModuleInfo
    ) -> Iterator[Finding]:
        for name in sorted(info.module_rng):
            yield self.finding(
                info,
                info.module_rng[name],
                _MODULE_RNG_MSG.format(name=name),
            )
        for cls, attr, node in info.class_rng:
            yield self.finding(
                info, node, _CLASS_RNG_MSG.format(cls=cls, name=attr)
            )
        yield from self._check_rng_imports(index, info)

    def _check_rng_imports(
        self, index: ProjectIndex, info: ModuleInfo
    ) -> Iterator[Finding]:
        for node in ast.walk(info.file.tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                target = info.from_imports.get(local)
                if target is None:
                    continue
                module, _, symbol = target.rpartition(".")
                origin = index.modules.get(module)
                if origin is not None and symbol in origin.module_rng:
                    yield self.finding(
                        info,
                        node,
                        _IMPORT_RNG_MSG.format(
                            symbol=symbol, module=module
                        ),
                    )
