"""Rule registry: one instance of every shipped rule, in code order.

Two registries, matching the two engine passes: ``ALL_RULES`` holds the
per-file rules (each judged from one module's AST), ``PROJECT_RULES``
holds the cross-module rules that run over the pass-1
:class:`~phaselint.project.ProjectIndex`.
"""

from .base import ProjectRule, Rule, RuleContext
from .pl001_randomness import UnseededRandomnessRule
from .pl002_ndarray import BareNdarrayRule
from .pl003_units import UnitSuffixRule
from .pl004_floateq import FloatEqualityRule
from .pl005_mutable_defaults import MutableDefaultRule
from .pl006_public_api import PublicApiRule
from .pl007_exceptions import BroadExceptRule
from .pl008_unordered_iteration import UnorderedIterationRule
from .pl009_rng_flow import RngFlowRule
from .pl010_shared_state import SharedStateRule
from .pl011_float_reduction import FloatReductionRule

ALL_RULES: tuple[Rule, ...] = (
    UnseededRandomnessRule(),
    BareNdarrayRule(),
    UnitSuffixRule(),
    FloatEqualityRule(),
    MutableDefaultRule(),
    PublicApiRule(),
    BroadExceptRule(),
)

PROJECT_RULES: tuple[ProjectRule, ...] = (
    UnorderedIterationRule(),
    RngFlowRule(),
    SharedStateRule(),
    FloatReductionRule(),
)

__all__ = [
    "ALL_RULES",
    "PROJECT_RULES",
    "Rule",
    "RuleContext",
    "ProjectRule",
    "UnseededRandomnessRule",
    "BareNdarrayRule",
    "UnitSuffixRule",
    "FloatEqualityRule",
    "MutableDefaultRule",
    "PublicApiRule",
    "BroadExceptRule",
    "UnorderedIterationRule",
    "RngFlowRule",
    "SharedStateRule",
    "FloatReductionRule",
]
