"""Rule registry: one instance of every shipped rule, in code order."""

from .base import Rule, RuleContext
from .pl001_randomness import UnseededRandomnessRule
from .pl002_ndarray import BareNdarrayRule
from .pl003_units import UnitSuffixRule
from .pl004_floateq import FloatEqualityRule
from .pl005_mutable_defaults import MutableDefaultRule
from .pl006_public_api import PublicApiRule
from .pl007_exceptions import BroadExceptRule

ALL_RULES: tuple[Rule, ...] = (
    UnseededRandomnessRule(),
    BareNdarrayRule(),
    UnitSuffixRule(),
    FloatEqualityRule(),
    MutableDefaultRule(),
    PublicApiRule(),
    BroadExceptRule(),
)

__all__ = [
    "ALL_RULES",
    "Rule",
    "RuleContext",
    "UnseededRandomnessRule",
    "BareNdarrayRule",
    "UnitSuffixRule",
    "FloatEqualityRule",
    "MutableDefaultRule",
    "PublicApiRule",
    "BroadExceptRule",
]
