"""PL010 — shared mutable state reachable from the service/fleet paths.

The fleet gateway multiplexes up to a thousand sessions through one
process.  Session isolation (the ``check_isolation`` byte-compare in
`repro.service.fleet.chaos`) only holds if no state is shared between
them — a module-level cache, a class-body ``dict``, or any mutable
container bound outside an instance is a channel through which session A
can change what session B computes.

Pass 1 records every module- and class-level mutable binding; this rule
flags the ones living in modules *reachable from the configured service
roots* (``shared-state-roots`` in ``[tool.phaselint]``; empty means the
whole project), following intra-project import edges — a cache in
``repro.dsp`` is just as reachable from a fleet session as one in the
gateway itself.

Exemptions keep the signal honest:

* constant-convention names (``ALL_CAPS``) — read-only lookup tables by
  convention; mutating one is a review problem, not a dataflow one;
* dataclass field specs and Enum members (already excluded in pass 1);
* ``__all__`` (excluded in pass 1).

Fixes: move the state onto the instance that owns it, freeze it
(``tuple`` / ``frozenset`` / ``MappingProxyType``), or — for genuinely
process-wide registries written once at import time — justify it::

    _REGISTRY: dict[str, Handler] = {}  # phaselint: justify=PL010 -- populated only by import-time decorators
"""

from __future__ import annotations

from typing import Iterator

from ..config import LintConfig
from ..findings import Finding
from ..project import ProjectIndex
from .base import ProjectRule

__all__ = ["SharedStateRule"]

_MODULE_MSG = (
    "module-level mutable {kind} '{name}' in {module} is shared across "
    "all sessions reaching this module; move it onto the owning instance, "
    "freeze it, or justify with "
    "'# phaselint: justify=PL010 -- <why sharing is safe>'"
)
_CLASS_MSG = (
    "class-level mutable {kind} '{cls}.{name}' in {module} is shared by "
    "every instance; initialize it per-instance in __init__ or justify "
    "with '# phaselint: justify=PL010 -- <why sharing is safe>'"
)


def _is_constant_name(name: str) -> bool:
    """Constant by convention: ``ALL_CAPS`` (leading underscore allowed)."""
    bare = name.lstrip("_")
    return bool(bare) and bare == bare.upper()


class SharedStateRule(ProjectRule):
    """Flag mutable module/class state on service-reachable paths."""

    code = "PL010"
    name = "no-shared-mutable-state"
    description = (
        "mutable module/class-level bindings reachable from the service "
        "roots are cross-session channels; own them per instance, freeze "
        "them, or justify the sharing"
    )

    def check_project(
        self, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        """Yield findings for every shared binding in reachable modules."""
        reachable = index.reachable_modules(config.shared_state_roots)
        for name in sorted(reachable):
            info = index.modules.get(name)
            if info is None:
                continue
            for binding in sorted(info.module_mutables):
                if _is_constant_name(binding):
                    continue
                node, kind = info.module_mutables[binding]
                yield self.finding(
                    info,
                    node,
                    _MODULE_MSG.format(
                        kind=kind, name=binding, module=info.name
                    ),
                )
            for cls, attr, node, kind in info.class_mutables:
                if _is_constant_name(attr):
                    continue
                yield self.finding(
                    info,
                    node,
                    _CLASS_MSG.format(
                        kind=kind, cls=cls, name=attr, module=info.name
                    ),
                )
