"""PL008 — unordered-collection iteration must not feed an ordered sink.

Byte-reproducible runs are this codebase's correctness substrate: event
logs, metrics snapshots, and estimate streams are diffed byte-for-byte
across seeded runs and across the fleet's solo-vs-fleet isolation checks.
Any iteration whose order is not an explicit contract threatens that:

* **sets** iterate in hash order — genuinely nondeterministic across
  processes for strings (hash randomization) and across runs for objects
  (id-based hashes);
* **dict views** (``.values()`` / ``.keys()`` / ``.items()``) iterate in
  insertion order — deterministic per-process, but the determinism then
  hangs on an *implicit* invariant ("this dict is only ever populated in
  admission order") that the next refactor silently breaks.

The rule fires when such an iteration feeds an **ordered sink** — list
building (``append``/``extend``), accumulation (augmented assignment),
generation (``yield``), serialization (``json.dumps``, ``write``), or
event/metric emission (``record``/``count``/``observe``/``gauge_set``) —
including *transitively*: a loop body that calls a project function whose
body (or whose callees' bodies, via the pass-1 call graph) emits into an
ordered artifact is flagged too.

Fixes, in order of preference: wrap the iterable in ``sorted(...)``; or,
for dict views whose insertion order genuinely *is* the contract, make
the invariant explicit and auditable on the line::

    for s in self._sessions.values():  # phaselint: insertion-order -- admission order is the scheduling contract

An ``insertion-order`` annotation without a justification is ignored.
Order-insensitive consumption (``len``, ``any``, ``min``/``max``,
``sorted`` itself, membership tests) never fires.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import LintConfig
from ..findings import Finding
from ..project import ModuleInfo, ProjectIndex, dotted_call_name
from .base import ProjectRule
from .scopes import (
    ORDER_INSENSITIVE_CONSUMERS,
    ScopeTypes,
    classify_unordered,
    iter_own_statements,
    scope_for_function,
)

__all__ = ["UnorderedIterationRule"]

_SET_LOOP_MSG = (
    "iterating a set in a loop that feeds an ordered sink ({sink}); set "
    "order is hash-dependent and changes across runs — iterate "
    "sorted(...) instead"
)
_VIEW_LOOP_MSG = (
    "iterating {view} in a loop that feeds an ordered sink ({sink}); the "
    "output order silently depends on insertion order — iterate "
    "sorted(...) or annotate the invariant with "
    "'# phaselint: insertion-order -- <why the order is a contract>'"
)
_SET_EXPR_MSG = (
    "{context} over a set fixes a hash-dependent order into an ordered "
    "result; wrap the set in sorted(...)"
)


def _unwrap_sorted(expr: ast.expr) -> ast.expr | None:
    """The argument of a ``sorted(...)`` / ``list(sorted(...))`` wrapper."""
    if isinstance(expr, ast.Call):
        name = dotted_call_name(expr.func)
        if name is not None and name.rpartition(".")[2] == "sorted":
            return expr
    return None


class _LoopSinkScanner(ast.NodeVisitor):
    """Find the first ordered sink inside one loop body.

    Direct sinks (emission/serialization calls, ``yield``, augmented
    assignment) and transitive ones (calls into project functions the
    pass-1 fixpoint marked as emitting ordered output) both count.
    Nested function/class definitions are skipped — their bodies are not
    executed by this loop.
    """

    _DIRECT_METHODS = {
        "append",
        "extend",
        "insert",
        "appendleft",
        "record",
        "count",
        "observe",
        "gauge_set",
        "emit",
        "write",
        "writelines",
        "writerow",
        "put",
    }
    _DIRECT_CALLS = {"print", "json.dump", "json.dumps"}

    def __init__(
        self,
        index: ProjectIndex,
        module: str,
        class_prefix: str,
    ) -> None:
        self._index = index
        self._module = module
        self._class_prefix = class_prefix
        self.sink: str | None = None

    def scan(self, body: list[ast.stmt]) -> str | None:
        for stmt in body:
            self.visit(stmt)
            if self.sink is not None:
                break
        return self.sink

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return None

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return None

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return None

    def visit_Yield(self, node: ast.Yield) -> None:
        self.sink = self.sink or "yield"

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self.sink = self.sink or "yield"

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.sink = self.sink or "accumulation"
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self.sink is None:
            name = dotted_call_name(node.func)
            if name is not None:
                leaf = name.rpartition(".")[2]
                if name in self._DIRECT_CALLS or (
                    "." in name and leaf in self._DIRECT_METHODS
                ):
                    self.sink = f"{leaf}()"
                elif self._index.emits_ordered(
                    self._module, self._class_prefix, name
                ):
                    self.sink = f"{name}() [transitive]"
        self.generic_visit(node)


class UnorderedIterationRule(ProjectRule):
    """Flag unordered iteration that determines ordered output."""

    code = "PL008"
    name = "no-unordered-iteration-into-ordered-sink"
    description = (
        "set / dict-view iteration feeding an ordered sink (append, "
        "accumulation, serialization, emission) must be sorted or carry "
        "an insertion-order justification"
    )

    def check_project(
        self, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        """Yield one finding per offending iteration site."""
        for name in sorted(index.modules):
            info = index.modules[name]
            yield from self._check_module(index, info)

    # ------------------------------------------------------------------

    def _check_module(
        self, index: ProjectIndex, info: ModuleInfo
    ) -> Iterator[Finding]:
        # Module body first (loops at import time), then every function.
        module_scope = scope_for_function(info, None, None)
        yield from self._check_body(
            index, info, info.file.tree.body, module_scope, ""
        )
        for local, fn in info.functions.items():
            enclosing_class = self._enclosing_class(info, local)
            scope = scope_for_function(info, fn.node, enclosing_class)
            class_prefix = (
                local.rpartition(".")[0] + "." if "." in local else ""
            )
            yield from self._check_body(
                index, info, fn.node.body, scope, class_prefix
            )

    @staticmethod
    def _enclosing_class(
        info: ModuleInfo, local: str
    ) -> ast.ClassDef | None:
        if "." not in local:
            return None
        class_name = local.split(".")[0]
        for stmt in info.file.tree.body:
            if isinstance(stmt, ast.ClassDef) and stmt.name == class_name:
                return stmt
        return None

    def _check_body(
        self,
        index: ProjectIndex,
        info: ModuleInfo,
        body: list[ast.stmt],
        scope: ScopeTypes,
        class_prefix: str,
    ) -> Iterator[Finding]:
        for stmt in iter_own_statements(body):
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                yield from self._check_loop(
                    index, info, stmt, scope, class_prefix
                )
            for expr in ast.walk(stmt):
                if isinstance(expr, ast.ListComp):
                    yield from self._check_comprehension(info, expr, scope)
                elif isinstance(expr, ast.Call):
                    yield from self._check_consumer_call(info, expr, scope)

    def _check_loop(
        self,
        index: ProjectIndex,
        info: ModuleInfo,
        loop: ast.For | ast.AsyncFor,
        scope: ScopeTypes,
        class_prefix: str,
    ) -> Iterator[Finding]:
        if _unwrap_sorted(loop.iter) is not None:
            return
        kind = classify_unordered(loop.iter, scope)
        if kind is None:
            return
        scanner = _LoopSinkScanner(index, info.name, class_prefix)
        sink = scanner.scan(loop.body)
        if sink is None:
            return
        if kind == "set":
            yield self.finding(info, loop, _SET_LOOP_MSG.format(sink=sink))
        else:
            view = self._view_name(loop.iter)
            yield self.finding(
                info, loop, _VIEW_LOOP_MSG.format(view=view, sink=sink)
            )

    @staticmethod
    def _view_name(expr: ast.expr) -> str:
        if isinstance(expr, ast.Call) and isinstance(
            expr.func, ast.Attribute
        ):
            return f".{expr.func.attr}()"
        return "a dict view"

    def _check_comprehension(
        self, info: ModuleInfo, comp: ast.ListComp, scope: ScopeTypes
    ) -> Iterator[Finding]:
        # A list literal freezes its element order; only genuinely
        # hash-ordered sources (sets) are flagged here — dict views in a
        # comprehension inherit insertion order, which stays a per-loop
        # judgement (see the For handling) rather than a blanket ban.
        for gen in comp.generators:
            if classify_unordered(gen.iter, scope) == "set":
                yield self.finding(
                    info,
                    comp,
                    _SET_EXPR_MSG.format(context="a list comprehension"),
                )
                return

    def _check_consumer_call(
        self, info: ModuleInfo, call: ast.Call, scope: ScopeTypes
    ) -> Iterator[Finding]:
        name = dotted_call_name(call.func)
        if name is None:
            return
        leaf = name.rpartition(".")[2]
        if leaf in ORDER_INSENSITIVE_CONSUMERS:
            return
        if leaf in ("list", "tuple"):
            contexts = {"list": "list(...)", "tuple": "tuple(...)"}
            for arg in call.args[:1]:
                if self._is_set_or_set_genexp(arg, scope):
                    yield self.finding(
                        info,
                        call,
                        _SET_EXPR_MSG.format(context=contexts[leaf]),
                    )
        elif leaf == "join" and isinstance(call.func, ast.Attribute):
            for arg in call.args[:1]:
                if self._is_set_or_set_genexp(arg, scope):
                    yield self.finding(
                        info,
                        call,
                        _SET_EXPR_MSG.format(context="str.join(...)"),
                    )

    @staticmethod
    def _is_set_or_set_genexp(arg: ast.expr, scope: ScopeTypes) -> bool:
        if classify_unordered(arg, scope) == "set":
            return True
        if isinstance(arg, ast.GeneratorExp):
            return any(
                classify_unordered(gen.iter, scope) == "set"
                for gen in arg.generators
            )
        return False
