"""Shared dataflow helpers for the determinism rules (PL008–PL011).

The unordered-iteration rules need one judgement call answered over and
over: *is this expression an unordered collection?*  The helpers here
answer it with a deliberately modest, predictable inference — syntactic
set constructors, set-annotated parameters and locals, set-typed ``self``
attributes gathered from the owning class, and module-level set bindings
from the pass-1 symbol table.  No attempt is made to chase types across
call boundaries; a rule that cannot be explained in one sentence gets
argued with instead of fixed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from ..project import (
    ModuleInfo,
    annotation_is_set,
    dotted_call_name,
    is_set_constructor,
)

__all__ = [
    "ScopeTypes",
    "class_set_attrs",
    "scope_for_function",
    "classify_unordered",
    "iter_own_statements",
    "ORDER_INSENSITIVE_CONSUMERS",
]

# Builtins whose result does not depend on iteration order (or that
# re-establish an order themselves): consuming an unordered iterable in
# these is fine.  `sum` is deliberately absent — that is PL011's beat.
ORDER_INSENSITIVE_CONSUMERS = {
    "sorted",
    "len",
    "any",
    "all",
    "min",
    "max",
    "set",
    "frozenset",
    "dict",
    "Counter",
    "iter",
    "next",
    "enumerate",
    "zip",
}


@dataclass
class ScopeTypes:
    """Set-typed names visible to one function (or the module body).

    Attributes:
        set_locals: Parameter and local-variable names inferred set-typed.
        set_self_attrs: ``self.<attr>`` names set-typed on the enclosing
            class (from annotations and ``self.x = set()`` assignments in
            any method).
        module_sets: Module-level names inferred set-typed.
    """

    set_locals: set[str] = field(default_factory=set)
    set_self_attrs: set[str] = field(default_factory=set)
    module_sets: set[str] = field(default_factory=set)


def class_set_attrs(node: ast.ClassDef) -> set[str]:
    """Attribute names set-typed on ``node`` (annotations + assignments)."""
    attrs: set[str] = set()
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            if annotation_is_set(stmt.annotation):
                attrs.add(stmt.target.id)
        elif isinstance(stmt, ast.Assign):
            if is_set_constructor(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        attrs.add(target.id)
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for stmt in ast.walk(method):
            target = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, None
            else:
                continue
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                if value is not None and is_set_constructor(value):
                    attrs.add(target.attr)
                elif isinstance(stmt, ast.AnnAssign) and annotation_is_set(
                    stmt.annotation
                ):
                    attrs.add(target.attr)
    return attrs


def scope_for_function(
    info: ModuleInfo,
    node: ast.FunctionDef | ast.AsyncFunctionDef | None,
    enclosing_class: ast.ClassDef | None,
) -> ScopeTypes:
    """Infer the set-typed names visible inside ``node``.

    ``node=None`` builds the scope of the module body itself.
    """
    scope = ScopeTypes(module_sets=set(info.set_names))
    if enclosing_class is not None:
        scope.set_self_attrs = class_set_attrs(enclosing_class)
    if node is None:
        return scope
    args = node.args
    for arg in (
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
    ):
        if annotation_is_set(arg.annotation):
            scope.set_locals.add(arg.arg)
    for stmt in iter_own_statements(node.body):
        if isinstance(stmt, ast.Assign):
            if is_set_constructor(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        scope.set_locals.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            if annotation_is_set(stmt.annotation) or (
                stmt.value is not None and is_set_constructor(stmt.value)
            ):
                scope.set_locals.add(stmt.target.id)
    return scope


def iter_own_statements(body: list[ast.stmt]) -> Iterator[ast.stmt]:
    """All statements in ``body``, not descending into nested defs."""
    stack: list[ast.stmt] = list(body)
    while stack:
        stmt = stack.pop()
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield stmt
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)


def classify_unordered(expr: ast.expr, scope: ScopeTypes) -> str | None:
    """``"set"`` / ``"dict-view"`` when ``expr`` iterates unordered.

    ``dict-view`` covers ``.values()`` / ``.keys()`` / ``.items()`` —
    deterministic per-process (insertion order) but an *implicit*
    invariant; ``set`` covers genuinely hash-ordered collections.
    """
    if isinstance(expr, ast.Call):
        func = expr.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("values", "keys", "items")
            and not expr.args
            and not expr.keywords
        ):
            return "dict-view"
        name = dotted_call_name(func)
        if name is not None and name.rpartition(".")[2] in (
            "set",
            "frozenset",
        ):
            return "set"
        return None
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(expr, ast.Name):
        if expr.id in scope.set_locals or expr.id in scope.module_sets:
            return "set"
        return None
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        if expr.attr in scope.set_self_attrs:
            return "set"
        return None
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        left = classify_unordered(expr.left, scope)
        right = classify_unordered(expr.right, scope)
        if left == "set" or right == "set":
            return "set"
    return None
