"""PL001 — every stochastic or wall-clock path must be explicitly seeded.

Reproducibility is a correctness property for this codebase: traces,
benchmarks, and figure scripts must replay bit-identically.  The rule
therefore bans the three ways nondeterminism leaks in:

* the legacy NumPy global RNG (``np.random.normal(...)``, ``np.random.seed``),
* ``np.random.default_rng()`` without a seed argument,
* the stdlib ``random`` module (except seeded ``random.Random(seed)``), and
* wall-clock reads (``time.time``, ``datetime.now``, …) that smuggle the
  current time into data or seeds.

Entry points that legitimately need fresh entropy or real timestamps (CLIs,
latency benchmarks) are exempted via ``allow-unseeded`` globs in
``[tool.phaselint]``.

Separately, inside ``wall-clock-scope`` (the library tree) the ``time``
module is banned *outright* — even ``perf_counter`` — except in the
sanctioned ``wall-clock-shims`` files: durations there must be measured
through an injected ``repro.obs.clock.Clock`` so simulated-time runs stay
deterministic.  This ban is independent of ``allow-unseeded``: a CLI may
seed from the OS yet still must not import ``time`` directly.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import Rule, RuleContext, dotted_name

__all__ = ["UnseededRandomnessRule"]

# Attribute chains that read the wall clock.  perf_counter/monotonic are
# deliberately absent: measuring a duration is deterministic-irrelevant.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "date.today",
}

# np.random attributes that are fine to reference: the Generator API itself.
_NP_RANDOM_OK = {"Generator", "BitGenerator", "SeedSequence", "default_rng"}

_WALL_CLOCK_FROM_IMPORTS = {("time", "time"), ("time", "time_ns")}


def _is_unseeded_default_rng(call: ast.Call) -> bool:
    """``default_rng()`` with no argument, or an explicit ``None`` seed."""
    if not call.args and not call.keywords:
        return True
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    return any(
        kw.arg == "seed"
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is None
        for kw in call.keywords
    )


class UnseededRandomnessRule(Rule):
    """Ban global-RNG, unseeded-generator, and wall-clock nondeterminism."""

    code = "PL001"
    name = "no-unseeded-randomness"
    description = (
        "stochastic and wall-clock calls must flow through a seeded "
        "np.random.Generator (or an allowlisted entry point)"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        """Yield a finding per nondeterministic call or import."""
        shim_banned = ctx.config.wall_clock_banned(ctx.posix_path)
        exempt = ctx.config.unseeded_allowed(ctx.posix_path)
        if exempt and not shim_banned:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                if shim_banned:
                    yield from self._check_time_import(ctx, node)
            elif isinstance(node, ast.ImportFrom):
                if shim_banned and node.module == "time":
                    yield self._shim_finding(ctx, node, "'from time import ...'")
                    continue
                if not exempt:
                    yield from self._check_import_from(ctx, node)
            elif isinstance(node, ast.Call) and not exempt:
                yield from self._check_call(ctx, node)

    def _shim_finding(
        self, ctx: RuleContext, node: ast.AST, what: str
    ) -> Finding:
        return self.finding(
            ctx,
            node,
            f"{what} outside the sanctioned wall-clock shim files "
            "(wall-clock-shims in [tool.phaselint]); measure time through "
            "an injected Clock (repro.obs.clock) so simulated-clock runs "
            "stay deterministic",
        )

    def _check_time_import(
        self, ctx: RuleContext, node: ast.Import
    ) -> Iterator[Finding]:
        for alias in node.names:
            if alias.name == "time" or alias.name.startswith("time."):
                yield self._shim_finding(ctx, node, f"'import {alias.name}'")

    def _check_import_from(
        self, ctx: RuleContext, node: ast.ImportFrom
    ) -> Iterator[Finding]:
        if node.module == "random":
            yield self.finding(
                ctx,
                node,
                "import from the stdlib 'random' module; use a seeded "
                "np.random.Generator instead",
            )
        elif node.module in ("time", "datetime"):
            for alias in node.names:
                if (node.module, alias.name) in _WALL_CLOCK_FROM_IMPORTS or (
                    node.module == "datetime" and alias.name == "datetime"
                ):
                    # `from datetime import datetime` is only flagged at the
                    # call site (datetime.now); importing the type is fine.
                    if node.module == "datetime":
                        continue
                    yield self.finding(
                        ctx,
                        node,
                        f"'from {node.module} import {alias.name}' reads the "
                        "wall clock; derive timestamps from the trace or a "
                        "seeded source",
                    )

    def _check_call(self, ctx: RuleContext, node: ast.Call) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return
        if name in ("default_rng", "np.random.default_rng", "numpy.random.default_rng"):
            if _is_unseeded_default_rng(node):
                yield self.finding(
                    ctx,
                    node,
                    "default_rng() without a seed is nondeterministic; pass "
                    "an explicit seed or thread a Generator through",
                )
            return
        if name in _WALL_CLOCK:
            yield self.finding(
                ctx,
                node,
                f"{name}() reads the wall clock; results must not depend on "
                "when the run happens (use time.perf_counter for durations)",
            )
            return
        for prefix in ("np.random.", "numpy.random."):
            if name.startswith(prefix):
                attr = name[len(prefix):].split(".", 1)[0]
                if attr not in _NP_RANDOM_OK:
                    yield self.finding(
                        ctx,
                        node,
                        f"{name}() uses the global NumPy RNG; use a seeded "
                        "np.random.Generator (np.random.default_rng(seed))",
                    )
                return
        if name.startswith("random."):
            if name == "random.Random" and (node.args or node.keywords):
                return  # seeded stdlib Random is deterministic
            yield self.finding(
                ctx,
                node,
                f"{name}() uses the stdlib global RNG; use a seeded "
                "np.random.Generator instead",
            )
