"""PL006 — the public API must be fully annotated and documented.

Scoped (via ``rule-paths``) to ``src/repro``: every public module-level
function and every public method of a public class needs a docstring, an
annotation on every parameter, and a return annotation.  This is the
static complement of ``mypy --disallow-untyped-defs`` — it also demands
the docstring, and it runs without an environment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import Rule, RuleContext, dotted_name, is_public_name

__all__ = ["PublicApiRule"]


def _is_overload(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return any(
        dotted_name(d) in ("overload", "typing.overload") for d in node.decorator_list
    )


def _has_docstring(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return (
        bool(node.body)
        and isinstance(node.body[0], ast.Expr)
        and isinstance(node.body[0].value, ast.Constant)
        and isinstance(node.body[0].value.value, str)
    )


def _missing_parts(
    node: ast.FunctionDef | ast.AsyncFunctionDef, *, is_method: bool
) -> list[str]:
    missing = []
    if not _has_docstring(node):
        missing.append("a docstring")
    args = node.args
    named = list(args.posonlyargs) + list(args.args)
    if is_method and named:
        named = named[1:]  # self / cls
    named += list(args.kwonlyargs)
    if args.vararg is not None:
        named.append(args.vararg)
    if args.kwarg is not None:
        named.append(args.kwarg)
    unannotated = [a.arg for a in named if a.annotation is None]
    if unannotated:
        missing.append(
            "annotations for " + ", ".join(f"'{a}'" for a in unannotated)
        )
    if node.returns is None:
        missing.append("a return annotation")
    return missing


class PublicApiRule(Rule):
    """Require docstrings and full annotations on the public surface."""

    code = "PL006"
    name = "public-api-complete"
    description = (
        "public functions and methods must carry a docstring, parameter "
        "annotations, and a return annotation"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        """Yield a finding per incompletely specified public function."""
        for label, node, is_method in _public_functions(ctx.tree):
            if _is_overload(node):
                continue
            missing = _missing_parts(node, is_method=is_method)
            if missing:
                yield self.finding(
                    ctx,
                    node,
                    f"public {label} is missing " + " and ".join(missing),
                )


def _public_functions(tree: ast.Module):
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if is_public_name(node.name):
                yield f"function '{node.name}'", node, False
        elif isinstance(node, ast.ClassDef) and is_public_name(node.name):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if is_public_name(item.name):
                        yield f"method '{node.name}.{item.name}'", item, True
