"""PL002 — public signatures must not use bare ``np.ndarray``.

``np.ndarray`` tells a caller nothing about dtype, and the whole pipeline
hinges on dtype distinctions (complex CSI vs real phase vs boolean masks).
Public parameters, returns, and public dataclass fields must use
``numpy.typing.NDArray[np.<dtype>]`` — in this repo, via the aliases in
``repro.contracts`` (``FloatArray``, ``ComplexArray``, ``BoolArray``,
``IntArray``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import Rule, RuleContext, dotted_name, is_public_name

__all__ = ["BareNdarrayRule"]

_BARE = {"np.ndarray", "numpy.ndarray", "ndarray"}


def _contains_bare_ndarray(annotation: ast.expr) -> ast.expr | None:
    """The first sub-expression of ``annotation`` that is bare ndarray."""
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # Stringified annotation: parse it and recurse.
        try:
            parsed = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
        return annotation if _contains_bare_ndarray(parsed) is not None else None
    for sub in ast.walk(annotation):
        name = dotted_name(sub)
        if name in _BARE:
            # `np.ndarray[Any, np.dtype[...]]` (subscripted) is precise
            # enough; only the un-subscripted form is bare.
            return sub
    return None


def _is_subscripted(annotation: ast.expr, bare: ast.expr) -> bool:
    """True when ``bare`` appears as the value of a Subscript node."""
    for sub in ast.walk(annotation):
        if isinstance(sub, ast.Subscript) and sub.value is bare:
            return True
    return False


class BareNdarrayRule(Rule):
    """Require dtype-parameterized array annotations on the public surface."""

    code = "PL002"
    name = "no-bare-ndarray"
    description = (
        "public signatures must use numpy.typing.NDArray[np.<dtype>] "
        "(or a repro.contracts alias), not bare np.ndarray"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        """Yield a finding per bare-ndarray annotation on public API."""
        for owner, node in _public_signatures(ctx.tree):
            if isinstance(node, ast.AnnAssign):
                yield from self._check_annotation(
                    ctx, node.annotation, f"field {owner}"
                )
                continue
            for arg in _all_args(node.args):
                if arg.annotation is not None:
                    yield from self._check_annotation(
                        ctx,
                        arg.annotation,
                        f"parameter '{arg.arg}' of {owner}",
                    )
            if node.returns is not None:
                yield from self._check_annotation(
                    ctx, node.returns, f"return of {owner}"
                )

    def _check_annotation(
        self, ctx: RuleContext, annotation: ast.expr, where: str
    ) -> Iterator[Finding]:
        bare = _contains_bare_ndarray(annotation)
        if bare is None:
            return
        if not isinstance(bare, ast.Constant) and _is_subscripted(annotation, bare):
            return
        yield self.finding(
            ctx,
            annotation,
            f"bare np.ndarray annotation on {where}; use "
            "NDArray[np.<dtype>] (FloatArray/ComplexArray/BoolArray/"
            "IntArray from repro.contracts)",
        )


def _all_args(args: ast.arguments) -> list[ast.arg]:
    out = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if args.vararg is not None:
        out.append(args.vararg)
    if args.kwarg is not None:
        out.append(args.kwarg)
    return out


def _public_signatures(tree: ast.Module):
    """(label, node) for public module-level defs, public methods of public
    classes, and annotated fields of public classes."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if is_public_name(node.name):
                yield f"function '{node.name}'", node
        elif isinstance(node, ast.ClassDef) and is_public_name(node.name):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if is_public_name(item.name):
                        yield f"method '{node.name}.{item.name}'", item
                elif isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    if is_public_name(item.target.id):
                        yield f"'{node.name}.{item.target.id}'", item
