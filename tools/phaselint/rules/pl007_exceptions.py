"""PL007 — no silent broad exception handlers.

A bare ``except:`` or an ``except Exception`` that swallows the error
silently turns every future bug at that site into wrong numbers instead of
a traceback — the exact failure mode a reproduction repo cannot afford.
Broad handlers are legitimate only at deliberate fault boundaries (the
supervisor catching anything a monitor throws), and those sites either
re-raise a typed error (``raise XError(...) from exc``) or record the
event; both are easy to prove syntactically.  A handler that does neither
is flagged — narrow the exception type, or mark an intentional boundary
with ``# phaselint: disable=PL007``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import Rule, RuleContext, dotted_name

__all__ = ["BroadExceptRule"]

_BROAD_NAMES = {"Exception", "BaseException"}

# A handler body counts as "logging" when it calls into any of these
# families (stdlib logging/warnings or a conventionally named logger).
_LOG_CALL_PREFIXES = ("logging.", "logger.", "log.", "warnings.")


def _is_broad(type_node: ast.expr | None) -> bool:
    """Whether the except clause catches Exception/BaseException (or is bare)."""
    if type_node is None:
        return True
    if isinstance(type_node, ast.Tuple):
        return any(_is_broad(elt) for elt in type_node.elts)
    name = dotted_name(type_node)
    if name is None:
        return False
    return name.split(".")[-1] in _BROAD_NAMES


def _walk_handler(nodes: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk handler statements without descending into nested scopes.

    A ``raise`` inside a nested ``def``/``lambda`` does not re-raise for
    the handler, so nested scopes must not satisfy the check.
    """
    stack: list[ast.AST] = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _handles_the_error(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body re-raises or logs/records the error."""
    for node in _walk_handler(handler.body):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                continue
            if name == "warn" or name.startswith(_LOG_CALL_PREFIXES):
                return True
    return False


class BroadExceptRule(Rule):
    """Ban broad exception handlers that neither re-raise nor log."""

    code = "PL007"
    name = "no-silent-broad-except"
    description = (
        "bare except / except Exception that neither re-raises nor logs "
        "hides bugs; narrow the type, chain a typed error, or disable at "
        "a deliberate fault boundary"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        """Yield a finding per silent broad exception handler."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node.type):
                continue
            if _handles_the_error(node):
                continue
            clause = (
                "bare except:"
                if node.type is None
                else "except over Exception/BaseException"
            )
            yield self.finding(
                ctx,
                node,
                f"{clause} swallows the error silently; catch a narrower "
                "type or re-raise a typed error (raise ... from exc)",
            )
