"""PL004 — no ``==`` / ``!=`` against floating-point values.

Exact float comparison is almost always a latent bug in DSP code: a value
that was ever filtered, resampled, or accumulated will miss the literal by
an ulp.  Compare with an explicit tolerance (``math.isclose``,
``np.isclose``) instead.  The rare *sentinel* comparison (``if gain ==
0.0`` guarding a division) is legitimate — mark it with
``# phaselint: disable=PL004`` so the intent is recorded at the site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import Rule, RuleContext, dotted_name

__all__ = ["FloatEqualityRule"]

_FLOAT_CALLS = {"float", "np.float64", "np.float32", "numpy.float64", "numpy.float32"}


def _is_float_expr(node: ast.expr) -> bool:
    """Syntactically certain to produce a float: literals, ``-literal``,
    and ``float(...)``-family conversion calls."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_expr(node.operand)
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in _FLOAT_CALLS
    return False


class FloatEqualityRule(Rule):
    """Ban exact equality against float expressions."""

    code = "PL004"
    name = "no-float-equality"
    description = (
        "== / != against a float is a tolerance bug; use math.isclose / "
        "np.isclose, or mark a deliberate sentinel with a disable comment"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        """Yield a finding per float equality comparison."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_expr(left) or _is_float_expr(right):
                    yield self.finding(
                        ctx,
                        node,
                        "exact ==/!= against a float; use math.isclose/"
                        "np.isclose with an explicit tolerance (or disable "
                        "for a deliberate sentinel check)",
                    )
                    break
