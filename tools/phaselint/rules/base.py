"""Rule protocols and the shared contexts rules check against.

Two rule kinds coexist:

* :class:`Rule` — the classic per-file kind; sees one parsed module at a
  time and needs no cross-file knowledge.
* :class:`ProjectRule` — the pass-2 kind; sees the whole
  :class:`~phaselint.project.ProjectIndex` (symbol table + call graph)
  and may attribute findings to any indexed file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from ..config import LintConfig
from ..findings import Finding

if TYPE_CHECKING:
    from ..project import ModuleInfo, ProjectIndex

__all__ = [
    "Rule",
    "RuleContext",
    "ProjectRule",
    "dotted_name",
    "is_public_name",
]


@dataclass(frozen=True)
class RuleContext:
    """Everything a rule may consult about the file under analysis.

    Attributes:
        path: Path as reported in findings (as passed on the CLI).
        posix_path: Normalized forward-slash path used for scoping.
        tree: Parsed module AST.
        config: The active :class:`~phaselint.config.LintConfig`.
    """

    path: str
    posix_path: str
    tree: ast.Module
    config: LintConfig


class Rule:
    """Base class for phaselint rules.

    Subclasses set ``code``/``name``/``description`` and implement
    :meth:`check`, yielding a :class:`Finding` per violation.  Rules are
    stateless: one instance is reused across files.
    """

    code: str = "PL000"
    name: str = "abstract-rule"
    description: str = ""

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        """Yield findings for ``ctx``; the base class yields nothing."""
        raise NotImplementedError

    def finding(self, ctx: RuleContext, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` for ``node`` with this rule's code."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.code,
            message=message,
        )


class ProjectRule:
    """Base class for cross-module (pass-2) rules.

    Subclasses set ``code``/``name``/``description`` and implement
    :meth:`check_project`, yielding a :class:`Finding` per violation.
    Rules are stateless: one instance is reused across runs.
    """

    code: str = "PL000"
    name: str = "abstract-project-rule"
    description: str = ""

    def check_project(
        self, index: "ProjectIndex", config: LintConfig
    ) -> Iterator[Finding]:
        """Yield findings over the whole project index."""
        raise NotImplementedError

    def finding(
        self, info: "ModuleInfo", node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` for ``node`` inside module ``info``."""
        return Finding(
            path=info.file.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.code,
            message=message,
        )


def dotted_name(node: ast.AST) -> str | None:
    """Flatten ``a.b.c`` attribute chains to ``"a.b.c"``; None otherwise."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_public_name(name: str) -> bool:
    """Public by Python convention: no leading underscore (dunders are not
    part of the *documented* API surface phaselint patrols)."""
    return not name.startswith("_")
