"""Rule protocol and the shared per-file context rules check against."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from ..config import LintConfig
from ..findings import Finding

__all__ = ["Rule", "RuleContext", "dotted_name", "is_public_name"]


@dataclass(frozen=True)
class RuleContext:
    """Everything a rule may consult about the file under analysis.

    Attributes:
        path: Path as reported in findings (as passed on the CLI).
        posix_path: Normalized forward-slash path used for scoping.
        tree: Parsed module AST.
        config: The active :class:`~phaselint.config.LintConfig`.
    """

    path: str
    posix_path: str
    tree: ast.Module
    config: LintConfig


class Rule:
    """Base class for phaselint rules.

    Subclasses set ``code``/``name``/``description`` and implement
    :meth:`check`, yielding a :class:`Finding` per violation.  Rules are
    stateless: one instance is reused across files.
    """

    code: str = "PL000"
    name: str = "abstract-rule"
    description: str = ""

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        """Yield findings for ``ctx``; the base class yields nothing."""
        raise NotImplementedError

    def finding(self, ctx: RuleContext, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` for ``node`` with this rule's code."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.code,
            message=message,
        )


def dotted_name(node: ast.AST) -> str | None:
    """Flatten ``a.b.c`` attribute chains to ``"a.b.c"``; None otherwise."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_public_name(name: str) -> bool:
    """Public by Python convention: no leading underscore (dunders are not
    part of the *documented* API surface phaselint patrols)."""
    return not name.startswith("_")
