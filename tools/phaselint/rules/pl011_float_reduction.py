"""PL011 — float reductions over unordered iterables are order hazards.

Floating-point addition is not associative: ``sum`` over the same values
in two different orders can differ in the last ulps, and those ulps feed
breathing-rate estimates that the repo byte-compares across runs.  A
``sum()`` (or ``prod()``) whose iterable is a set or dict view therefore
ties a numeric result to an iteration order that nothing pins down.

PL008 handles the loop-shaped version of this hazard (an accumulator
``+=`` inside a ``for`` over an unordered iterable); this rule owns the
reduction-call form so the two never double-fire on one site::

    total = sum(s.weight for s in self._sessions.values())   # PL011
    for s in self._sessions.values():                        # PL008
        total += s.weight

Fixes: ``sorted(...)`` the iterable (pins the order), use ``math.fsum``
*with* a sorted iterable (pins the rounding too), or — for integer sums
over a dict view, where order provably cannot matter — annotate::

    n = sum(s.n_dropped for s in q.values())  # phaselint: insertion-order -- integer sum, order-independent

``math.fsum`` alone is exempt only when its iterable is ordered;
``fsum`` over a set is still flagged (correctly rounded, still
order-defined input consumption for NaN/inf edge cases — and the set's
contents reaching any other consumer stays hash-ordered).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import LintConfig
from ..findings import Finding
from ..project import ModuleInfo, ProjectIndex, dotted_call_name
from .base import ProjectRule
from .scopes import (
    ScopeTypes,
    classify_unordered,
    iter_own_statements,
    scope_for_function,
)

__all__ = ["FloatReductionRule"]

_REDUCERS = {"sum", "prod", "fsum"}

_SET_MSG = (
    "{reducer}() over a set reduces in hash order; float reduction order "
    "changes the result in the last ulps — reduce over sorted(...)"
)
_VIEW_MSG = (
    "{reducer}() over {view} reduces in insertion order, an implicit "
    "invariant; reduce over sorted(...) or annotate with "
    "'# phaselint: insertion-order -- <why the order cannot matter>'"
)


class FloatReductionRule(ProjectRule):
    """Flag ``sum``/``prod``/``fsum`` calls consuming unordered iterables."""

    code = "PL011"
    name = "no-unordered-float-reduction"
    description = (
        "sum()/prod() over sets or dict views ties a float result to an "
        "unpinned iteration order; sort first or justify"
    )

    def check_project(
        self, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        """Yield one finding per unordered reduction call."""
        for name in sorted(index.modules):
            info = index.modules[name]
            yield from self._check_module(info)

    # ------------------------------------------------------------------

    def _check_module(self, info: ModuleInfo) -> Iterator[Finding]:
        module_scope = scope_for_function(info, None, None)
        yield from self._check_body(
            info, info.file.tree.body, module_scope
        )
        for local, fn in info.functions.items():
            enclosing = self._enclosing_class(info, local)
            scope = scope_for_function(info, fn.node, enclosing)
            yield from self._check_body(info, fn.node.body, scope)

    @staticmethod
    def _enclosing_class(
        info: ModuleInfo, local: str
    ) -> ast.ClassDef | None:
        if "." not in local:
            return None
        class_name = local.split(".")[0]
        for stmt in info.file.tree.body:
            if isinstance(stmt, ast.ClassDef) and stmt.name == class_name:
                return stmt
        return None

    def _check_body(
        self,
        info: ModuleInfo,
        body: list[ast.stmt],
        scope: ScopeTypes,
    ) -> Iterator[Finding]:
        for stmt in iter_own_statements(body):
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    yield from self._check_call(info, node, scope)

    def _check_call(
        self, info: ModuleInfo, call: ast.Call, scope: ScopeTypes
    ) -> Iterator[Finding]:
        name = dotted_call_name(call.func)
        if name is None:
            return
        leaf = name.rpartition(".")[2]
        if leaf not in _REDUCERS or not call.args:
            return
        arg = call.args[0]
        kind = self._classify_arg(arg, scope)
        if kind is None:
            return
        if leaf == "fsum" and kind == "dict-view":
            # Correctly-rounded sum over a per-process-deterministic
            # order: the one combination with no reproducibility hazard.
            return
        if kind == "set":
            yield self.finding(
                info, call, _SET_MSG.format(reducer=leaf)
            )
        else:
            yield self.finding(
                info,
                call,
                _VIEW_MSG.format(
                    reducer=leaf, view=self._view_name(arg)
                ),
            )

    @staticmethod
    def _classify_arg(arg: ast.expr, scope: ScopeTypes) -> str | None:
        direct = classify_unordered(arg, scope)
        if direct is not None:
            return direct
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
            for gen in arg.generators:
                kind = classify_unordered(gen.iter, scope)
                if kind is not None:
                    return kind
        return None

    @staticmethod
    def _view_name(arg: ast.expr) -> str:
        exprs: list[ast.expr] = [arg]
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
            exprs = [gen.iter for gen in arg.generators]
        for expr in exprs:
            if isinstance(expr, ast.Call) and isinstance(
                expr.func, ast.Attribute
            ):
                if expr.func.attr in ("values", "keys", "items"):
                    return f".{expr.func.attr}()"
        return "a dict view"
