"""PL003 — frequency/rate/duration names must carry a unit suffix.

The pipeline mixes three rate units (packet rate in Hz, vital-sign bands
in Hz, reported rates in bpm) and two time axes (seconds, samples).  A
parameter named ``rate`` forces every caller to guess; ``rate_hz`` or
``rate_bpm`` does not.  Any parameter or public dataclass field whose name
contains an ambiguous stem (``rate``, ``freq``, ``duration``, …) must end
with a unit suffix (``_hz``, ``_bpm``, ``_s``, ``_fraction``, …).  Both
lists are configurable via ``unit-tokens`` / ``unit-suffixes`` in
``[tool.phaselint]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import Rule, RuleContext, is_public_name

__all__ = ["UnitSuffixRule"]


class UnitSuffixRule(Rule):
    """Require unit-suffixed names for unit-bearing quantities."""

    code = "PL003"
    name = "unit-suffix-required"
    description = (
        "frequency/rate/duration parameters must end in a unit suffix "
        "(_hz, _bpm, _s, ...) so the unit travels with the name"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        """Yield a finding per unit-ambiguous parameter or public field."""
        cfg = ctx.config
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for arg in _named_args(node.args):
                    if self._ambiguous(arg.arg, cfg):
                        yield self.finding(
                            ctx,
                            arg,
                            f"parameter '{arg.arg}' of '{node.name}' is "
                            "unit-ambiguous; add a unit suffix "
                            f"(e.g. {arg.arg}_hz, {arg.arg}_bpm, {arg.arg}_s)",
                        )
            elif isinstance(node, ast.ClassDef) and is_public_name(node.name):
                for item in node.body:
                    if (
                        isinstance(item, ast.AnnAssign)
                        and isinstance(item.target, ast.Name)
                        and is_public_name(item.target.id)
                        and self._ambiguous(item.target.id, cfg)
                    ):
                        yield self.finding(
                            ctx,
                            item,
                            f"field '{node.name}.{item.target.id}' is "
                            "unit-ambiguous; add a unit suffix "
                            "(e.g. _hz, _bpm, _s, _fraction)",
                        )

    @staticmethod
    def _ambiguous(name: str, cfg) -> bool:
        tokens = name.lower().split("_")
        if tokens[-1] in cfg.unit_suffixes:
            return False
        stems = set(cfg.unit_tokens)
        return any(t in stems or (t.endswith("s") and t[:-1] in stems) for t in tokens)


def _named_args(args: ast.arguments) -> list[ast.arg]:
    return list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
