"""PL005 — no mutable default arguments.

A ``def f(x, history=[])`` default is evaluated once and shared across
calls; for a streaming pipeline that is state leaking between windows.
Use ``None`` plus an in-body default, or ``dataclasses.field`` for
dataclass attributes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import Rule, RuleContext, dotted_name

__all__ = ["MutableDefaultRule"]

_MUTABLE_CALLS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "collections.defaultdict",
    "collections.deque",
    "collections.OrderedDict",
    "collections.Counter",
    "defaultdict",
    "deque",
    "OrderedDict",
    "Counter",
    "np.array",
    "np.zeros",
    "np.ones",
    "np.empty",
    "numpy.array",
    "numpy.zeros",
    "numpy.ones",
    "numpy.empty",
}

_MUTABLE_NODES = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_NODES):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in _MUTABLE_CALLS
    return False


class MutableDefaultRule(Rule):
    """Ban list/dict/set/array literals (and constructors) as defaults."""

    code = "PL005"
    name = "no-mutable-defaults"
    description = (
        "mutable default arguments are shared across calls; default to "
        "None (or dataclasses.field) and build inside the function"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        """Yield a finding per mutable default value."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in '{node.name}'; use "
                        "None and construct inside the body",
                    )
