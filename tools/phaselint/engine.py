"""File discovery, suppression handling, and two-pass rule dispatch.

The engine runs in two passes.  Pass 1 parses every file once and runs
the per-file rules (PL001–PL007), exactly as the original engine did.
Pass 2 builds a :class:`~phaselint.project.ProjectIndex` over *all*
parsed files — symbol table, import resolution, call graph — and runs the
cross-module determinism rules (PL008–PL011) over it.  Both passes share
one parse and one suppression scan per file.

Suppression directives (all comments):

* ``# phaselint: disable=PL001,PL004`` — silence those rules on the line;
  bare ``disable`` silences every rule on the line.
* ``# phaselint: disable-file=PL003`` — silence a rule file-wide.
* ``# phaselint: insertion-order -- <reason>`` — assert that this line's
  iteration order is an intentional, documented contract; silences the
  ordering rules (PL008/PL010/PL011) on the line.  The reason is
  **required**: a bare ``insertion-order`` is ignored, so every
  suppression carries its audit trail.
* ``# phaselint: justify=PL010 -- <reason>`` — silence named rules on the
  line with a mandatory recorded reason; the auditable alternative to
  ``disable`` for the determinism rules.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .config import LintConfig
from .findings import Finding
from .project import ParsedFile, ProjectIndex
from .rules import ALL_RULES, PROJECT_RULES, ProjectRule, Rule, RuleContext

__all__ = [
    "lint_file",
    "lint_paths",
    "lint_paths_detailed",
    "discover_files",
    "Suppressions",
    "LintRun",
]

_DIRECTIVE = re.compile(
    r"#\s*phaselint:\s*(?P<kind>disable-file|disable|insertion-order|justify)"
    r"\s*(?:=\s*(?P<codes>[A-Z0-9,\s]+))?"
    r"(?:\s*--\s*(?P<reason>\S.*))?"
)

# The ordering rules an `insertion-order` annotation vouches for.
_ORDERING_RULES = frozenset({"PL008", "PL010", "PL011"})


class Suppressions:
    """In-source suppression directives for one file.

    ``# phaselint: disable=PL001,PL004`` silences those rules on its own
    line; ``# phaselint: disable`` silences every rule on the line;
    ``# phaselint: disable-file=PL003`` (anywhere in the file) silences a
    rule for the whole file.  ``insertion-order -- <reason>`` and
    ``justify=CODES -- <reason>`` are line-scoped like ``disable`` but
    *require* a justification text — without one they are inert.
    """

    def __init__(self, source: str) -> None:
        self.line_codes: dict[int, set[str]] = {}
        self.file_codes: set[str] = set()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                match = _DIRECTIVE.search(tok.string)
                if not match:
                    continue
                self._apply(match, tok.start[0])
        except tokenize.TokenError:
            pass  # partial/odd files: no suppressions, findings still flow

    def _apply(self, match: re.Match[str], line: int) -> None:
        kind = match["kind"]
        codes = (
            {c.strip() for c in match["codes"].split(",") if c.strip()}
            if match["codes"]
            else set()
        )
        reason = (match["reason"] or "").strip()
        if kind == "disable-file":
            self.file_codes |= codes or {"*"}
        elif kind == "disable":
            self.line_codes.setdefault(line, set()).update(codes or {"*"})
        elif kind == "insertion-order":
            if reason:  # justification is the point; bare form is inert
                self.line_codes.setdefault(line, set()).update(
                    _ORDERING_RULES
                )
        elif kind == "justify":
            if reason and codes:
                self.line_codes.setdefault(line, set()).update(codes)

    def is_suppressed(self, finding: Finding) -> bool:
        """True when an in-source directive covers ``finding``."""
        if "*" in self.file_codes or finding.rule in self.file_codes:
            return True
        codes = self.line_codes.get(finding.line, ())
        return "*" in codes or finding.rule in codes


@dataclass
class LintRun:
    """Findings plus the source context needed downstream.

    Attributes:
        findings: Sorted, unsuppressed findings from both passes.
        sources: Posix path → source lines, for baseline fingerprinting.
    """

    findings: list[Finding]
    sources: dict[str, list[str]] = field(default_factory=dict)

    def line_text(self, posix_path: str, line: int) -> str:
        """Raw text of ``line`` (1-based) in ``posix_path``, or ``""``."""
        lines = self.sources.get(posix_path, [])
        if 1 <= line <= len(lines):
            return lines[line - 1]
        return ""


def discover_files(
    paths: Sequence[str | Path], config: LintConfig
) -> list[Path]:
    """Expand CLI arguments into the sorted list of ``.py`` files to lint."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return [f for f in files if not config.is_excluded(f.as_posix())]


def _parse(path: Path) -> ParsedFile | Finding:
    """Parse one file; a ``SyntaxError`` becomes a ``PL000`` finding."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            path=str(path),
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule="PL000",
            message=f"file does not parse: {exc.msg}",
        )
    return ParsedFile(
        path=str(path),
        posix_path=path.as_posix(),
        source=source,
        tree=tree,
    )


def _file_pass(
    parsed: ParsedFile,
    suppressions: Suppressions,
    config: LintConfig,
    rules: Iterable[Rule],
) -> list[Finding]:
    ctx = RuleContext(
        path=parsed.path,
        posix_path=parsed.posix_path,
        tree=parsed.tree,
        config=config,
    )
    findings: list[Finding] = []
    for rule in rules:
        if not config.rule_applies(rule.code, parsed.posix_path):
            continue
        findings.extend(
            f for f in rule.check(ctx) if not suppressions.is_suppressed(f)
        )
    return findings


def _project_pass(
    parsed_files: Sequence[ParsedFile],
    suppressions_by_path: dict[str, Suppressions],
    posix_by_path: dict[str, str],
    config: LintConfig,
    project_rules: Iterable[ProjectRule],
) -> list[Finding]:
    if not parsed_files:
        return []
    index = ProjectIndex.build(parsed_files)
    findings: list[Finding] = []
    for rule in project_rules:
        for finding in rule.check_project(index, config):
            posix = posix_by_path.get(finding.path, finding.path)
            if not config.rule_applies(finding.rule, posix):
                continue
            suppressions = suppressions_by_path.get(finding.path)
            if suppressions is not None and suppressions.is_suppressed(
                finding
            ):
                continue
            findings.append(finding)
    return findings


def lint_file(
    path: str | Path,
    config: LintConfig | None = None,
    rules: Iterable[Rule] = ALL_RULES,
    project_rules: Iterable[ProjectRule] = PROJECT_RULES,
) -> list[Finding]:
    """Lint one file (both passes) and return unsuppressed findings.

    The cross-module rules see a single-file project here — import-edge
    findings need :func:`lint_paths` over the whole tree.  A syntax error
    is itself reported as a ``PL000`` finding rather than crashing the
    run, so one broken file cannot hide findings in others.
    """
    config = config if config is not None else LintConfig()
    parsed = _parse(Path(path))
    if isinstance(parsed, Finding):
        return [parsed]
    suppressions = Suppressions(parsed.source)
    findings = _file_pass(parsed, suppressions, config, rules)
    findings.extend(
        _project_pass(
            [parsed],
            {parsed.path: suppressions},
            {parsed.path: parsed.posix_path},
            config,
            project_rules,
        )
    )
    return sorted(findings)


def lint_paths(
    paths: Sequence[str | Path],
    config: LintConfig | None = None,
    rules: Iterable[Rule] = ALL_RULES,
    project_rules: Iterable[ProjectRule] = PROJECT_RULES,
) -> list[Finding]:
    """Lint every file under ``paths`` and return all findings, sorted."""
    return lint_paths_detailed(paths, config, rules, project_rules).findings


def lint_paths_detailed(
    paths: Sequence[str | Path],
    config: LintConfig | None = None,
    rules: Iterable[Rule] = ALL_RULES,
    project_rules: Iterable[ProjectRule] = PROJECT_RULES,
) -> LintRun:
    """Both passes over ``paths``, keeping source context for baselines."""
    config = config if config is not None else LintConfig()
    findings: list[Finding] = []
    parsed_files: list[ParsedFile] = []
    suppressions_by_path: dict[str, Suppressions] = {}
    posix_by_path: dict[str, str] = {}
    sources: dict[str, list[str]] = {}
    for file in discover_files(paths, config):
        parsed = _parse(file)
        if isinstance(parsed, Finding):
            findings.append(parsed)
            continue
        suppressions = Suppressions(parsed.source)
        parsed_files.append(parsed)
        suppressions_by_path[parsed.path] = suppressions
        posix_by_path[parsed.path] = parsed.posix_path
        sources[parsed.posix_path] = parsed.source.splitlines()
        findings.extend(_file_pass(parsed, suppressions, config, rules))
    findings.extend(
        _project_pass(
            parsed_files,
            suppressions_by_path,
            posix_by_path,
            config,
            project_rules,
        )
    )
    return LintRun(findings=sorted(findings), sources=sources)
