"""File discovery, suppression handling, and rule dispatch."""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Iterable, Sequence

from .config import LintConfig
from .findings import Finding
from .rules import ALL_RULES, Rule, RuleContext

__all__ = ["lint_file", "lint_paths", "discover_files", "Suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*phaselint:\s*(?P<kind>disable(?:-file)?)\s*(?:=\s*(?P<codes>[A-Z0-9,\s]+))?"
)


class Suppressions:
    """In-source suppression directives for one file.

    ``# phaselint: disable=PL001,PL004`` silences those rules on its own
    line; ``# phaselint: disable`` silences every rule on the line;
    ``# phaselint: disable-file=PL003`` (anywhere in the file) silences a
    rule for the whole file.
    """

    def __init__(self, source: str) -> None:
        self.line_codes: dict[int, set[str]] = {}
        self.file_codes: set[str] = set()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                match = _DIRECTIVE.search(tok.string)
                if not match:
                    continue
                codes = (
                    {c.strip() for c in match["codes"].split(",") if c.strip()}
                    if match["codes"]
                    else {"*"}
                )
                if match["kind"] == "disable-file":
                    self.file_codes |= codes
                else:
                    self.line_codes.setdefault(tok.start[0], set()).update(codes)
        except tokenize.TokenError:
            pass  # partial/odd files: no suppressions, findings still flow

    def is_suppressed(self, finding: Finding) -> bool:
        """True when an in-source directive covers ``finding``."""
        if "*" in self.file_codes or finding.rule in self.file_codes:
            return True
        codes = self.line_codes.get(finding.line, ())
        return "*" in codes or finding.rule in codes


def discover_files(
    paths: Sequence[str | Path], config: LintConfig
) -> list[Path]:
    """Expand CLI arguments into the sorted list of ``.py`` files to lint."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return [f for f in files if not config.is_excluded(f.as_posix())]


def lint_file(
    path: str | Path,
    config: LintConfig | None = None,
    rules: Iterable[Rule] = ALL_RULES,
) -> list[Finding]:
    """Lint one file and return its unsuppressed findings, sorted.

    A syntax error is itself reported as a ``PL000`` finding rather than
    crashing the run, so one broken file cannot hide findings in others.
    """
    config = config if config is not None else LintConfig()
    path = Path(path)
    posix = path.as_posix()
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="PL000",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    suppressions = Suppressions(source)
    ctx = RuleContext(path=str(path), posix_path=posix, tree=tree, config=config)
    findings: list[Finding] = []
    for rule in rules:
        if not config.rule_applies(rule.code, posix):
            continue
        findings.extend(
            f for f in rule.check(ctx) if not suppressions.is_suppressed(f)
        )
    return sorted(findings)


def lint_paths(
    paths: Sequence[str | Path],
    config: LintConfig | None = None,
    rules: Iterable[Rule] = ALL_RULES,
) -> list[Finding]:
    """Lint every file under ``paths`` and return all findings, sorted."""
    config = config if config is not None else LintConfig()
    findings: list[Finding] = []
    for file in discover_files(paths, config):
        findings.extend(lint_file(file, config, rules))
    return sorted(findings)
