"""The finding record emitted by every rule."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: File the finding is in, as given on the command line.
        line: 1-based line number of the offending node.
        col: 0-based column offset of the offending node.
        rule: Rule code, e.g. ``"PL001"``.
        message: Human-readable explanation including the fix.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format_text(self) -> str:
        """``path:line:col: PLxxx message`` — the text-mode report line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, Any]:
        """JSON-serializable dict for ``--format json`` / CI consumers."""
        return asdict(self)
