"""Through-wall breathing monitoring and range behaviour.

The paper's second deployment puts the subject on the transmitter side of a
wall, with the receiver in the next room.  This example estimates the
breathing rate through the wall and then sweeps the TX–RX separation to
show the Fig. 15/16 effect: error grows with distance, and the wall costs
accuracy at every range.

Run:
    python examples/through_wall_monitoring.py
"""

import numpy as np

from repro import (
    Person,
    PhaseBeat,
    PhaseBeatConfig,
    SinusoidalBreathing,
    capture_trace,
    corridor_scenario,
    through_wall_scenario,
)


def subject(y: float) -> Person:
    return Person(
        position=(1.5, y, 1.0),
        breathing=SinusoidalBreathing(frequency_hz=0.3),
        heartbeat=None,
    )


def main() -> None:
    pipeline = PhaseBeat(PhaseBeatConfig(enforce_stationarity=False))

    # Single through-wall estimate at 4 m.
    scenario = through_wall_scenario(4.0, [subject(1.2)], clutter_seed=7)
    print("through-wall capture at 4 m (7 dB wall) ...")
    trace = capture_trace(scenario, duration_s=30.0, seed=7)
    result = pipeline.process(trace, estimate_heart=False)
    print(
        f"breathing through the wall: {result.breathing_rates_bpm[0]:.2f} bpm "
        f"(truth 18.00)"
    )

    # Distance sweep: corridor vs through-wall, 3 seeds per point.
    print("\ndistance sweep (mean |error| over 3 seeds, bpm):")
    print(f"{'d (m)':>6} {'corridor':>10} {'through-wall':>14}")
    for distance in (2.0, 4.0, 6.0):
        errors = {"corridor": [], "wall": []}
        for seed in (1, 2, 3):
            corridor = corridor_scenario(
                distance, [subject(max(0.8, distance / 2))], clutter_seed=seed
            )
            wall = through_wall_scenario(
                distance,
                [subject(max(0.4, distance / 2 - 0.8))],
                clutter_seed=seed,
            )
            for label, sc in (("corridor", corridor), ("wall", wall)):
                t = capture_trace(sc, duration_s=30.0, seed=seed)
                try:
                    r = pipeline.process(t, estimate_heart=False)
                    errors[label].append(
                        abs(r.breathing_rates_bpm[0] - 18.0)
                    )
                except Exception:
                    errors[label].append(1.8)  # failed estimate
        print(
            f"{distance:>6.1f} {np.mean(errors['corridor']):>10.3f} "
            f"{np.mean(errors['wall']):>14.3f}"
        )
    print(
        "\nthe wall's per-traversal loss weakens the chest reflection; with"
        "\nmany trials (see benchmarks/test_fig16_*) the through-wall curve"
        "\nsits above the corridor's at equal distance."
    )


if __name__ == "__main__":
    main()
