"""Rate-trend tracking: following a breathing rate that changes.

A single whole-session rate hides slow physiological changes (falling
asleep, stress responses).  This example simulates a subject whose
breathing slows from ~19 to ~13 bpm over three minutes, then follows the
rate two ways:

* the sliding-window PhaseBeat monitor (estimates every 10 s);
* the STFT ridge tracker on the calibrated series (the time–frequency
  view the paper contrasts the DWT against).

Run:
    python examples/rate_trend_tracking.py
"""

import numpy as np

from repro import Person, capture_trace, laboratory_scenario
from repro.core import StreamingConfig, StreamingMonitor
from repro.core.pipeline import prepare_calibrated_matrix
from repro.core.subcarrier_selection import select_subcarrier
from repro.dsp.stft import track_rate
from repro.physio.breathing import BreathingModel


class SlowingBreathing(BreathingModel):
    """Breathing that decelerates linearly from f_start to f_end."""

    def __init__(self, f_start=0.32, f_end=0.22, duration_s=180.0,
                 amplitude_m=5e-3):
        self.f_start = f_start
        self.f_end = f_end
        self.duration_s = duration_s
        self.amplitude_m = amplitude_m
        self.frequency_hz = 0.5 * (f_start + f_end)  # nominal

    def instantaneous_frequency(self, t):
        ramp = np.clip(np.asarray(t) / self.duration_s, 0.0, 1.0)
        return self.f_start + (self.f_end - self.f_start) * ramp

    def displacement(self, t):
        t = np.asarray(t, dtype=float)
        freq = self.instantaneous_frequency(t)
        dt = np.diff(t, prepend=t[0] if t.size else 0.0)
        phase = 2 * np.pi * np.cumsum(freq * dt)
        return self.amplitude_m * np.cos(phase)


def main() -> None:
    breathing = SlowingBreathing()
    person = Person(position=(2.2, 3.0, 1.0), breathing=breathing, heartbeat=None)
    scenario = laboratory_scenario([person], clutter_seed=4)
    print("simulating 3 minutes with a decelerating breathing rate ...")
    trace = capture_trace(scenario, duration_s=180.0, seed=4)

    # Method 1: sliding-window PhaseBeat estimates.
    monitor = StreamingMonitor(
        trace.sample_rate_hz, StreamingConfig(window_s=30.0, hop_s=10.0)
    )
    print(f"\n{'t (s)':>6} {'truth':>7} {'window est':>11} {'STFT ridge':>11}")
    window_estimates = {
        round(e.time_s): e.result.breathing_rates_bpm[0]
        for e in monitor.push_trace(trace)
        if e.ok
    }

    # Method 2: STFT ridge on the selected calibrated series.
    matrix, quality, rate = prepare_calibrated_matrix(trace)
    column = select_subcarrier(matrix, mask=quality).selected
    times, ridge = track_rate(
        matrix[:, column], rate, (0.15, 0.45),
        window_s=30.0, hop_s=10.0, max_step_hz=0.05,
    )

    def ridge_at(t: float) -> float:
        """Ridge value at the frame whose *end* is closest to time t."""
        ends = times + 15.0  # frame center + half window
        return float(60.0 * ridge[int(np.argmin(np.abs(ends - t)))])

    for t in sorted(window_estimates):
        # Truth at the window center (the estimate reflects the window mean).
        truth = 60.0 * breathing.instantaneous_frequency(t - 15.0)
        print(
            f"{t:>6} {truth:>7.2f} {window_estimates[t]:>11.2f} "
            f"{ridge_at(t):>11.2f}"
        )

    print(
        "\nboth trackers follow the deceleration with ~half-a-window lag.  "
        "note the STFT ridge is quantized to its 2 bpm bin width (30 s "
        "frames) while the peak-timing estimate moves continuously — "
        "exactly the paper's argument for peak detection over FFT-family "
        "rate readers (Section III-C1)."
    )


if __name__ == "__main__":
    main()
