"""Realtime streaming: sliding-window monitoring with activity changes.

PhaseBeat is designed to run online — packets arrive at 400 Hz and the
20 Hz downsampled pipeline re-estimates on a sliding window.  This example
scripts a 90-second session in which the subject sits, walks around, and
sits again; the streaming monitor keeps emitting estimates and flags the
windows environment detection rejects.

Run:
    python examples/realtime_streaming.py
"""

import dataclasses

from repro import (
    ActivityScript,
    Person,
    SinusoidalBreathing,
    StreamingConfig,
    StreamingMonitor,
    capture_trace,
    laboratory_scenario,
)
from repro.physio.motion import ActivityState, MotionEvent


def main() -> None:
    person = Person(
        position=(2.2, 3.0, 1.0),
        breathing=SinusoidalBreathing(frequency_hz=0.27),
        heartbeat=None,
    )
    # 0–40 s sitting, 40–60 s walking, 60–90 s sitting again.
    script = ActivityScript(
        events=(MotionEvent(ActivityState.WALKING, 40.0, 20.0),), seed=3
    )
    scenario = dataclasses.replace(
        laboratory_scenario([person], clutter_seed=3), activity=script
    )
    print("simulating a 90 s session (sit / walk / sit) ...")
    trace = capture_trace(scenario, duration_s=90.0, seed=3)

    monitor = StreamingMonitor(
        sample_rate_hz=trace.sample_rate_hz,
        config=StreamingConfig(window_s=25.0, hop_s=5.0),
    )

    print(f"\ntruth: {person.breathing_rate_bpm:.2f} bpm\n")
    print(f"{'t (s)':>6}  {'estimate':>9}  note")
    for estimate in monitor.push_trace(trace):
        if estimate.fresh:
            rate = estimate.result.breathing_rates_bpm[0]
            print(f"{estimate.time_s:>6.0f}  {rate:>7.2f} bpm")
        elif estimate.ok:
            rate = estimate.result.breathing_rates_bpm[0]
            print(
                f"{estimate.time_s:>6.0f}  {rate:>7.2f} bpm  "
                f"(held over, {estimate.staleness_s:.0f}s stale: "
                f"{estimate.rejected_reason})"
            )
        else:
            print(f"{estimate.time_s:>6.0f}  {'--':>9}  ({estimate.rejected_reason})")

    print(
        "\nwindows overlapping the walking segment are rejected by "
        "environment detection (Eq. 8): no fresh estimate is produced, and "
        "the last good one is re-emitted — flagged with its staleness — "
        "until the holdover budget runs out (see docs/robustness.md)."
    )


if __name__ == "__main__":
    main()
