"""Multi-person breathing monitoring: FFT vs root-MUSIC.

Recreates the paper's Fig. 8 story: three seated subjects, two of them
breathing only 0.025 Hz (1.5 bpm) apart.  A plain FFT over the analysis
window cannot resolve the close pair; root-MUSIC over the 30 calibrated
subcarrier series can.

Run:
    python examples/multi_person_monitoring.py
"""

import numpy as np

from repro import (
    Person,
    PhaseBeat,
    PhaseBeatConfig,
    SinusoidalBreathing,
    capture_trace,
    laboratory_scenario,
)

# The paper's three-person rates (Hz): the last two are only 0.025 apart.
RATES_HZ = (0.1467, 0.2233, 0.2483)
POSITIONS = ((0.8, 5.5, 1.0), (2.2, 6.2, 1.0), (3.8, 5.8, 1.0))


def main() -> None:
    persons = [
        Person(
            position=POSITIONS[i],
            breathing=SinusoidalBreathing(
                frequency_hz=f, amplitude_m=3.0e-3, phase=0.7 * i
            ),
            heartbeat=None,
            name=f"subject-{i + 1}",
        )
        for i, f in enumerate(RATES_HZ)
    ]
    truth_bpm = np.array([p.breathing_rate_bpm for p in persons])

    scenario = laboratory_scenario(persons, clutter_seed=1)
    print("simulating 60 s with three subjects ...")
    trace = capture_trace(scenario, duration_s=60.0, seed=1)

    pipeline = PhaseBeat(PhaseBeatConfig(enforce_stationarity=False))

    print(f"\nground truth: {np.round(truth_bpm, 2)} bpm")
    for method, label in (("fft", "FFT"), ("music", "root-MUSIC (30 sc)")):
        result = pipeline.process(
            trace, n_persons=3, estimate_heart=False, breathing_method=method
        )
        rates = np.asarray(result.breathing_rates_bpm)
        errors = np.abs(np.sort(rates) - np.sort(truth_bpm)[: rates.size])
        print(
            f"{label:>18}: {np.round(rates, 2)} bpm "
            f"(worst error {errors.max():.2f} bpm)"
        )

    print(
        "\nthe close pair at 13.4 / 14.9 bpm merges under the FFT's "
        "Rayleigh limit; root-MUSIC's subspace super-resolution separates it."
    )


if __name__ == "__main__":
    main()
