"""Quickstart: monitor one person's breathing and heart rate.

Simulates the paper's laboratory deployment (4.5 × 8.8 m room, Intel-5300
style receiver, 400 packets/s), runs the full PhaseBeat pipeline, and
compares against the ground truth the simulator knows exactly.

Run:
    python examples/quickstart.py
"""

from repro import (
    Person,
    PhaseBeat,
    PhaseBeatConfig,
    SinusoidalBreathing,
    SinusoidalHeartbeat,
    capture_trace,
    laboratory_scenario,
)


def main() -> None:
    # A subject breathing at 15 breaths/min with a 64.2 bpm heart rate,
    # seated in the lab.
    person = Person(
        position=(2.2, 3.0, 1.0),
        breathing=SinusoidalBreathing(frequency_hz=0.25),
        heartbeat=SinusoidalHeartbeat(frequency_hz=1.07),
    )

    # Directional TX (the paper's heart-rate configuration) and a 60 s
    # capture at the default 400 packets/s.
    scenario = laboratory_scenario([person], directional_tx=True)
    print(f"simulating 60 s capture in scenario {scenario.name!r} ...")
    trace = capture_trace(scenario, duration_s=60.0, seed=42)
    print(
        f"captured {trace.n_packets} packets x {trace.n_rx} antennas x "
        f"{trace.n_subcarriers} subcarriers"
    )

    # The stationarity check is calibrated for the omni setup; with a
    # directional TX we skip it, exactly as the paper's heart experiments do.
    pipeline = PhaseBeat(PhaseBeatConfig(enforce_stationarity=False))
    result = pipeline.process(trace)

    print("\n--- PhaseBeat result ---")
    breathing = result.breathing_rates_bpm[0]
    print(
        f"breathing: {breathing:6.2f} bpm   "
        f"(truth {person.breathing_rate_bpm:.2f}, "
        f"error {abs(breathing - person.breathing_rate_bpm):.2f})"
    )
    heart = result.heart_rate_bpm
    print(
        f"heart:     {heart:6.2f} bpm   "
        f"(truth {person.heart_rate_bpm:.2f}, "
        f"error {abs(heart - person.heart_rate_bpm):.2f})"
    )

    d = result.diagnostics
    print("\n--- pipeline diagnostics ---")
    print(f"environment: V={d.v_statistic:.3f} -> {d.environment_state.value}")
    print(
        f"selected subcarrier {d.selected_subcarrier} on antenna pair "
        f"{d.selected_antenna_pair} (candidates {d.candidate_subcarriers})"
    )
    print(
        f"calibrated to {d.calibrated_rate_hz:.0f} Hz, "
        f"{d.n_calibrated_samples} samples"
    )
    print(
        f"DWT bands: breathing {d.breathing_band_hz} Hz, "
        f"heart {d.heart_band_hz} Hz"
    )


if __name__ == "__main__":
    main()
