"""Dataset workflow: build a labelled corpus once, evaluate many times.

The paper's evaluation ran four subjects over three months; the equivalent
here is a reproducible on-disk corpus of simulated captures.  This example
generates a small corpus, reloads it, and scores PhaseBeat against the
stored ground truth — the pattern to use for heavier, repeatable studies.

Run:
    python examples/dataset_workflow.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import PhaseBeat, PhaseBeatConfig
from repro.eval.harness import default_subject
from repro.eval.metrics import empirical_cdf
from repro.io_.dataset import TraceDataset, generate_dataset
from repro.rf.scene import laboratory_scenario


def scenario_factory(k: int, rng: np.random.Generator):
    return laboratory_scenario(
        [default_subject(rng, with_heartbeat=False)], clutter_seed=100 + k
    )


def main() -> None:
    root = Path(tempfile.mkdtemp()) / "phasebeat-corpus"
    print(f"generating 6-trace corpus under {root} ...")
    generate_dataset(
        root,
        scenario_factory,
        6,
        duration_s=30.0,
        base_seed=100,
    )

    # A fresh process would start here: reload purely from disk.
    dataset = TraceDataset(root)
    print(f"reloaded {len(dataset)} traces from the index\n")

    pipeline = PhaseBeat(PhaseBeatConfig(enforce_stationarity=False))
    errors = []
    print(f"{'trace':>10} {'truth':>8} {'estimate':>9} {'error':>7}")
    for entry in dataset:
        trace = dataset.load_trace(entry)
        truth = entry.breathing_rates_bpm[0]
        result = pipeline.process(trace, estimate_heart=False)
        estimate = result.breathing_rates_bpm[0]
        errors.append(abs(estimate - truth))
        print(
            f"{entry.filename:>10} {truth:>8.2f} {estimate:>9.2f} "
            f"{errors[-1]:>7.3f}"
        )

    x, p = empirical_cdf(np.asarray(errors))
    print(f"\nmedian error: {np.median(errors):.3f} bpm")
    print("error CDF points:", [f"{v:.2f}@{q:.2f}" for v, q in zip(x, p)])


if __name__ == "__main__":
    main()
