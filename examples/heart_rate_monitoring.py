"""Heart-rate monitoring against a simulated pulse oximeter.

Reproduces the paper's Fig. 9 workflow: a directional TX antenna boosts the
chest reflection; the DWT detail band β₃+β₄ isolates 0.625–2.5 Hz; the FFT
peak is refined with the 3-bin inverse-FFT phase method; and the result is
compared against a fingertip pulse oximeter (which displays integer bpm —
the reason the paper reports 1.07 Hz vs a 1.06 Hz reference).

Run:
    python examples/heart_rate_monitoring.py
"""

from repro import (
    Person,
    PhaseBeat,
    PhaseBeatConfig,
    SinusoidalBreathing,
    SinusoidalHeartbeat,
    capture_trace,
    laboratory_scenario,
)
from repro.physio.ground_truth import PulseOximeter


def main() -> None:
    person = Person(
        position=(2.2, 3.0, 1.0),
        # Seated subject breathing quietly — the configuration the paper
        # uses for heart experiments.
        breathing=SinusoidalBreathing(frequency_hz=0.25, amplitude_m=3e-3),
        heartbeat=SinusoidalHeartbeat(frequency_hz=1.07),
    )
    scenario = laboratory_scenario(
        [person], directional_tx=True, clutter_seed=3
    )
    print("simulating 60 s with a directional TX aimed at the subject ...")
    trace = capture_trace(scenario, duration_s=60.0, seed=3)

    pipeline = PhaseBeat(PhaseBeatConfig(enforce_stationarity=False))
    result = pipeline.process(trace)

    oximeter_reading = PulseOximeter(seed=1).read_person(person)
    estimate = result.heart_rate_bpm
    print("\n--- heart-rate comparison ---")
    print(f"true heart rate:        {person.heart_rate_bpm:6.2f} bpm ({person.heartbeat.frequency_hz:.3f} Hz)")
    print(f"pulse oximeter reads:   {oximeter_reading:6.2f} bpm (integer display)")
    print(f"PhaseBeat estimates:    {estimate:6.2f} bpm ({estimate / 60:.3f} Hz)")
    print(f"error vs truth:         {abs(estimate - person.heart_rate_bpm):6.2f} bpm")
    print(f"error vs oximeter:      {abs(estimate - oximeter_reading):6.2f} bpm")

    print("\nbreathing (for reference): "
          f"{result.breathing_rates_bpm[0]:.2f} bpm "
          f"(truth {person.breathing_rate_bpm:.2f})")
    print(
        "\nthe heart signal is orders of magnitude weaker than breathing; "
        "the pipeline removes the breathing-locked waveform by cycle "
        "folding, band-limits with the DWT, and suppresses residual "
        "breathing harmonics before reading the FFT peak."
    )


if __name__ == "__main__":
    main()
