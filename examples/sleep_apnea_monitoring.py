"""Sleep monitoring: breathing rate tracking plus apnea detection.

The paper's introduction motivates contact-free monitoring with sleep
disorders and SIDS — whose signature is a breathing *pause*, not a wrong
rate.  This example simulates a sleeping subject with two scripted central
apnea episodes, runs the PhaseBeat front end, and feeds the breathing-band
signal to the envelope-threshold apnea detector.

Run:
    python examples/sleep_apnea_monitoring.py
"""

from repro import (
    Person,
    PhaseBeat,
    PhaseBeatConfig,
    SinusoidalBreathing,
    capture_trace,
    laboratory_scenario,
)
from repro.core import detect_apnea
from repro.physio import ApneicBreathing

# Two central apneas: 40–55 s and 90–102 s.
PAUSES = ((40.0, 15.0), (90.0, 12.0))


def main() -> None:
    sleeper = Person(
        position=(2.2, 3.0, 0.6),  # lying down
        breathing=ApneicBreathing(
            base=SinusoidalBreathing(frequency_hz=0.22),
            pauses_s=PAUSES,
        ),
        heartbeat=None,
        name="sleeping-subject",
    )
    scenario = laboratory_scenario([sleeper], clutter_seed=9)
    print("simulating a 2-minute sleep capture with scripted apneas ...")
    trace = capture_trace(scenario, duration_s=120.0, seed=9)

    pipeline = PhaseBeat(PhaseBeatConfig(enforce_stationarity=False))
    result = pipeline.process(trace, estimate_heart=False)
    print(
        f"\nbreathing rate over the breathing segments: "
        f"{result.breathing_rates_bpm[0]:.2f} bpm "
        f"(truth {sleeper.breathing.rate_bpm:.2f})"
    )

    events = detect_apnea(
        result.breathing_signal, result.diagnostics.calibrated_rate_hz
    )
    print(f"\nscripted pauses: {[f'{s:.0f}-{s + d:.0f}s' for s, d in PAUSES]}")
    print(f"detected events: {len(events)}")
    for event in events:
        print(
            f"  apnea {event.start_s:6.1f} – {event.end_s:6.1f} s "
            f"({event.duration_s:.1f} s, residual motion {event.depth:.0%})"
        )

    print(
        "\nthe detector thresholds the breathing-band envelope at a "
        "fraction of its median level and scores pauses over 10 s — the "
        "adult clinical criterion."
    )


if __name__ == "__main__":
    main()
