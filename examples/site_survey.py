"""Site survey: where in the room does PhaseBeat work best?

The chest reflection modulates the cross-antenna phase difference with a
position-dependent gain; at unlucky spots (Fresnel-null geometries) the
breathing fundamental nearly vanishes.  This example maps the predicted
sensitivity over the laboratory floor, prints it as an ASCII heat map, and
verifies the prediction by running the pipeline with a subject at the best
and worst surveyed spots.

Run:
    python examples/site_survey.py
"""

import numpy as np

from repro import (
    Person,
    PhaseBeat,
    PhaseBeatConfig,
    SinusoidalBreathing,
    capture_trace,
    laboratory_scenario,
)
from repro.rf import sensitivity_map

SHADES = " .:-=+*#%@"


def main() -> None:
    scenario = laboratory_scenario(clutter_seed=5)
    print("surveying the 4.5 x 8.8 m laboratory (12 x 12 grid) ...")
    xs, ys, gain = sensitivity_map(
        scenario, (0.5, 4.0), (0.5, 8.3), resolution=12
    )

    print("\npredicted phase-difference sensitivity (rad per mm of chest motion)")
    print("T = transmitter side, R = receiver side; darker = more sensitive\n")
    scale = gain.max()
    for iy in range(len(ys) - 1, -1, -1):
        row = "".join(
            SHADES[min(int(gain[iy, ix] / scale * (len(SHADES) - 1)), 9)]
            for ix in range(len(xs))
        )
        print(f"  y={ys[iy]:4.1f}m |{row}|")
    print(f"          x: {xs[0]:.1f} ... {xs[-1]:.1f} m")
    print(f"  sensitivity range: {gain.min():.4f} – {gain.max():.4f}")

    # Verify the survey: estimate a subject at the best and worst spot.
    flat = gain.ravel()
    best = np.unravel_index(np.argmax(gain), gain.shape)
    worst = np.unravel_index(np.argmin(gain), gain.shape)
    pipeline = PhaseBeat(PhaseBeatConfig(enforce_stationarity=False))
    print("\nvalidation (subject breathing at 16.2 bpm):")
    for label, (iy, ix) in (("best spot", best), ("worst spot", worst)):
        position = (float(xs[ix]), float(ys[iy]), 1.0)
        person = Person(
            position=position,
            breathing=SinusoidalBreathing(frequency_hz=0.27),
            heartbeat=None,
        )
        trace = capture_trace(
            scenario.with_persons([person]), duration_s=30.0, seed=5
        )
        try:
            result = pipeline.process(trace, estimate_heart=False)
            estimate = result.breathing_rates_bpm[0]
            error = abs(estimate - person.breathing_rate_bpm)
            print(
                f"  {label} {position[:2]}: estimate {estimate:6.2f} bpm "
                f"(error {error:.2f})"
            )
        except Exception as exc:
            print(f"  {label} {position[:2]}: estimation failed ({exc})")

    print(
        "\ninstallers can use this map to place the link so monitored "
        "positions avoid the low-sensitivity spots."
    )


if __name__ == "__main__":
    main()
