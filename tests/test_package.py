"""Public-API surface tests."""

import repro


class TestPublicApi:
    def test_version(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_quickstart_symbols(self):
        # The README's quickstart must keep working.
        assert callable(repro.capture_trace)
        assert callable(repro.laboratory_scenario)
        assert callable(repro.PhaseBeat)

    def test_subpackages_importable(self):
        import repro.baselines  # noqa: F401
        import repro.core  # noqa: F401
        import repro.dsp  # noqa: F401
        import repro.eval  # noqa: F401
        import repro.io_  # noqa: F401
        import repro.physio  # noqa: F401
        import repro.rf  # noqa: F401
