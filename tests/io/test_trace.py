"""Unit tests for the CSITrace container and npz round-trip."""

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.io_.trace import CSITrace


def make_trace(n=100, n_rx=3, n_sub=30, rate=400.0, meta=None):
    rng = np.random.default_rng(0)
    csi = rng.normal(size=(n, n_rx, n_sub)) + 1j * rng.normal(size=(n, n_rx, n_sub))
    # Timestamps are built at a fixed valid cadence so tests probing an
    # invalid `rate` exercise only the validation under test.
    return CSITrace(
        csi=csi,
        timestamps_s=np.arange(n) / 400.0,
        sample_rate_hz=rate,
        subcarrier_indices=np.arange(n_sub),
        meta=meta or {"scenario": "test"},
    )


class TestConstruction:
    def test_properties(self):
        trace = make_trace(n=50)
        assert trace.n_packets == 50
        assert trace.n_rx == 3
        assert trace.n_subcarriers == 30
        assert trace.duration_s == pytest.approx(49 / 400.0)

    def test_amplitudes_and_phases(self):
        trace = make_trace()
        assert np.allclose(trace.amplitudes(), np.abs(trace.csi))
        assert np.allclose(trace.phases(), np.angle(trace.csi))

    def test_rejects_real_csi(self):
        with pytest.raises(TraceFormatError):
            CSITrace(
                csi=np.zeros((10, 3, 30)),
                timestamps_s=np.arange(10) / 400.0,
                sample_rate_hz=400.0,
                subcarrier_indices=np.arange(30),
            )

    def test_rejects_wrong_timestamp_count(self):
        with pytest.raises(TraceFormatError):
            CSITrace(
                csi=np.zeros((10, 3, 30), dtype=complex),
                timestamps_s=np.arange(5) / 400.0,
                sample_rate_hz=400.0,
                subcarrier_indices=np.arange(30),
            )

    def test_rejects_decreasing_timestamps(self):
        with pytest.raises(TraceFormatError):
            CSITrace(
                csi=np.zeros((3, 3, 30), dtype=complex),
                timestamps_s=np.array([0.0, 2.0, 1.0]),
                sample_rate_hz=400.0,
                subcarrier_indices=np.arange(30),
            )

    def test_rejects_wrong_subcarrier_count(self):
        with pytest.raises(TraceFormatError):
            CSITrace(
                csi=np.zeros((3, 3, 30), dtype=complex),
                timestamps_s=np.arange(3) / 400.0,
                sample_rate_hz=400.0,
                subcarrier_indices=np.arange(10),
            )

    def test_rejects_bad_rate(self):
        with pytest.raises(TraceFormatError):
            make_trace(rate=0.0)


class TestSlicing:
    def test_slice_packets(self):
        trace = make_trace(n=100)
        sub = trace.slice_packets(10, 60)
        assert sub.n_packets == 50
        assert np.array_equal(sub.csi, trace.csi[10:60])
        assert sub.meta == trace.meta

    def test_slice_metadata_is_copy(self):
        trace = make_trace()
        sub = trace.slice_packets(0, 10)
        sub.meta["extra"] = 1
        assert "extra" not in trace.meta

    def test_invalid_slice_rejected(self):
        trace = make_trace(n=10)
        with pytest.raises(TraceFormatError):
            trace.slice_packets(5, 5)
        with pytest.raises(TraceFormatError):
            trace.slice_packets(0, 11)


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path):
        trace = make_trace(meta={"scenario": "lab", "rates": [15.0, 64.2]})
        path = trace.save(tmp_path / "trace.npz")
        loaded = CSITrace.load(path)
        assert np.array_equal(loaded.csi, trace.csi)
        assert np.array_equal(loaded.timestamps_s, trace.timestamps_s)
        assert loaded.sample_rate_hz == trace.sample_rate_hz
        assert np.array_equal(
            loaded.subcarrier_indices, trace.subcarrier_indices
        )
        assert loaded.meta == trace.meta

    def test_suffix_added(self, tmp_path):
        trace = make_trace()
        path = trace.save(tmp_path / "trace")
        assert path.suffix == ".npz"

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, format_version=np.int64(1), csi=np.zeros(3))
        with pytest.raises(TraceFormatError):
            CSITrace.load(path)

    def test_wrong_version_rejected(self, tmp_path):
        trace = make_trace()
        path = trace.save(tmp_path / "trace.npz")
        with np.load(path) as data:
            fields = {k: data[k] for k in data.files}
        fields["format_version"] = np.int64(99)
        np.savez(path, **fields)
        with pytest.raises(TraceFormatError) as excinfo:
            CSITrace.load(path)
        # The error must name both the found and the supported versions.
        assert "99" in str(excinfo.value)
        assert "supported: 1" in str(excinfo.value)

    def test_unreadable_version_rejected(self, tmp_path):
        trace = make_trace()
        path = trace.save(tmp_path / "trace.npz")
        with np.load(path) as data:
            fields = {k: data[k] for k in data.files}
        fields["format_version"] = np.bytes_(b"not-a-version")
        np.savez(path, **fields)
        with pytest.raises(TraceFormatError) as excinfo:
            CSITrace.load(path)
        assert "unreadable trace format version" in str(excinfo.value)
        assert "supported: 1" in str(excinfo.value)
