"""Tests for trace quality assessment and validation gating."""

import numpy as np
import pytest

from repro.errors import DataGapError, DegradedInputError, TraceFormatError
from repro.io_.quality import assess_timestamps
from repro.io_.trace import CSITrace


def make_trace(timestamps, rate=100.0, strict=True):
    n = len(timestamps)
    rng = np.random.default_rng(0)
    csi = rng.normal(size=(n, 3, 30)) + 1j * rng.normal(size=(n, 3, 30))
    return CSITrace(
        csi=csi,
        timestamps_s=np.asarray(timestamps, dtype=float),
        sample_rate_hz=rate,
        subcarrier_indices=np.arange(30),
        strict=strict,
    )


class TestAssessTimestamps:
    def test_clean_stream(self):
        t = np.arange(1000) / 100.0
        report = assess_timestamps(t, 100.0)
        assert report.is_uniform and report.is_monotonic
        assert report.loss_fraction == pytest.approx(0.0, abs=1e-9)
        assert report.effective_rate_hz == pytest.approx(100.0, rel=1e-6)
        assert report.max_gap_s == pytest.approx(0.01)

    def test_loss_and_gap_metrics(self):
        t = np.arange(1000) / 100.0
        keep = np.ones(1000, dtype=bool)
        keep[200:300] = False  # a 1 s hole
        keep[::10] = keep[::10] & True
        report = assess_timestamps(t[keep], 100.0)
        assert report.loss_fraction == pytest.approx(0.1, abs=0.01)
        assert report.max_gap_s == pytest.approx(1.0, abs=0.02)
        assert report.max_gap_at_s == pytest.approx(1.99, abs=0.02)
        assert not report.is_uniform

    def test_backward_and_nan_detection(self):
        t = np.array([0.0, 0.01, 0.005, np.nan, 0.03])
        report = assess_timestamps(t, 100.0)
        assert report.n_backward_steps >= 1
        assert report.n_nonfinite_timestamps == 1
        assert not report.is_monotonic
        issues = report.issues()
        assert "non-monotonic-timestamps" in issues
        assert "non-finite-timestamps" in issues

    def test_issue_thresholds(self):
        t = np.arange(0, 100, 2) / 100.0  # half the packets missing
        report = assess_timestamps(t, 100.0)
        assert report.issues(max_loss_fraction=0.4) == ["loss-fraction"]
        assert report.issues(max_loss_fraction=0.6) == []
        assert report.issues(max_loss_fraction=0.6, max_gap_s=0.01) == ["data-gap"]


class TestSummary:
    def test_clean_stream_one_line(self):
        t = np.arange(1000) / 100.0
        line = assess_timestamps(t, 100.0).summary()
        assert "\n" not in line
        assert line == (
            "1000 pkts over 10.0s (effective 100.0/100 Hz, "
            "loss 0%, max gap 10 ms)"
        )

    def test_lossy_stream_reports_loss_and_gap(self):
        t = np.arange(1000) / 100.0
        keep = np.ones(1000, dtype=bool)
        keep[200:300] = False  # a 1 s hole
        line = assess_timestamps(t[keep], 100.0).summary()
        assert "900 pkts" in line
        assert "loss 10%" in line
        assert "max gap 1010 ms" in line

    def test_summary_is_json_safe_detail(self):
        # The chaos harness embeds the summary in event details and the
        # ChaosReport JSON; it must stay a plain printable string.
        t = np.array([0.0, 0.01, 0.005, np.nan, 0.03])
        line = assess_timestamps(t, 100.0).summary()
        assert isinstance(line, str)
        assert line == line.strip()
        assert line.isprintable()


class TestTraceValidate:
    def test_clean_trace_passes(self):
        trace = make_trace(np.arange(500) / 100.0)
        report = trace.validate(max_gap_s=0.5)
        assert report.is_uniform

    def test_gap_raises_data_gap_error(self):
        t = np.concatenate([np.arange(200), np.arange(300, 500)]) / 100.0
        trace = make_trace(t)
        with pytest.raises(DataGapError) as excinfo:
            trace.validate(max_gap_s=0.5, max_loss_fraction=0.9)
        assert excinfo.value.gap_s == pytest.approx(1.0, abs=0.02)
        assert excinfo.value.limit_s == 0.5

    def test_loss_raises_degraded_input(self):
        trace = make_trace(np.arange(0, 1000, 3) / 100.0)
        with pytest.raises(DegradedInputError) as excinfo:
            trace.validate(max_loss_fraction=0.5)
        assert "loss-fraction" in excinfo.value.reasons
        assert excinfo.value.report.loss_fraction > 0.5

    def test_glitched_trace_rejected_unless_allowed(self):
        t = np.arange(500) / 100.0
        t[250:] -= 0.5
        trace = make_trace(t, strict=False)
        with pytest.raises(DegradedInputError):
            trace.validate()
        # The same trace passes once monotonicity is waived and no other
        # budget is violated.
        trace.validate(require_monotonic=False, max_loss_fraction=0.9)


class TestStrictConstruction:
    def test_strict_rejects_glitch_nonstrict_accepts(self):
        t = np.arange(10) / 100.0
        t[5] = 0.0
        with pytest.raises(TraceFormatError):
            make_trace(t)
        trace = make_trace(t, strict=False)
        assert trace.n_packets == 10

    def test_strict_rejects_nan_timestamps(self):
        t = np.arange(10) / 100.0
        t[3] = np.nan
        with pytest.raises(TraceFormatError):
            make_trace(t)
        make_trace(t, strict=False)

    def test_slicing_an_impaired_trace_works(self):
        t = np.arange(10) / 100.0
        t[5] = 0.0
        trace = make_trace(t, strict=False)
        assert trace.slice_packets(4, 8).n_packets == 4

    def test_impaired_round_trip_needs_nonstrict_load(self, tmp_path):
        t = np.arange(10) / 100.0
        t[5] = 0.0
        trace = make_trace(t, strict=False)
        path = trace.save(tmp_path / "glitched.npz")
        with pytest.raises(TraceFormatError):
            CSITrace.load(path)
        loaded = CSITrace.load(path, strict=False)
        assert np.array_equal(loaded.timestamps_s, trace.timestamps_s)
