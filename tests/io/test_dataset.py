"""Tests for labelled trace datasets."""

import json

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.io_.dataset import TraceDataset, generate_dataset
from repro.physio.person import Person
from repro.rf.receiver import capture_trace
from repro.rf.scene import laboratory_scenario


def tiny_factory(k, rng):
    return laboratory_scenario(
        [Person(position=(2.2, 3.0, 1.0), heartbeat=None)], clutter_seed=k
    )


class TestTraceDataset:
    def test_add_and_reload(self, tmp_path):
        dataset = TraceDataset(tmp_path / "ds")
        scenario = laboratory_scenario(clutter_seed=1)
        trace = capture_trace(scenario, duration_s=1.0, seed=1)
        entry = dataset.add_trace(trace)
        assert len(dataset) == 1
        assert entry.scenario == "laboratory"
        assert entry.seed == 1
        loaded = dataset.load_trace(entry)
        assert np.array_equal(loaded.csi, trace.csi)

    def test_index_persists_across_instances(self, tmp_path):
        root = tmp_path / "ds"
        first = TraceDataset(root)
        scenario = laboratory_scenario(clutter_seed=2)
        first.add_trace(capture_trace(scenario, duration_s=1.0, seed=2))
        second = TraceDataset(root)
        assert len(second) == 1
        assert second.entries[0].seed == 2
        assert second.load_trace(0).n_packets == 400

    def test_ground_truth_in_entry(self, tmp_path):
        dataset = TraceDataset(tmp_path / "ds")
        scenario = laboratory_scenario(clutter_seed=3)
        trace = capture_trace(scenario, duration_s=1.0, seed=3)
        entry = dataset.add_trace(trace)
        assert entry.breathing_rates_bpm == tuple(
            trace.meta["breathing_rates_bpm"]
        )
        assert entry.heart_rates_bpm == tuple(trace.meta["heart_rates_bpm"])

    def test_filter(self, tmp_path):
        dataset = TraceDataset(tmp_path / "ds")
        for seed in (1, 2):
            scenario = laboratory_scenario(clutter_seed=seed)
            dataset.add_trace(capture_trace(scenario, duration_s=1.0, seed=seed))
        hits = dataset.filter(lambda e: e.seed == 2)
        assert len(hits) == 1
        assert hits[0].seed == 2

    def test_malformed_index_rejected(self, tmp_path):
        root = tmp_path / "ds"
        root.mkdir()
        (root / "index.json").write_text("{not json")
        with pytest.raises(TraceFormatError):
            TraceDataset(root)

    def test_wrong_index_version_rejected(self, tmp_path):
        root = tmp_path / "ds"
        root.mkdir()
        (root / "index.json").write_text(
            json.dumps({"format_version": 99, "entries": []})
        )
        with pytest.raises(TraceFormatError):
            TraceDataset(root)


class TestGenerateDataset:
    def test_generates_requested_corpus(self, tmp_path):
        dataset = generate_dataset(
            tmp_path / "corpus",
            tiny_factory,
            3,
            duration_s=1.0,
            sample_rate_hz=200.0,
            base_seed=10,
        )
        assert len(dataset) == 3
        seeds = [e.seed for e in dataset]
        assert seeds == [10, 11, 12]
        for entry in dataset:
            assert entry.sample_rate_hz == 200.0
            trace = dataset.load_trace(entry)
            assert trace.n_packets == 200
