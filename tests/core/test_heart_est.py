"""Unit tests for the FFT + 3-bin heart-rate estimator."""

import numpy as np
import pytest

from repro.core.heart import HEART_SEARCH_BAND_HZ, FFTHeartEstimator
from repro.errors import ConfigurationError, EstimationError


def heart_signal(f_heart=1.07, fs=20.0, n=1200, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n) / fs
    return np.sin(2 * np.pi * f_heart * t) + noise * rng.normal(size=n)


class TestBasicEstimation:
    def test_clean_tone(self):
        estimator = FFTHeartEstimator()
        rate = estimator.estimate_bpm(heart_signal(), 20.0)
        assert rate == pytest.approx(64.2, abs=0.5)

    def test_refinement_beats_bin_resolution(self):
        # 30 s window → bin width 2 bpm; the 3-bin method must do better.
        fs, n = 20.0, 600
        truth = 1.071
        refined = FFTHeartEstimator(refine=True).estimate_bpm(
            heart_signal(truth, fs, n, noise=0.0), fs
        )
        assert abs(refined - 60 * truth) < 0.5

    def test_unrefined_mode(self):
        estimator = FFTHeartEstimator(refine=False)
        rate = estimator.estimate_bpm(heart_signal(1.2, noise=0.0), 20.0)
        assert rate == pytest.approx(72.0, abs=1.0)

    def test_band_respected(self):
        # Strong out-of-band tone must not capture the estimate.
        fs, n = 20.0, 1200
        t = np.arange(n) / fs
        x = 5 * np.sin(2 * np.pi * 3.0 * t) + np.sin(2 * np.pi * 1.1 * t)
        rate = FFTHeartEstimator().estimate_bpm(x, fs)
        assert rate == pytest.approx(66.0, abs=1.0)

    def test_noise_only_raises(self, rng):
        x = rng.normal(size=1200)
        with pytest.raises(EstimationError):
            FFTHeartEstimator(min_peak_snr=5.0).estimate_bpm(x, 20.0)

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            FFTHeartEstimator().estimate_bpm(np.zeros((100, 2)), 20.0)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FFTHeartEstimator(band_hz=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            FFTHeartEstimator(min_peak_snr=0.5)
        with pytest.raises(ConfigurationError):
            FFTHeartEstimator(max_harmonic_order=1)


class TestHarmonicSuppression:
    def test_breathing_harmonic_skipped(self):
        # A strong 4th breathing harmonic inside the heart band must not be
        # mistaken for the heart when f_b is provided.
        fs, n = 20.0, 1200
        t = np.arange(n) / fs
        f_b = 0.25
        x = (
            2.0 * np.sin(2 * np.pi * 4 * f_b * t)  # harmonic at 1.0 Hz
            + 1.0 * np.sin(2 * np.pi * 1.4 * t)  # true heart
        )
        rate = FFTHeartEstimator().estimate_bpm(
            x, fs, breathing_rate_hz=f_b
        )
        assert rate == pytest.approx(84.0, abs=1.0)

    def test_without_breathing_rate_harmonic_wins(self):
        fs, n = 20.0, 1200
        t = np.arange(n) / fs
        x = 2.0 * np.sin(2 * np.pi * 1.0 * t) + np.sin(2 * np.pi * 1.4 * t)
        rate = FFTHeartEstimator().estimate_bpm(x, fs)
        assert rate == pytest.approx(60.0, abs=1.0)

    def test_sideband_comb_resolved_to_carrier(self):
        # Carrier with symmetric ±f_b sidebands where one sideband exceeds
        # the carrier: comb-symmetry scoring must still pick the carrier.
        fs, n = 20.0, 2400
        t = np.arange(n) / fs
        f_h, f_b = 1.4, 0.22
        x = (
            0.8 * np.sin(2 * np.pi * f_h * t)
            + 1.2 * np.sin(2 * np.pi * (f_h - f_b) * t + 0.5)
            + 1.1 * np.sin(2 * np.pi * (f_h + f_b) * t + 1.0)
            + 0.5 * np.sin(2 * np.pi * (f_h - 2 * f_b) * t + 1.2)
            + 0.4 * np.sin(2 * np.pi * (f_h + 2 * f_b) * t + 0.3)
        )
        rate = FFTHeartEstimator().estimate_bpm(x, fs, breathing_rate_hz=f_b)
        assert rate == pytest.approx(60 * f_h, abs=1.5)

    def test_masking_whole_band_falls_back(self):
        # Breathing rate whose harmonics tile the band: estimator must not
        # crash, it falls back to the unmasked peak.
        fs, n = 20.0, 1200
        x = heart_signal(1.0, fs, n, noise=0.0)
        estimator = FFTHeartEstimator(harmonic_tolerance_hz=0.5)
        rate = estimator.estimate_bpm(x, fs, breathing_rate_hz=0.25)
        assert 48.0 <= rate <= 120.0


class TestSearchBand:
    def test_default_band_inside_dwt_band(self):
        lo, hi = HEART_SEARCH_BAND_HZ
        assert 0.625 <= lo < hi <= 2.5
