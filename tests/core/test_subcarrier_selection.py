"""Unit tests for MAD-based subcarrier selection."""

import numpy as np
import pytest

from repro.core.subcarrier_selection import (
    SelectionConfig,
    select_subcarrier,
    subcarrier_sensitivities,
)
from repro.errors import ConfigurationError


def series_with_mads(mads, n=500, seed=0):
    """Columns of uniform noise scaled so column i has MAD ≈ mads[i]."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(-1.0, 1.0, size=(n, len(mads)))
    base -= base.mean(axis=0)
    current = np.mean(np.abs(base), axis=0)
    return base * (np.asarray(mads) / current)


class TestSensitivities:
    def test_values(self):
        series = series_with_mads([0.1, 0.5, 0.3])
        mads = subcarrier_sensitivities(series)
        assert np.allclose(mads, [0.1, 0.5, 0.3], rtol=1e-6)

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            subcarrier_sensitivities(np.zeros(10))


class TestSelection:
    def test_median_of_top3(self):
        # MADs: top-3 are columns 4 (0.9), 2 (0.8), 0 (0.7); median → col 2.
        series = series_with_mads([0.7, 0.1, 0.8, 0.2, 0.9])
        result = select_subcarrier(series, SelectionConfig(k=3))
        assert result.candidates == (4, 2, 0)
        assert result.selected == 2

    def test_paper_example_shape(self):
        # Mirror of the paper's narrative: 19 has the max MAD, {19, 18, 2}
        # are the candidates, 18 is selected.
        mads = np.full(30, 0.1)
        mads[19] = 0.9
        mads[18] = 0.8
        mads[2] = 0.7
        result = select_subcarrier(series_with_mads(mads))
        assert result.candidates == (19, 18, 2)
        assert result.selected == 18

    def test_k1_takes_max(self):
        series = series_with_mads([0.2, 0.9, 0.4])
        result = select_subcarrier(series, SelectionConfig(k=1))
        assert result.selected == 1

    def test_even_k_lower_median(self):
        series = series_with_mads([0.9, 0.8, 0.7, 0.6, 0.1])
        result = select_subcarrier(series, SelectionConfig(k=4))
        # Candidates (0,1,2,3) MAD-descending; lower median is index 2.
        assert result.selected == 2

    def test_k_larger_than_columns_clipped(self):
        series = series_with_mads([0.5, 0.3])
        result = select_subcarrier(series, SelectionConfig(k=10))
        assert len(result.candidates) == 2

    def test_mask_excludes_columns(self):
        series = series_with_mads([0.9, 0.5, 0.4, 0.3])
        mask = np.array([False, True, True, True])
        result = select_subcarrier(series, SelectionConfig(k=3), mask=mask)
        assert 0 not in result.candidates
        assert result.selected == 2  # median of (1, 2, 3) by MAD order

    def test_empty_mask_falls_back_to_all(self):
        series = series_with_mads([0.9, 0.5, 0.4])
        result = select_subcarrier(
            series, mask=np.zeros(3, dtype=bool)
        )
        assert result.selected in (0, 1, 2)

    def test_wrong_mask_shape_rejected(self):
        series = series_with_mads([0.9, 0.5, 0.4])
        with pytest.raises(ConfigurationError):
            select_subcarrier(series, mask=np.ones(5, dtype=bool))

    def test_k_validation(self):
        with pytest.raises(ConfigurationError):
            SelectionConfig(k=0)

    def test_on_simulated_trace(self, lab_trace):
        from repro.core.calibration import calibrate
        from repro.core.phase_difference import phase_difference

        calibrated = calibrate(
            phase_difference(lab_trace), lab_trace.sample_rate_hz
        )
        result = select_subcarrier(calibrated.series)
        assert 0 <= result.selected < 30
        assert result.selected in result.candidates
        assert result.sensitivities.shape == (30,)
