"""Unit tests for the detrend/denoise/downsample calibration stage."""

import numpy as np
import pytest

from repro.core.calibration import CalibrationConfig, calibrate
from repro.core.phase_difference import phase_difference
from repro.dsp.fft_utils import magnitude_spectrum
from repro.errors import ConfigurationError


def synthetic_phase_diff(n=10_000, fs=400.0, f_breath=0.25, dc=1.5, noise=0.05):
    rng = np.random.default_rng(0)
    t = np.arange(n) / fs
    base = dc + 0.3 * np.sin(2 * np.pi * f_breath * t)
    return base[:, None] + noise * rng.normal(size=(n, 30))


class TestCalibrate:
    def test_paper_sample_counts(self):
        # 10 000 packets at 400 Hz → 500 samples at 20 Hz (paper Fig. 4).
        data = synthetic_phase_diff()
        out = calibrate(data, 400.0)
        assert out.n_samples == 500
        assert out.sample_rate_hz == pytest.approx(20.0)
        assert out.n_subcarriers == 30

    def test_dc_removed(self):
        out = calibrate(synthetic_phase_diff(dc=5.0), 400.0)
        assert np.abs(out.series.mean(axis=0)).max() < 0.1

    def test_breathing_tone_preserved(self):
        out = calibrate(synthetic_phase_diff(), 400.0)
        freqs, mag = magnitude_spectrum(out.series[:, 0], 20.0)
        peak = freqs[np.argmax(mag)]
        assert peak == pytest.approx(0.25, abs=0.05)

    def test_high_frequency_noise_suppressed(self):
        rng = np.random.default_rng(1)
        n, fs = 8000, 400.0
        t = np.arange(n) / fs
        clean = 0.3 * np.sin(2 * np.pi * 0.25 * t)
        noisy = clean + 0.2 * np.sin(2 * np.pi * 50.0 * t)
        out = calibrate(noisy[:, None] * np.ones((1, 2)), fs)
        freqs, mag = magnitude_spectrum(out.series[:, 0], 20.0)
        breathing_power = mag[np.argmin(np.abs(freqs - 0.25))]
        residual_hf = mag[freqs > 5.0].max()
        assert residual_hf < 0.05 * breathing_power

    def test_windows_scale_with_rate(self):
        # At 20 Hz input the decimation factor collapses to 1 and the trend
        # window shrinks proportionally — calibration must still run.
        data = synthetic_phase_diff(n=600, fs=20.0)
        out = calibrate(data, 20.0)
        assert out.sample_rate_hz == pytest.approx(20.0)
        assert out.n_samples == 600

    def test_on_simulated_trace(self, lab_trace):
        diff = phase_difference(lab_trace)
        out = calibrate(diff, lab_trace.sample_rate_hz)
        assert out.sample_rate_hz == pytest.approx(20.0)
        assert out.n_samples == lab_trace.n_packets // 20

    def test_1d_input_promoted(self):
        data = np.random.default_rng(0).normal(size=4000)
        out = calibrate(data[:, None], 400.0)
        assert out.n_subcarriers == 1


class TestConfig:
    def test_decimation_factor(self):
        config = CalibrationConfig(target_rate_hz=20.0)
        assert config.decimation_factor(400.0) == 20
        assert config.decimation_factor(600.0) == 30
        assert config.decimation_factor(20.0) == 1
        assert config.decimation_factor(10.0) == 1  # floored at 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CalibrationConfig(trend_window_s=0.0)
        with pytest.raises(ConfigurationError):
            CalibrationConfig(noise_window_s=10.0, trend_window_s=5.0)
        with pytest.raises(ConfigurationError):
            CalibrationConfig(hampel_threshold=-1.0)
        with pytest.raises(ConfigurationError):
            CalibrationConfig(target_rate_hz=0.0)
        with pytest.raises(ConfigurationError):
            CalibrationConfig().decimation_factor(0.0)
