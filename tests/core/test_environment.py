"""Unit tests for environment detection (Eq. 8)."""

import dataclasses

import numpy as np
import pytest

from repro.core.environment import (
    EnvironmentConfig,
    EnvironmentDetector,
    classify_windows,
    v_statistic,
    windowed_v,
)
from repro.core.phase_difference import phase_difference
from repro.errors import ConfigurationError
from repro.physio.motion import ActivityScript, ActivityState
from repro.rf.receiver import capture_trace
from repro.rf.scene import laboratory_scenario


class TestVStatistic:
    def test_constant_input_is_zero(self):
        assert v_statistic(np.ones((100, 30))) == 0.0

    def test_sine_value(self):
        t = np.arange(400) / 20.0
        x = np.sin(2 * np.pi * 0.25 * t)[:, None] * np.ones((1, 30))
        # MAD of a sine is 2A/π.
        assert v_statistic(x) == pytest.approx(2 / np.pi, rel=0.02)

    def test_robust_to_single_broken_subcarrier(self):
        # One random-walking column must not move the (median-based) V.
        rng = np.random.default_rng(0)
        clean = 0.1 * np.sin(
            2 * np.pi * 0.25 * np.arange(400)[:, None] / 20.0
        ) * np.ones((1, 30))
        broken = clean.copy()
        broken[:, 7] = np.cumsum(rng.normal(size=400))
        assert v_statistic(broken) == pytest.approx(v_statistic(clean), rel=0.05)

    def test_1d_input_accepted(self):
        assert v_statistic(np.ones(50)) == 0.0


class TestWindowedV:
    def test_window_count(self):
        x = np.zeros((400, 3))
        config = EnvironmentConfig(window_s=2.0, hop_s=1.0)
        centers, v = windowed_v(x, 100.0, config)
        assert centers.size == v.size == 3
        assert centers[0] == pytest.approx(1.0)

    def test_segment_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            windowed_v(np.zeros((10, 3)), 100.0, EnvironmentConfig(window_s=2.0))

    def test_detects_local_motion_burst(self):
        rng = np.random.default_rng(1)
        x = 0.05 * rng.normal(size=(1200, 5))
        x[400:600] += np.cumsum(rng.normal(size=(200, 5)), axis=0)
        config = EnvironmentConfig(window_s=1.0, hop_s=0.5)
        centers, v = windowed_v(x, 100.0, config)
        burst = (centers > 4.0) & (centers < 6.0)
        assert v[burst].mean() > 5 * v[~burst].mean()


class TestClassifyWindows:
    def test_three_way_split(self):
        config = EnvironmentConfig(stationary_band=(0.05, 1.0))
        states = classify_windows(np.array([0.01, 0.5, 5.0]), config)
        assert states[0] is ActivityState.NO_PERSON
        assert states[1] is ActivityState.SITTING
        assert states[2] is ActivityState.WALKING

    def test_band_edges_are_stationary(self):
        config = EnvironmentConfig(stationary_band=(0.05, 1.0))
        states = classify_windows(np.array([0.05, 1.0]), config)
        assert all(s is ActivityState.SITTING for s in states)


class TestDetectorOnSimulatedStates(object):
    @pytest.fixture(scope="class")
    def fig3_trace(self):
        scenario = dataclasses.replace(
            laboratory_scenario(clutter_seed=1),
            activity=ActivityScript.figure3_script(seed=1),
        )
        return capture_trace(scenario, duration_s=60.0, seed=1)

    def test_segment_classification(self, fig3_trace):
        detector = EnvironmentDetector()
        diff = phase_difference(fig3_trace)
        centers, v, states = detector.segment_report(diff, 400.0)
        script = ActivityScript.figure3_script(seed=1)

        def dominant_state(lo, hi):
            mask = (centers >= lo) & (centers < hi)
            values, counts = np.unique(
                [s.value for s in states[mask]], return_counts=True
            )
            return values[np.argmax(counts)]

        assert dominant_state(2.0, 13.0) == "sitting"
        assert dominant_state(17.0, 28.0) == "no_person"
        assert dominant_state(42.0, 58.0) == "walking"

    def test_stationary_fraction(self, fig3_trace):
        detector = EnvironmentDetector()
        diff = phase_difference(fig3_trace)
        fraction = detector.stationary_fraction(diff, 400.0)
        # Roughly the first quarter of the minute is usable.
        assert 0.1 < fraction < 0.6

    def test_is_stationary_on_pure_sitting(self, lab_trace):
        detector = EnvironmentDetector()
        assert detector.is_stationary(phase_difference(lab_trace))


class TestConfigValidation:
    def test_band_order(self):
        with pytest.raises(ConfigurationError):
            EnvironmentConfig(stationary_band=(1.0, 0.5))

    def test_positive_windows(self):
        with pytest.raises(ConfigurationError):
            EnvironmentConfig(window_s=0.0)
