"""Unit tests for the DWT band-splitting stage."""

import numpy as np
import pytest

from repro.core.dwt_stage import DWTConfig, decompose
from repro.errors import ConfigurationError


def mixed_signal(fs=20.0, n=1200, f_breath=0.25, f_heart=1.07):
    t = np.arange(n) / fs
    return np.sin(2 * np.pi * f_breath * t) + 0.1 * np.sin(2 * np.pi * f_heart * t)


class TestDecompose:
    def test_paper_bands(self):
        bands = decompose(mixed_signal(), 20.0)
        assert bands.breathing_band_hz == (0.0, 0.625)
        assert bands.heart_band_hz == (0.625, 2.5)

    def test_band_split_energies(self):
        fs = 20.0
        n = 2400
        t = np.arange(n) / fs
        breath = np.sin(2 * np.pi * 0.25 * t)
        heart = 0.1 * np.sin(2 * np.pi * 1.07 * t)
        bands = decompose(breath + heart, fs)
        # Breathing band: dominated by the 0.25 Hz tone.
        breath_corr = np.corrcoef(bands.breathing, breath)[0, 1]
        assert breath_corr > 0.99
        # Heart band: correlates with the heart tone, not breathing.
        heart_corr = np.corrcoef(bands.heart, heart)[0, 1]
        assert heart_corr > 0.8
        assert abs(np.corrcoef(bands.heart, breath)[0, 1]) < 0.1

    def test_reconstruction_lengths(self):
        signal = mixed_signal(n=777)
        bands = decompose(signal, 20.0)
        assert bands.breathing.size == 777
        assert bands.heart.size == 777

    def test_custom_level_and_wavelet(self):
        config = DWTConfig(wavelet="db2", level=3, heart_detail_levels=(2, 3))
        bands = decompose(mixed_signal(), 20.0, config)
        assert bands.breathing_band_hz == (0.0, 1.25)
        assert bands.decomposition.level == 3

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            decompose(np.zeros((100, 2)), 20.0)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            DWTConfig(level=0)
        with pytest.raises(ConfigurationError):
            DWTConfig(level=3, heart_detail_levels=(4,))
