"""Tests for the realtime sliding-window monitor."""

import numpy as np
import pytest

from repro.core.streaming import StreamingConfig, StreamingMonitor
from repro.errors import ConfigurationError


class TestStreamingConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StreamingConfig(window_s=0.0)
        with pytest.raises(ConfigurationError):
            StreamingConfig(window_s=10.0, hop_s=20.0)
        with pytest.raises(ConfigurationError):
            StreamingConfig(n_persons=0)


class TestStreamingMonitor:
    def test_no_estimate_before_window_fills(self, lab_trace):
        monitor = StreamingMonitor(
            400.0, StreamingConfig(window_s=20.0, hop_s=5.0)
        )
        outputs = [
            monitor.push_packet(lab_trace.csi[k], lab_trace.timestamps_s[k])
            for k in range(100)
        ]
        assert all(o is None for o in outputs)

    def test_emission_cadence(self, lab_trace):
        monitor = StreamingMonitor(
            400.0, StreamingConfig(window_s=20.0, hop_s=5.0)
        )
        estimates = monitor.push_trace(lab_trace)
        # 30 s trace, 20 s window, 5 s hop → estimates at ~20, 25, 30 s.
        assert len(estimates) == 3
        times = [e.time_s for e in estimates]
        assert times == sorted(times)
        assert times[0] == pytest.approx(20.0, abs=0.1)

    def test_estimates_track_truth(self, lab_trace, lab_person):
        monitor = StreamingMonitor(
            400.0, StreamingConfig(window_s=20.0, hop_s=5.0)
        )
        estimates = [e for e in monitor.push_trace(lab_trace) if e.ok]
        assert estimates, "no window produced an estimate"
        for estimate in estimates:
            rate = estimate.result.breathing_rates_bpm[0]
            assert rate == pytest.approx(lab_person.breathing_rate_bpm, abs=1.0)

    def test_rejected_window_reports_reason(self, rng):
        # Pure-noise packets: every window is rejected, not crashed on.
        monitor = StreamingMonitor(
            100.0, StreamingConfig(window_s=2.0, hop_s=1.0)
        )
        n = 400
        csi = 0.001 * (
            rng.normal(size=(n, 3, 30)) + 1j * rng.normal(size=(n, 3, 30))
        )
        outputs = []
        for k in range(n):
            out = monitor.push_packet(csi[k], k / 100.0)
            if out is not None:
                outputs.append(out)
        assert outputs
        assert all(not o.ok for o in outputs)
        assert all(
            o.rejected_reason in ("not-stationary", "estimation-failed")
            for o in outputs
        )

    def test_packet_shape_validated(self):
        monitor = StreamingMonitor(100.0)
        with pytest.raises(ConfigurationError):
            monitor.push_packet(np.zeros(30, dtype=complex), 0.0)

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamingMonitor(0.0)


class TestMultiPersonStreaming:
    def test_two_person_windows(self):
        from repro import Person, SinusoidalBreathing, capture_trace
        from repro.rf.scene import laboratory_scenario

        persons = [
            Person(
                position=(0.8, 5.5, 1.0),
                breathing=SinusoidalBreathing(
                    frequency_hz=0.20, amplitude_m=3e-3
                ),
                heartbeat=None,
            ),
            Person(
                position=(3.8, 5.8, 1.0),
                breathing=SinusoidalBreathing(
                    frequency_hz=0.32, amplitude_m=3e-3, phase=1.0
                ),
                heartbeat=None,
            ),
        ]
        scenario = laboratory_scenario(persons, clutter_seed=31)
        trace = capture_trace(scenario, duration_s=70.0, seed=31)
        monitor = StreamingMonitor(
            400.0,
            StreamingConfig(window_s=40.0, hop_s=15.0, n_persons=2),
        )
        estimates = [e for e in monitor.push_trace(trace) if e.ok]
        assert estimates
        for estimate in estimates:
            rates = estimate.result.breathing_rates_bpm
            assert len(rates) == 2
            assert rates[0] == pytest.approx(12.0, abs=1.0)
            assert rates[1] == pytest.approx(19.2, abs=1.0)
