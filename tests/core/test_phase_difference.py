"""Unit tests for phase-difference extraction (Theorem 1 behaviour)."""

import numpy as np
import pytest

from repro.core.phase_difference import phase_difference, raw_phase
from repro.dsp.stats import circular_resultant_length
from repro.errors import ConfigurationError


class TestPhaseDifference:
    def test_shape(self, lab_trace):
        diff = phase_difference(lab_trace)
        assert diff.shape == (lab_trace.n_packets, 30)

    def test_theorem1_stability(self, lab_trace):
        # Raw phase ≈ uniform on the circle; difference concentrated.
        raw = raw_phase(lab_trace)[:, 5]
        diff = phase_difference(lab_trace, unwrap=False)[:, 5]
        assert circular_resultant_length(raw) < 0.1
        assert circular_resultant_length(diff) > 0.9

    def test_unwrap_continuity(self, lab_trace):
        diff = phase_difference(lab_trace, unwrap=True)
        jumps = np.abs(np.diff(diff, axis=0))
        # Unwrapped series has no ±2π discontinuities.
        assert np.median(jumps) < 0.5

    def test_antenna_pair_order_flips_sign(self, short_lab_trace):
        forward = phase_difference(short_lab_trace, (0, 1), unwrap=False)
        backward = phase_difference(short_lab_trace, (1, 0), unwrap=False)
        # angle(a·conj(b)) = −angle(b·conj(a)) up to the ±π seam.
        s = np.mod(forward + backward + np.pi, 2 * np.pi) - np.pi
        assert np.allclose(s, 0.0, atol=1e-9)

    def test_carries_breathing_tone(self, lab_trace, lab_person):
        from repro.dsp.fft_utils import dominant_frequency

        diff = phase_difference(lab_trace)
        strongest = int(np.argmax(np.std(diff, axis=0)))
        f = dominant_frequency(diff[:, strongest], 400.0, band=(0.1, 0.7))
        assert f == pytest.approx(lab_person.breathing.frequency_hz, abs=0.02)

    def test_same_antenna_rejected(self, short_lab_trace):
        with pytest.raises(ConfigurationError):
            phase_difference(short_lab_trace, (1, 1))

    def test_out_of_range_antenna_rejected(self, short_lab_trace):
        with pytest.raises(ConfigurationError):
            phase_difference(short_lab_trace, (0, 5))


class TestRawPhase:
    def test_wrapped_range(self, short_lab_trace):
        phases = raw_phase(short_lab_trace)
        assert np.all(phases <= np.pi)
        assert np.all(phases >= -np.pi)

    def test_out_of_range_antenna_rejected(self, short_lab_trace):
        with pytest.raises(ConfigurationError):
            raw_phase(short_lab_trace, antenna=7)
