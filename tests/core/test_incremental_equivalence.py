"""Incremental streaming vs from-scratch equivalence.

The incremental monitor's contract has three layers, each pinned here:

* **engine == from-scratch trailing pass** — the monitor's live engine
  caches are bit-identical to :func:`trailing_calibrate` run over the same
  buffered packets, and a monitor whose engine is dropped (and therefore
  rebuilt from the buffer) before every window emits bit-identical
  estimates to one whose engine ran uninterrupted;
* **degraded windows == the batch monitor** — on impaired traces (loss,
  gaps, jitter) the incremental monitor transparently takes the exact
  batch path, so its estimate stream equals ``incremental=False`` bitwise;
* **batched stages == per-series loops** — the vectorized pipeline stages
  (multi-pair extraction, batched calibration, batched DWT) match their
  per-series reference loops within the 1e-9 equivalence budget.

Checkpoint/restore *after eviction has trimmed the buffer* (so the unwrap
anchor is no longer zero) is covered by the long-trace round trip at the
bottom — the case the plain checkpoint suite's short trace cannot reach.
"""

import numpy as np
import pytest

from repro import capture_trace, laboratory_scenario
from repro.core.calibration import calibrate
from repro.core.dwt_stage import decompose, decompose_matrix
from repro.core.phase_difference import phase_difference, wrapped_pair_matrix
from repro.core.pipeline import PhaseBeat, pair_difference_matrix
from repro.core.streaming import StreamingConfig, StreamingMonitor
from repro.core.subcarrier_selection import (
    amplitude_mask_from_mean,
    amplitude_quality_mask,
)
from repro.dsp.streaming_kernels import trailing_calibrate
from repro.obs import Instrumentation
from repro.rf.impairments import (
    BernoulliLoss,
    DropoutGap,
    TimestampJitter,
    apply_impairments,
)

CONFIG = StreamingConfig(window_s=8.0, hop_s=0.5)
BATCH_CONFIG = StreamingConfig(window_s=8.0, hop_s=0.5, incremental=False)

PAIRS = [(0, 1), (0, 2)]


def assert_estimates_bitwise_equal(actual, expected):
    """Two StreamingEstimate lists carry identical decisions and values."""
    assert len(actual) == len(expected)
    for a, e in zip(actual, expected):
        assert a.time_s == e.time_s
        assert a.rejected_reason == e.rejected_reason
        assert a.held_over == e.held_over
        assert a.staleness_s == e.staleness_s
        if e.result is None:
            assert a.result is None
        else:
            assert a.result.breathing_rates_bpm == e.result.breathing_rates_bpm
            assert a.result.heart_rate_bpm == e.result.heart_rate_bpm


def counter_value(instrumentation, name):
    return instrumentation.registry.counter(name).value


class TestEngineMatchesFromScratch:
    def test_live_engine_caches_equal_trailing_calibrate(self, short_lab_trace):
        monitor = StreamingMonitor(short_lab_trace.sample_rate_hz, CONFIG)
        estimates = monitor.push_trace(short_lab_trace)
        assert any(e.fresh for e in estimates)
        engine = monitor._engine
        assert engine is not None, "clean trace must engage the engine"
        # The short trace never triggers eviction (the rebuild context
        # exceeds the pre-window surplus), so the buffer still holds every
        # packet and a from-scratch pass over it is directly comparable.
        assert len(monitor._buffer) == short_lab_trace.n_packets
        calibration = monitor._pipeline.config.calibration
        # The engine advances at emit time, so it covers the buffer up to
        # the last emitted window; packets pushed after that final hop are
        # buffered but not yet calibrated.
        n_rows = engine.n_rows
        assert n_rows > 0
        wrapped = wrapped_pair_matrix(
            np.stack(monitor._buffer)[:n_rows], monitor._pairs
        )
        reference = trailing_calibrate(
            wrapped,
            short_lab_trace.sample_rate_hz,
            trend_window_s=calibration.trend_window_s,
            noise_window_s=calibration.noise_window_s,
            hampel_threshold=calibration.hampel_threshold,
            decimation_factor=monitor._decimation,
        )
        np.testing.assert_array_equal(
            engine.unwrapped_window(0), reference.unwrapped
        )
        np.testing.assert_array_equal(
            engine.calibrated_window(0), reference.series
        )
        np.testing.assert_array_equal(
            engine.base_cycles, reference.cycles[0]
        )

    def test_rebuilding_every_window_is_bitwise_neutral(self, short_lab_trace):
        trace = short_lab_trace
        running = StreamingMonitor(trace.sample_rate_hz, CONFIG)
        running_estimates = running.push_trace(trace)

        rebuilt = StreamingMonitor(trace.sample_rate_hz, CONFIG)
        rebuilt_estimates = []
        for k in range(trace.n_packets):
            # Forget the engine before every packet: each emitted window
            # must rebuild from the retained buffer alone.
            rebuilt._drop_engine()
            out = rebuilt.push_packet(trace.csi[k], float(trace.timestamps_s[k]))
            if out is not None:
                rebuilt_estimates.append(out)

        assert any(e.fresh for e in running_estimates)
        assert_estimates_bitwise_equal(rebuilt_estimates, running_estimates)

    def test_incremental_windows_actually_served_by_engine(self, short_lab_trace):
        obs = Instrumentation()
        monitor = StreamingMonitor(
            short_lab_trace.sample_rate_hz, CONFIG, instrumentation=obs
        )
        estimates = monitor.push_trace(short_lab_trace)
        fresh = sum(1 for e in estimates if e.fresh)
        assert counter_value(obs, "monitor_incremental_windows_total") == len(
            estimates
        )
        assert counter_value(obs, "monitor_fallback_windows_total") == 0
        assert fresh > 0


class TestImpairedWindowsMatchBatchMonitor:
    @pytest.mark.parametrize(
        "impairment",
        [
            BernoulliLoss(loss_fraction=0.1),
            DropoutGap(duration_s=0.3, start_s=4.0),
            TimestampJitter(std_s=0.004),
        ],
        ids=["bernoulli-loss", "dropout-gap", "timestamp-jitter"],
    )
    def test_fallback_estimates_bitwise_equal_batch_mode(
        self, short_lab_trace, impairment
    ):
        impaired = apply_impairments(short_lab_trace, [impairment], seed=0)
        obs = Instrumentation()
        incremental = StreamingMonitor(
            impaired.sample_rate_hz, CONFIG, instrumentation=obs
        )
        batch = StreamingMonitor(impaired.sample_rate_hz, BATCH_CONFIG)
        inc_estimates = incremental.push_trace(impaired)
        batch_estimates = batch.push_trace(impaired)
        assert inc_estimates, "impaired trace produced no windows"
        # Every one of these impairments breaks per-step timing inside the
        # retained context, so the engine must never serve a window ...
        assert counter_value(obs, "monitor_incremental_windows_total") == 0
        # ... and the batch fallback must make the two modes coincide.
        assert_estimates_bitwise_equal(inc_estimates, batch_estimates)

    def test_clean_and_impaired_accuracy_parity(self, lab_trace, lab_person):
        # Both modes, clean 30 s trace: every fresh estimate lands within
        # the paper-level tolerance of the simulated ground truth.
        truth_bpm = lab_person.breathing.frequency_hz * 60.0
        config = StreamingConfig(window_s=20.0, hop_s=5.0)
        batch_config = StreamingConfig(
            window_s=20.0, hop_s=5.0, incremental=False
        )
        inc = StreamingMonitor(lab_trace.sample_rate_hz, config)
        bat = StreamingMonitor(lab_trace.sample_rate_hz, batch_config)
        inc_estimates = inc.push_trace(lab_trace)
        bat_estimates = bat.push_trace(lab_trace)
        assert [e.time_s for e in inc_estimates] == [
            e.time_s for e in bat_estimates
        ]
        assert all(e.fresh for e in inc_estimates)
        for estimate in inc_estimates + bat_estimates:
            assert estimate.result.breathing_rates_bpm[0] == pytest.approx(
                truth_bpm, abs=1.0
            )


class TestBatchedStagesMatchLoops:
    def test_pair_matrix_equals_per_pair_extraction(self, short_lab_trace):
        matrix = pair_difference_matrix(short_lab_trace, PAIRS)
        per_pair = np.hstack(
            [phase_difference(short_lab_trace, pair) for pair in PAIRS]
        )
        np.testing.assert_array_equal(matrix, per_pair)

    def test_wrapped_pair_matrix_equals_unwrapped_false_path(
        self, short_lab_trace
    ):
        wrapped = wrapped_pair_matrix(short_lab_trace.csi, PAIRS)
        per_pair = np.hstack(
            [
                phase_difference(short_lab_trace, pair, unwrap=False)
                for pair in PAIRS
            ]
        )
        np.testing.assert_array_equal(wrapped, per_pair)

    def test_wrapped_pair_matrix_is_extent_independent(self, rng):
        # Regression guard: extracting a block from a long CSI array must
        # equal extracting from that block alone, bitwise.  An expression
        # like ``a * np.conj(b)`` is NOT extent-independent — numpy elides
        # the large temporary into an in-place multiply with different
        # rounding above a size threshold — and the streaming engine's
        # blockwise-extend == rebuild-from-buffer bit-identity depends on
        # this function never taking that path.
        n = 4000
        csi = rng.standard_normal((n, 3, 30)) + 1j * rng.standard_normal(
            (n, 3, 30)
        )
        full = wrapped_pair_matrix(csi, PAIRS)
        for start, stop in [(0, 100), (1600, 1700), (500, 3500), (0, n)]:
            block = wrapped_pair_matrix(csi[start:stop], PAIRS)
            np.testing.assert_array_equal(full[start:stop], block)

    def test_batched_calibration_equals_per_column_loop(self, short_lab_trace):
        diff = pair_difference_matrix(short_lab_trace, PAIRS)[:, :8]
        rate = short_lab_trace.sample_rate_hz
        batched = calibrate(diff, rate)
        for col in range(diff.shape[1]):
            single = calibrate(diff[:, col : col + 1], rate)
            np.testing.assert_allclose(
                batched.series[:, col], single.series[:, 0], rtol=0, atol=1e-9
            )
            assert single.sample_rate_hz == batched.sample_rate_hz

    def test_batched_dwt_equals_per_column_loop(self, rng):
        matrix = rng.normal(size=(400, 6))
        bands = decompose_matrix(matrix, 20.0)
        for col in range(6):
            single = decompose(matrix[:, col], 20.0)
            np.testing.assert_allclose(
                bands.breathing[:, col], single.breathing, rtol=0, atol=1e-9
            )
            np.testing.assert_allclose(
                bands.heart[:, col], single.heart, rtol=0, atol=1e-9
            )
        assert bands.breathing_band_hz == decompose(matrix[:, 0], 20.0).breathing_band_hz

    def test_amplitude_mask_from_mean_equals_trace_path(self, short_lab_trace):
        mean_amplitude = np.abs(short_lab_trace.csi).mean(axis=0)
        for pair in PAIRS:
            np.testing.assert_array_equal(
                amplitude_mask_from_mean(mean_amplitude, pair),
                amplitude_quality_mask(short_lab_trace, pair),
            )

    def test_batch_process_unchanged_by_refactor_wiring(self, short_lab_trace):
        # The refactored process() (batched extraction + shared back half)
        # must agree with itself across monitor and direct invocation.
        pipeline = PhaseBeat()
        direct = pipeline.process(short_lab_trace)
        assert direct.breathing_rates_bpm[0] == pytest.approx(15.0, abs=1.5)


@pytest.fixture(scope="module")
def eviction_trace(lab_person):
    """24 s / 200 Hz capture: long enough that the incremental monitor
    evicts pre-window context (the unwrap anchor moves off zero)."""
    scenario = laboratory_scenario([lab_person], clutter_seed=5)
    return capture_trace(
        scenario, duration_s=24.0, sample_rate_hz=200.0, seed=5
    )


class TestCheckpointAfterEviction:
    CONFIG = StreamingConfig(window_s=8.0, hop_s=1.0)

    def push_range(self, monitor, trace, start, stop):
        out = []
        for k in range(start, stop):
            estimate = monitor.push_packet(
                trace.csi[k], float(trace.timestamps_s[k])
            )
            if estimate is not None:
                out.append(estimate)
        return out

    def test_restore_bit_identical_with_moved_anchor(self, eviction_trace):
        trace = eviction_trace
        cut = 4000  # t = 20 s: eviction has already trimmed the buffer

        reference = StreamingMonitor(trace.sample_rate_hz, self.CONFIG)
        ref_estimates = self.push_range(reference, trace, 0, trace.n_packets)
        assert any(e.fresh for e in ref_estimates)
        assert len(reference._buffer) < trace.n_packets, (
            "trace too short to exercise eviction"
        )

        first = StreamingMonitor(trace.sample_rate_hz, self.CONFIG)
        estimates_a = self.push_range(first, trace, 0, cut)
        state = first.checkpoint()
        assert state["engine_cycles"] is not None
        assert len(state["buffer"]) < cut, (
            "checkpoint taken before eviction started"
        )

        second = StreamingMonitor(trace.sample_rate_hz, self.CONFIG)
        second.restore(state)
        estimates_b = self.push_range(second, trace, cut, trace.n_packets)

        assert estimates_b, "no estimates after restore"
        assert_estimates_bitwise_equal(estimates_a + estimates_b, ref_estimates)
        assert second.counters == reference.counters
