"""Streaming error paths: packet validation, quality gates, holdover, recovery.

Complements ``test_streaming.py`` (which covers the happy path and the
motion/noise rejections): every structured rejection reason, the holdover /
staleness machinery, automatic recovery after a dropout, and ``push_trace``
over impaired traces.
"""

import numpy as np
import pytest

from repro.core.streaming import StreamingConfig, StreamingMonitor
from repro.errors import TraceFormatError
from repro.rf.impairments import BernoulliLoss, DropoutGap, apply_impairments


@pytest.fixture(scope="module")
def long_lab_trace(lab_person):
    """60 s laboratory capture: long enough for a dropout to slide fully
    out of a 20 s analysis window with room to recover."""
    from repro import capture_trace, laboratory_scenario

    scenario = laboratory_scenario([lab_person], clutter_seed=1)
    return capture_trace(scenario, duration_s=60.0, seed=1)


def noise_packet(rng, n_rx=3, n_sub=30):
    return 0.01 * (
        rng.normal(size=(n_rx, n_sub)) + 1j * rng.normal(size=(n_rx, n_sub))
    )


class TestPacketValidation:
    def test_nan_timestamp_dropped_and_counted(self, rng):
        monitor = StreamingMonitor(100.0)
        assert monitor.push_packet(noise_packet(rng), np.nan) is None
        assert monitor.counters["dropped_nonfinite_timestamp"] == 1
        assert len(monitor._times) == 0

    def test_nonfinite_csi_dropped_and_counted(self, rng):
        monitor = StreamingMonitor(100.0)
        packet = noise_packet(rng)
        packet[0, 0] = np.nan
        assert monitor.push_packet(packet, 0.0) is None
        assert monitor.counters["dropped_nonfinite_csi"] == 1

    def test_backward_timestamp_dropped(self, rng):
        monitor = StreamingMonitor(100.0, StreamingConfig(window_s=5.0, hop_s=1.0))
        monitor.push_packet(noise_packet(rng), 0.00)
        monitor.push_packet(noise_packet(rng), 0.01)
        monitor.push_packet(noise_packet(rng), 0.005)  # glitch: behind last
        assert monitor.counters["dropped_backward_timestamp"] == 1
        assert len(monitor._times) == 2

    def test_large_backward_jump_resets_stream(self, rng):
        monitor = StreamingMonitor(100.0, StreamingConfig(window_s=2.0, hop_s=1.0))
        for k in range(50):
            monitor.push_packet(noise_packet(rng), 100.0 + k / 100.0)
        monitor.push_packet(noise_packet(rng), 1.0)  # counter restarted
        assert monitor.counters["stream_resets"] == 1
        assert len(monitor._times) == 1  # only the post-reset packet

    def test_mid_stream_shape_change_rejected(self, rng):
        monitor = StreamingMonitor(100.0)
        monitor.push_packet(noise_packet(rng, n_rx=3), 0.0)
        with pytest.raises(TraceFormatError):
            monitor.push_packet(noise_packet(rng, n_rx=2), 0.01)


class TestTimeBasedWindowing:
    def test_lossy_stream_still_spans_full_window(self, rng):
        # Half the packets missing: a count-based window would cover 2×
        # window_s of wall time; the time-based one must not.
        monitor = StreamingMonitor(
            100.0,
            StreamingConfig(
                window_s=4.0, hop_s=1.0, max_loss_fraction=0.9, max_gap_s=1.0
            ),
        )
        keep = rng.random(1000) > 0.5
        emitted = []
        for k in range(1000):
            if not keep[k]:
                continue
            out = monitor.push_packet(noise_packet(rng), k / 100.0)
            if out is not None:
                emitted.append(out)
        assert emitted
        for estimate in emitted:
            assert estimate.quality is not None
            assert estimate.quality.duration_s == pytest.approx(4.0, abs=0.1)
            assert estimate.quality.loss_fraction == pytest.approx(0.5, abs=0.1)


class TestQualityGates:
    def test_data_gap_rejection(self, rng):
        monitor = StreamingMonitor(
            100.0, StreamingConfig(window_s=2.0, hop_s=1.0, max_gap_s=0.5)
        )
        outputs = []
        for k in range(400):
            if 100 <= k < 180:  # a 0.8 s dropout
                continue
            out = monitor.push_packet(noise_packet(rng), k / 100.0)
            if out is not None:
                outputs.append(out)
        assert any(o.rejected_reason == "data-gap" for o in outputs)
        # No rejected window sneaks through as an unflagged estimate.
        for o in outputs:
            assert o.fresh == (o.rejected_reason is None)

    def test_degraded_input_rejection_on_heavy_loss(self, rng):
        monitor = StreamingMonitor(
            100.0,
            StreamingConfig(
                window_s=2.0, hop_s=1.0, max_gap_s=0.5, max_loss_fraction=0.25
            ),
        )
        outputs = []
        for k in range(0, 600, 3):  # two of three packets lost, no long gap
            out = monitor.push_packet(noise_packet(rng), k / 100.0)
            if out is not None:
                outputs.append(out)
        assert outputs
        assert all(o.rejected_reason == "degraded-input" for o in outputs)

    def test_degraded_input_rejection_on_too_few_packets(self, rng):
        monitor = StreamingMonitor(
            2.0,
            StreamingConfig(
                window_s=5.0, hop_s=5.0, max_gap_s=1.0, max_loss_fraction=0.9
            ),
        )
        outputs = []
        for k in range(12):  # 0.5 s spacing: spans the window with 11 gaps
            out = monitor.push_packet(noise_packet(rng), 0.5 * k)
            if out is not None:
                outputs.append(out)
        assert outputs
        assert all(o.rejected_reason == "degraded-input" for o in outputs)


class TestHoldover:
    def _fill_good(self, monitor, trace):
        estimates = monitor.push_trace(trace)
        fresh = [e for e in estimates if e.fresh]
        assert fresh, "setup failed: no good estimate from the clean trace"
        return fresh[-1]

    def test_rejected_window_holds_last_good_estimate(self, lab_trace, rng):
        monitor = StreamingMonitor(
            400.0, StreamingConfig(window_s=20.0, hop_s=5.0, holdover_s=30.0)
        )
        last_good = self._fill_good(monitor, lab_trace)
        # Continue the stream after a 1 s silence: gap-containing windows
        # must re-emit the held estimate, flagged.
        t0 = float(lab_trace.timestamps_s[-1]) + 1.0
        held = []
        for k in range(4000):
            out = monitor.push_packet(lab_trace.csi[k], t0 + k / 400.0)
            if out is not None:
                held.append(out)
        assert held
        for estimate in held:
            if estimate.rejected_reason == "data-gap":
                assert estimate.held_over and estimate.ok
                assert estimate.result is last_good.result
                assert estimate.staleness_s > 0
                assert not estimate.fresh

    def test_holdover_expires_after_budget(self, lab_trace, rng):
        monitor = StreamingMonitor(
            400.0, StreamingConfig(window_s=20.0, hop_s=5.0, holdover_s=8.0)
        )
        self._fill_good(monitor, lab_trace)
        # Sparse packets 0.6 s apart: every window trips the gap gate, so
        # the stream never produces another fresh estimate and staleness
        # keeps growing past the 8 s budget.
        t0 = float(lab_trace.timestamps_s[-1])
        outputs = []
        for k in range(1, 80):
            out = monitor.push_packet(lab_trace.csi[k], t0 + 0.6 * k)
            if out is not None:
                outputs.append(out)
        assert any(o.held_over for o in outputs)
        expired = [o for o in outputs if o.staleness_s == 0 and not o.ok]
        assert expired, "holdover never expired"
        assert all(o.rejected_reason is not None for o in outputs)

    def test_holdover_disabled_with_zero_budget(self, lab_trace):
        monitor = StreamingMonitor(
            400.0, StreamingConfig(window_s=20.0, hop_s=5.0, holdover_s=0.0)
        )
        self._fill_good(monitor, lab_trace)
        t0 = float(lab_trace.timestamps_s[-1])
        outputs = []
        for k in range(1, 40):
            out = monitor.push_packet(lab_trace.csi[k], t0 + 0.6 * k)
            if out is not None:
                outputs.append(out)
        assert outputs
        assert all(not o.ok for o in outputs)


class TestImpairedTraceStreaming:
    def test_recovery_after_dropout(self, long_lab_trace):
        impaired = apply_impairments(
            long_lab_trace,
            [BernoulliLoss(0.1), DropoutGap(1.0, start_s=30.0)],
            seed=7,
        )
        monitor = StreamingMonitor(
            400.0, StreamingConfig(window_s=20.0, hop_s=5.0)
        )
        estimates = monitor.push_trace(impaired)
        assert estimates
        gap_windows = [e for e in estimates if e.rejected_reason == "data-gap"]
        assert gap_windows, "the dropout never tripped the gap gate"
        # Impaired windows are never emitted unflagged...
        for e in estimates:
            assert e.fresh == (e.rejected_reason is None)
        # ...and once the gap slides out of the window, estimation resumes.
        t_recovered = max(e.time_s for e in gap_windows)
        resumed = [e for e in estimates if e.time_s > t_recovered and e.fresh]
        assert resumed, "monitor never recovered after the dropout"

    def test_ten_percent_loss_keeps_tracking_truth(self, lab_trace, lab_person):
        impaired = BernoulliLoss(0.1)(lab_trace, seed=3)
        monitor = StreamingMonitor(
            400.0, StreamingConfig(window_s=20.0, hop_s=5.0)
        )
        fresh = [e for e in monitor.push_trace(impaired) if e.fresh]
        assert fresh, "no fresh estimate from a 10%-loss stream"
        for estimate in fresh:
            rate = estimate.result.breathing_rates_bpm[0]
            assert rate == pytest.approx(lab_person.breathing_rate_bpm, abs=1.0)
            assert estimate.result.diagnostics.reclocked

    def test_glitched_trace_streams_without_crash(self, lab_trace):
        from repro.rf.impairments import ClockGlitch

        impaired = ClockGlitch(0.5, at_s=15.0)(lab_trace, seed=1)
        monitor = StreamingMonitor(
            400.0, StreamingConfig(window_s=10.0, hop_s=5.0)
        )
        estimates = monitor.push_trace(impaired)
        assert monitor.counters["dropped_backward_timestamp"] > 0
        assert any(e.fresh for e in estimates)
