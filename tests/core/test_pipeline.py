"""Integration tests for the end-to-end PhaseBeat pipeline."""

import dataclasses

import numpy as np
import pytest

from repro.core.pipeline import PhaseBeat, PhaseBeatConfig
from repro.errors import NotStationaryError
from repro.physio.breathing import SinusoidalBreathing
from repro.physio.motion import ActivityScript, ActivityState, MotionEvent
from repro.physio.person import Person
from repro.rf.receiver import capture_trace
from repro.rf.scene import laboratory_scenario


class TestSinglePerson:
    def test_breathing_accuracy(self, lab_trace, lab_person):
        result = PhaseBeat().process(lab_trace, estimate_heart=False)
        assert result.breathing_rates_bpm[0] == pytest.approx(
            lab_person.breathing_rate_bpm, abs=0.5
        )
        assert result.breathing[0].method == "peak"

    def test_heart_accuracy_with_directional_tx(
        self, directional_trace, lab_person
    ):
        # The V band is calibrated on the omni setup; heart runs use the
        # directional TX and skip enforcement (as the fig. 12 harness does).
        config = PhaseBeatConfig(enforce_stationarity=False)
        result = PhaseBeat(config).process(directional_trace)
        assert result.heart_rate_bpm == pytest.approx(
            lab_person.heart_rate_bpm, abs=2.0
        )
        assert result.heart.method == "fft+3bin"

    def test_heart_skipped_when_not_requested(self, lab_trace):
        result = PhaseBeat().process(lab_trace, estimate_heart=False)
        assert result.heart is None
        assert result.heart_rate_bpm is None

    def test_diagnostics_populated(self, lab_trace):
        result = PhaseBeat().process(lab_trace, estimate_heart=False)
        d = result.diagnostics
        assert d.environment_state is ActivityState.SITTING
        assert 0 <= d.selected_subcarrier < 30
        assert d.calibrated_rate_hz == pytest.approx(20.0)
        assert d.breathing_band_hz == (0.0, 0.625)
        assert d.heart_band_hz == (0.625, 2.5)
        assert len(d.candidate_subcarriers) == 3
        assert d.selected_antenna_pair in [(0, 1), (1, 2)]

    def test_signals_exposed_for_plotting(self, lab_trace):
        result = PhaseBeat().process(lab_trace, estimate_heart=False)
        assert result.breathing_signal.size == result.diagnostics.n_calibrated_samples

    def test_forced_fft_method(self, lab_trace, lab_person):
        result = PhaseBeat().process(
            lab_trace, estimate_heart=False, breathing_method="fft"
        )
        assert result.breathing[0].method == "fft"
        assert result.breathing_rates_bpm[0] == pytest.approx(
            lab_person.breathing_rate_bpm, abs=0.5
        )

    def test_unknown_method_rejected(self, lab_trace):
        with pytest.raises(ValueError):
            PhaseBeat().process(lab_trace, breathing_method="wavelet")


class TestEnvironmentGating:
    def test_walking_trace_rejected(self):
        scenario = dataclasses.replace(
            laboratory_scenario(clutter_seed=4),
            activity=ActivityScript(
                events=(MotionEvent(ActivityState.WALKING, 0.0, 20.0),), seed=4
            ),
        )
        trace = capture_trace(scenario, duration_s=15.0, seed=4)
        with pytest.raises(NotStationaryError) as excinfo:
            PhaseBeat().process(trace)
        assert excinfo.value.state == "walking"

    def test_enforcement_can_be_disabled(self):
        scenario = dataclasses.replace(
            laboratory_scenario(clutter_seed=4),
            activity=ActivityScript(
                events=(MotionEvent(ActivityState.WALKING, 0.0, 20.0),), seed=4
            ),
        )
        trace = capture_trace(scenario, duration_s=15.0, seed=4)
        config = PhaseBeatConfig(enforce_stationarity=False)
        # Must not raise NotStationaryError (the estimate may be poor).
        try:
            PhaseBeat(config).process(trace, estimate_heart=False)
        except NotStationaryError:  # pragma: no cover
            pytest.fail("stationarity was enforced despite the config")
        except Exception:
            pass  # estimation failures are acceptable on garbage input

    def test_empty_room_rejected(self):
        scenario = dataclasses.replace(
            laboratory_scenario(clutter_seed=5),
            activity=ActivityScript(
                events=(MotionEvent(ActivityState.NO_PERSON, 0.0, 30.0),)
            ),
        )
        trace = capture_trace(scenario, duration_s=15.0, seed=5)
        with pytest.raises(NotStationaryError) as excinfo:
            PhaseBeat().process(trace)
        assert excinfo.value.state == "no_person"


class TestMultiPerson:
    @pytest.fixture(scope="class")
    def two_person_trace(self):
        persons = [
            Person(
                position=(0.8, 5.5, 1.0),
                breathing=SinusoidalBreathing(
                    frequency_hz=0.20, amplitude_m=3e-3
                ),
                heartbeat=None,
            ),
            Person(
                position=(3.8, 5.8, 1.0),
                breathing=SinusoidalBreathing(
                    frequency_hz=0.30, amplitude_m=3e-3, phase=1.0
                ),
                heartbeat=None,
            ),
        ]
        scenario = laboratory_scenario(persons, clutter_seed=6)
        return capture_trace(scenario, duration_s=60.0, seed=6)

    def test_root_music_resolves_both(self, two_person_trace):
        result = PhaseBeat().process(
            two_person_trace, n_persons=2, estimate_heart=False
        )
        rates = np.asarray(result.breathing_rates_bpm)
        assert rates.size == 2
        assert rates[0] == pytest.approx(12.0, abs=0.7)
        assert rates[1] == pytest.approx(18.0, abs=0.7)
        assert result.breathing[0].method == "root-music"

    def test_music_single_subcarrier_variant(self, two_person_trace):
        result = PhaseBeat().process(
            two_person_trace,
            n_persons=2,
            estimate_heart=False,
            breathing_method="music-single",
        )
        assert result.breathing[0].method == "root-music-1sc"

    def test_no_heart_for_multi_person(self, two_person_trace):
        result = PhaseBeat().process(
            two_person_trace, n_persons=2, estimate_heart=True
        )
        assert result.heart is None


class TestPairDiversity:
    def test_diversity_can_select_second_pair(self, lab_trace):
        # With diversity the selected pair is one of the two adjacent pairs;
        # disabling diversity pins it to the configured pair.
        with_div = PhaseBeat(PhaseBeatConfig(use_pair_diversity=True)).process(
            lab_trace, estimate_heart=False
        )
        without = PhaseBeat(PhaseBeatConfig(use_pair_diversity=False)).process(
            lab_trace, estimate_heart=False
        )
        assert without.diagnostics.selected_antenna_pair == (0, 1)
        assert with_div.diagnostics.selected_antenna_pair in [(0, 1), (1, 2)]

    def test_both_modes_estimate_correctly(self, lab_trace, lab_person):
        for diversity in (True, False):
            config = PhaseBeatConfig(use_pair_diversity=diversity)
            result = PhaseBeat(config).process(lab_trace, estimate_heart=False)
            assert result.breathing_rates_bpm[0] == pytest.approx(
                lab_person.breathing_rate_bpm, abs=0.6
            )
