"""Tests for apnea (breathing-cessation) detection."""

import numpy as np
import pytest

from repro.core.apnea import (
    ApneaConfig,
    ApneaEvent,
    breathing_envelope,
    detect_apnea,
)
from repro.errors import ConfigurationError, SignalTooShortError
from repro.physio import ApneicBreathing, SinusoidalBreathing


def breathing_with_pauses(pauses, fs=20.0, duration=120.0, residual=0.0):
    model = ApneicBreathing(
        base=SinusoidalBreathing(frequency_hz=0.25),
        pauses_s=pauses,
        residual=residual,
    )
    t = np.arange(int(duration * fs)) / fs
    return model.displacement(t)


class TestEnvelope:
    def test_constant_amplitude_tone(self):
        fs = 20.0
        x = np.sin(2 * np.pi * 0.25 * np.arange(1200) / fs)
        envelope = breathing_envelope(x, fs)
        interior = envelope[100:-100]
        # The envelope of a unit sine sits near its median |value| ≈ 0.71.
        assert np.all(interior > 0.4)
        assert np.all(interior < 1.01)

    def test_collapses_during_pause(self):
        fs = 20.0
        x = breathing_with_pauses(((30.0, 20.0),), fs=fs, duration=80.0)
        envelope = breathing_envelope(x, fs)
        inside = envelope[int(35 * fs) : int(45 * fs)]
        outside = envelope[int(5 * fs) : int(25 * fs)]
        assert inside.max() < 0.2 * np.median(outside)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            breathing_envelope(np.zeros((5, 2)), 20.0)
        with pytest.raises(ConfigurationError):
            breathing_envelope(np.zeros(100), 0.0)


class TestDetectApnea:
    def test_single_event(self):
        x = breathing_with_pauses(((40.0, 15.0),))
        events = detect_apnea(x, 20.0)
        assert len(events) == 1
        assert events[0].start_s == pytest.approx(40.0, abs=2.0)
        assert events[0].end_s == pytest.approx(55.0, abs=2.0)
        assert events[0].duration_s == pytest.approx(15.0, abs=3.0)

    def test_two_events(self):
        x = breathing_with_pauses(((30.0, 12.0), (80.0, 20.0)))
        events = detect_apnea(x, 20.0)
        assert len(events) == 2
        assert events[0].start_s < events[1].start_s

    def test_short_pause_not_scored(self):
        # 5 s pause is below the 10 s clinical minimum.
        x = breathing_with_pauses(((40.0, 5.0),))
        events = detect_apnea(x, 20.0)
        assert events == []

    def test_no_pause_no_events(self):
        fs = 20.0
        x = np.sin(2 * np.pi * 0.25 * np.arange(2400) / fs)
        assert detect_apnea(x, fs) == []

    def test_partial_obstruction_depth(self):
        x = breathing_with_pauses(((40.0, 15.0),), residual=0.2)
        events = detect_apnea(
            x, 20.0, ApneaConfig(drop_fraction=0.5)
        )
        assert len(events) == 1
        assert 0.1 < events[0].depth < 0.5

    def test_merge_gap_joins_flickers(self):
        # Two 6 s pauses separated by 1 s merge into one ≥10 s event.
        x = breathing_with_pauses(((40.0, 6.0), (47.0, 6.0)))
        events = detect_apnea(x, 20.0, ApneaConfig(merge_gap_s=3.0))
        assert len(events) == 1
        assert events[0].duration_s > 10.0

    def test_too_short_signal_rejected(self):
        with pytest.raises(SignalTooShortError):
            detect_apnea(np.zeros(50), 20.0)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ApneaConfig(min_duration_s=0.0)
        with pytest.raises(ConfigurationError):
            ApneaConfig(drop_fraction=1.5)
        with pytest.raises(ConfigurationError):
            ApneaConfig(merge_gap_s=-1.0)

    def test_event_dataclass(self):
        event = ApneaEvent(start_s=10.0, end_s=25.0, depth=0.05)
        assert event.duration_s == 15.0


class TestEndToEnd:
    def test_detection_through_rf_chain(self):
        """Apnea events survive the full simulate → pipeline → detect path."""
        from repro import (
            Person,
            PhaseBeat,
            PhaseBeatConfig,
            capture_trace,
            laboratory_scenario,
        )

        sleeper = Person(
            position=(2.2, 3.0, 0.6),
            breathing=ApneicBreathing(
                base=SinusoidalBreathing(frequency_hz=0.22),
                pauses_s=((40.0, 15.0),),
            ),
            heartbeat=None,
        )
        scenario = laboratory_scenario([sleeper], clutter_seed=9)
        trace = capture_trace(scenario, duration_s=90.0, seed=9)
        result = PhaseBeat(PhaseBeatConfig(enforce_stationarity=False)).process(
            trace, estimate_heart=False
        )
        events = detect_apnea(
            result.breathing_signal, result.diagnostics.calibrated_rate_hz
        )
        assert len(events) == 1
        assert events[0].start_s == pytest.approx(40.0, abs=3.0)
        assert events[0].duration_s == pytest.approx(15.0, abs=4.0)
