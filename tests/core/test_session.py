"""Tests for the session-level report API."""

import numpy as np
import pytest

from repro import Person, SinusoidalBreathing, capture_trace, laboratory_scenario
from repro.core.session import SessionReport, analyze_session
from repro.errors import ConfigurationError
from repro.physio import ApneicBreathing


@pytest.fixture(scope="module")
def clean_session():
    person = Person(
        position=(2.2, 3.0, 1.0),
        breathing=SinusoidalBreathing(frequency_hz=0.25),
        heartbeat=None,
    )
    scenario = laboratory_scenario([person], clutter_seed=11)
    trace = capture_trace(scenario, duration_s=90.0, seed=11)
    return person, analyze_session(trace)


@pytest.fixture(scope="module")
def apneic_session():
    sleeper = Person(
        position=(2.2, 3.0, 0.6),
        breathing=ApneicBreathing(
            base=SinusoidalBreathing(frequency_hz=0.24),
            pauses_s=((50.0, 14.0),),
        ),
        heartbeat=None,
    )
    scenario = laboratory_scenario([sleeper], clutter_seed=9)
    trace = capture_trace(scenario, duration_s=120.0, seed=9)
    return sleeper, analyze_session(trace)


class TestCleanSession:
    def test_rate_matches_truth(self, clean_session):
        person, report = clean_session
        assert report.breathing_rate_bpm == pytest.approx(
            person.breathing_rate_bpm, abs=0.5
        )

    def test_mostly_stationary(self, clean_session):
        _, report = clean_session
        assert report.stationary_fraction > 0.8

    def test_rate_trend_present_and_consistent(self, clean_session):
        person, report = clean_session
        times, rates = report.rate_over_time_bpm
        assert times.size >= 5
        assert np.all(np.abs(rates - person.breathing_rate_bpm) < 1.5)

    def test_waveform_statistics(self, clean_session):
        _, report = clean_session
        assert report.waveform is not None
        assert report.waveform.n_breaths > 15
        assert report.waveform.interval_cv_fraction < 0.1

    def test_no_apnea_on_clean_breathing(self, clean_session):
        _, report = clean_session
        assert report.apnea_events == ()
        assert report.apnea_index_per_hour == 0.0

    def test_heart_nan_when_not_requested(self, clean_session):
        _, report = clean_session
        assert np.isnan(report.heart_rate_bpm)


class TestApneicSession:
    def test_apnea_event_found(self, apneic_session):
        _, report = apneic_session
        assert len(report.apnea_events) == 1
        event = report.apnea_events[0]
        assert event.start_s == pytest.approx(50.0, abs=3.0)
        assert event.duration_s == pytest.approx(14.0, abs=4.0)

    def test_apnea_index(self, apneic_session):
        _, report = apneic_session
        # One event in 2 minutes → 30 per hour (duration_s is measured
        # from packet timestamps, so allow the last-packet offset).
        assert report.apnea_index_per_hour == pytest.approx(30.0, rel=0.01)

    def test_rate_still_estimated(self, apneic_session):
        sleeper, report = apneic_session
        assert report.breathing_rate_bpm == pytest.approx(
            sleeper.breathing.rate_bpm, abs=0.8
        )


class TestValidation:
    def test_too_short_session_rejected(self, short_lab_trace):
        with pytest.raises(ConfigurationError):
            analyze_session(short_lab_trace, window_s=60.0)

    def test_report_is_frozen(self, clean_session):
        _, report = clean_session
        assert isinstance(report, SessionReport)
        with pytest.raises(AttributeError):
            report.duration_s = 0.0
