"""Tests for respiration-waveform analytics."""

import numpy as np
import pytest

from repro.core.waveform import analyze_waveform, breath_intervals
from repro.errors import ConfigurationError, EstimationError


def sine_breathing(f=0.25, fs=20.0, n=2400):
    t = np.arange(n) / fs
    return np.sin(2 * np.pi * f * t)


def asymmetric_breathing(f=0.25, fs=20.0, n=2400, skew=0.3):
    """Fast inhale / slow exhale waveform (phase-warped sine)."""
    t = np.arange(n) / fs
    phase = 2 * np.pi * f * t
    warped = phase + skew * np.sin(phase)
    return np.sin(warped)


class TestBreathIntervals:
    def test_regular_breathing(self):
        intervals = breath_intervals(sine_breathing(), 20.0)
        assert np.allclose(intervals, 4.0, atol=0.1)

    def test_interval_count(self):
        # 120 s at 0.25 Hz → 30 crests → 29 intervals.
        intervals = breath_intervals(sine_breathing(), 20.0)
        assert 27 <= intervals.size <= 30

    def test_flat_signal_raises(self):
        with pytest.raises(EstimationError):
            breath_intervals(np.zeros(1200), 20.0)

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            breath_intervals(sine_breathing(), 0.0)


class TestAnalyzeWaveform:
    def test_regular_sine(self):
        stats = analyze_waveform(sine_breathing(), 20.0)
        assert stats.mean_rate_bpm == pytest.approx(15.0, abs=0.3)
        assert stats.interval_cv_fraction < 0.05
        assert stats.ie_ratio == pytest.approx(1.0, abs=0.15)

    def test_variability_detected(self):
        from repro.physio import RealisticBreathing

        steady = analyze_waveform(sine_breathing(), 20.0)
        t = np.arange(2400) / 20.0
        wandering = RealisticBreathing(
            frequency_hz=0.25, rate_jitter_fraction=0.08, seed=3
        ).displacement(t)
        wander_stats = analyze_waveform(wandering * 1000, 20.0)
        assert wander_stats.interval_cv_fraction > steady.interval_cv_fraction

    def test_asymmetric_ie_ratio(self):
        # Phase-warped sine: inspiration (trough→crest) shorter than
        # expiration (crest→trough) → I:E < 1.
        stats = analyze_waveform(asymmetric_breathing(skew=0.4), 20.0)
        assert stats.ie_ratio < 0.9

    def test_breath_count(self):
        stats = analyze_waveform(sine_breathing(), 20.0)
        assert 27 <= stats.n_breaths <= 30

    def test_on_pipeline_output(self, lab_trace, lab_person):
        from repro import PhaseBeat

        result = PhaseBeat().process(lab_trace, estimate_heart=False)
        stats = analyze_waveform(
            result.breathing_signal, result.diagnostics.calibrated_rate_hz
        )
        assert stats.mean_rate_bpm == pytest.approx(
            lab_person.breathing_rate_bpm, abs=0.7
        )
        assert stats.interval_cv_fraction < 0.2
