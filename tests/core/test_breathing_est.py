"""Unit tests for the three breathing-rate estimators."""

import numpy as np
import pytest

from repro.core.breathing import (
    FFTBreathingEstimator,
    MusicBreathingEstimator,
    PeakBreathingEstimator,
)
from repro.errors import ConfigurationError, EstimationError


def tone_mix(freqs, fs=20.0, n=1200, noise=0.02, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n) / fs
    x = sum(np.sin(2 * np.pi * f * t + i) for i, f in enumerate(freqs))
    return x + noise * rng.normal(size=n)


class TestPeakEstimator:
    def test_clean_tone(self):
        estimator = PeakBreathingEstimator()
        rate = estimator.estimate_bpm(tone_mix([0.25], noise=0.0), 20.0)
        assert rate == pytest.approx(15.0, abs=0.2)

    @pytest.mark.parametrize("f", [0.18, 0.25, 0.35, 0.45])
    def test_adaptive_window_covers_rate_range(self, f):
        estimator = PeakBreathingEstimator(adaptive_window=True)
        rate = estimator.estimate_bpm(tone_mix([f], noise=0.05, n=1800), 20.0)
        assert rate == pytest.approx(60 * f, abs=0.6)

    def test_fixed_window_mode(self):
        estimator = PeakBreathingEstimator(adaptive_window=False)
        rate = estimator.estimate_bpm(tone_mix([0.25], noise=0.0), 20.0)
        assert rate == pytest.approx(15.0, abs=0.3)

    def test_flat_signal_raises(self):
        estimator = PeakBreathingEstimator()
        with pytest.raises(EstimationError):
            estimator.estimate_bpm(np.zeros(600), 20.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PeakBreathingEstimator(window_samples=2)
        with pytest.raises(ConfigurationError):
            PeakBreathingEstimator(min_prominence_factor=-1.0)


class TestFFTEstimator:
    def test_single_rate(self):
        estimator = FFTBreathingEstimator()
        rates = estimator.estimate_bpm(tone_mix([0.25]), 20.0, 1)
        assert rates[0] == pytest.approx(15.0, abs=0.3)

    def test_two_separated_rates(self):
        estimator = FFTBreathingEstimator()
        rates = estimator.estimate_bpm(tone_mix([0.2, 0.3], n=2400), 20.0, 2)
        assert rates.size == 2
        assert rates[0] == pytest.approx(12.0, abs=0.3)
        assert rates[1] == pytest.approx(18.0, abs=0.3)

    def test_matrix_input_uses_strongest_column(self):
        x = tone_mix([0.25], n=1200)
        matrix = np.column_stack([0.01 * np.ones(1200), x])
        estimator = FFTBreathingEstimator()
        rates = estimator.estimate_bpm(matrix, 20.0, 1)
        assert rates[0] == pytest.approx(15.0, abs=0.3)

    def test_flat_signal_raises(self):
        with pytest.raises(EstimationError):
            FFTBreathingEstimator().estimate_bpm(np.zeros(600), 20.0, 1)

    def test_n_persons_validation(self):
        with pytest.raises(ConfigurationError):
            FFTBreathingEstimator().estimate_bpm(np.zeros(600), 20.0, 0)


class TestMusicEstimator:
    def test_paper_three_rates(self):
        estimator = MusicBreathingEstimator()
        x = tone_mix([0.1467, 0.2233, 0.2483], n=2400, noise=0.05)
        rates = estimator.estimate_bpm(x, 20.0, 3)
        assert np.allclose(rates, [8.80, 13.40, 14.90], atol=0.5)

    def test_resolves_pair_fft_cannot(self):
        # 25 s window: FFT resolution 0.04 Hz > the 0.025 Hz gap.
        x = tone_mix([0.2233, 0.2483], n=500, noise=0.01)
        fft_rates = FFTBreathingEstimator().estimate_bpm(x, 20.0, 2)
        music_rates = MusicBreathingEstimator().estimate_bpm(x, 20.0, 2)
        music_errors = np.abs(music_rates - [13.40, 14.90]).max()
        assert music_errors < 0.6
        fft_resolved = fft_rates.size == 2 and np.abs(
            fft_rates - [13.40, 14.90]
        ).max() < 0.6
        assert not fft_resolved

    def test_multichannel_matrix(self):
        rng = np.random.default_rng(3)
        base = tone_mix([0.2, 0.3], n=1200, noise=0.0)
        matrix = np.stack(
            [base + 0.1 * rng.normal(size=1200) for _ in range(8)], axis=1
        )
        rates = MusicBreathingEstimator().estimate_bpm(matrix, 20.0, 2)
        assert np.allclose(rates, [12.0, 18.0], atol=0.5)

    def test_n_persons_validation(self):
        with pytest.raises(ConfigurationError):
            MusicBreathingEstimator().estimate_bpm(np.zeros(600), 20.0, 0)
