"""Checkpoint/restore on the streaming monitor.

The supervisor's restart-from-checkpoint guarantee is only worth having if
a restored monitor is *bit-identical* to one that never stopped — same
buffer, same counters, same emissions.  These tests pin that down.
"""

import numpy as np
import pytest

from repro.core.streaming import StreamingConfig, StreamingMonitor
from repro.errors import CheckpointError

# 8 s windows on the 10 s / 200 Hz shared trace: long enough for real
# (fresh) estimates, so bit-identity below covers actual rate values.
CONFIG = StreamingConfig(window_s=8.0, hop_s=0.5)


def push_range(monitor, trace, start, stop):
    out = []
    for k in range(start, stop):
        estimate = monitor.push_packet(trace.csi[k], trace.timestamps_s[k])
        if estimate is not None:
            out.append(estimate)
    return out


class TestCheckpointRoundTrip:
    def test_restored_run_is_bit_identical(self, short_lab_trace):
        trace = short_lab_trace
        half = trace.n_packets // 2

        # Reference: one uninterrupted monitor over the whole trace.
        reference = StreamingMonitor(trace.sample_rate_hz, CONFIG)
        ref_estimates = push_range(reference, trace, 0, trace.n_packets)
        assert ref_estimates, "reference run produced no estimates"

        # Interrupted: first half, checkpoint, restore into a fresh
        # monitor, second half.
        first = StreamingMonitor(trace.sample_rate_hz, CONFIG)
        estimates_a = push_range(first, trace, 0, half)
        state = first.checkpoint()

        second = StreamingMonitor(trace.sample_rate_hz, CONFIG)
        second.restore(state)
        estimates_b = push_range(second, trace, half, trace.n_packets)

        resumed = estimates_a + estimates_b
        assert len(resumed) == len(ref_estimates)
        for ref, res in zip(ref_estimates, resumed):
            assert res.time_s == ref.time_s
            assert res.fresh == ref.fresh
            assert res.held_over == ref.held_over
            assert res.rejected_reason == ref.rejected_reason
            if ref.result is None:
                assert res.result is None
            else:
                # Bit-identical, not approximately equal.
                assert (
                    res.result.breathing_rates_bpm
                    == ref.result.breathing_rates_bpm
                )

        assert second.counters == reference.counters

    def test_checkpoint_is_a_snapshot_not_a_view(self, short_lab_trace):
        trace = short_lab_trace
        monitor = StreamingMonitor(trace.sample_rate_hz, CONFIG)
        push_range(monitor, trace, 0, 400)
        state = monitor.checkpoint()
        n_buffered = len(state["buffer"])
        # Keep pushing: the snapshot must not change underneath.
        push_range(monitor, trace, 400, 800)
        assert len(state["buffer"]) == n_buffered

    def test_checkpoint_is_json_free_but_copyable(self, short_lab_trace):
        import copy

        trace = short_lab_trace
        monitor = StreamingMonitor(trace.sample_rate_hz, CONFIG)
        push_range(monitor, trace, 0, 300)
        state = copy.deepcopy(monitor.checkpoint())
        fresh = StreamingMonitor(trace.sample_rate_hz, CONFIG)
        fresh.restore(state)
        assert len(fresh.counters) == len(monitor.counters)


class TestRestoreValidation:
    def test_rejects_wrong_version(self, short_lab_trace):
        monitor = StreamingMonitor(short_lab_trace.sample_rate_hz, CONFIG)
        state = monitor.checkpoint()
        state["version"] = 999
        with pytest.raises(CheckpointError):
            StreamingMonitor(short_lab_trace.sample_rate_hz, CONFIG).restore(
                state
            )

    def test_rejects_wrong_sample_rate(self, short_lab_trace):
        monitor = StreamingMonitor(short_lab_trace.sample_rate_hz, CONFIG)
        state = monitor.checkpoint()
        with pytest.raises(CheckpointError):
            StreamingMonitor(100.0, CONFIG).restore(state)

    def test_rejects_wrong_config(self, short_lab_trace):
        monitor = StreamingMonitor(short_lab_trace.sample_rate_hz, CONFIG)
        state = monitor.checkpoint()
        other = StreamingConfig(window_s=8.0, hop_s=2.0)
        with pytest.raises(CheckpointError):
            StreamingMonitor(short_lab_trace.sample_rate_hz, other).restore(
                state
            )

    def test_rejects_malformed_state(self, short_lab_trace):
        monitor = StreamingMonitor(short_lab_trace.sample_rate_hz, CONFIG)
        with pytest.raises(CheckpointError):
            monitor.restore({"version": 1})

    def test_rejects_corrupt_buffer_shapes(self, short_lab_trace):
        trace = short_lab_trace
        monitor = StreamingMonitor(trace.sample_rate_hz, CONFIG)
        push_range(monitor, trace, 0, 100)
        state = monitor.checkpoint()
        state["buffer"][0] = np.zeros((2, 2), dtype=complex)
        with pytest.raises(CheckpointError):
            StreamingMonitor(trace.sample_rate_hz, CONFIG).restore(state)
