"""Service-suite fixture: one longer, cheaper capture for fault tests.

Fault-recovery tests need room for a warm-up, a mid-run fault window, and
a clean tail longer than one analysis window — the 10 s shared trace is
too tight.  One 40 s capture at 100 Hz is built per session.
"""

from __future__ import annotations

import pytest

from repro import Person, capture_trace, laboratory_scenario
from repro.physio import SinusoidalBreathing, SinusoidalHeartbeat


@pytest.fixture(scope="session")
def service_trace():
    """40 s laboratory capture at 100 Hz (15 bpm ground truth)."""
    person = Person(
        position=(2.2, 3.0, 1.0),
        breathing=SinusoidalBreathing(frequency_hz=0.25),
        heartbeat=SinusoidalHeartbeat(frequency_hz=1.07),
    )
    scenario = laboratory_scenario([person], clutter_seed=4)
    return capture_trace(
        scenario, duration_s=40.0, sample_rate_hz=100.0, seed=4
    )
