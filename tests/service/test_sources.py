"""Packet sources: trace replay, scripted faults, and the resilient wrapper."""

import numpy as np
import pytest

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    SourceCrashedError,
    SourceTimeoutError,
    SourceUnavailableError,
    TransientSourceError,
)
from repro.service import (
    BreakerConfig,
    EventLog,
    FlakySourceAdapter,
    Packet,
    PacketSource,
    ResilientSource,
    RetryConfig,
    SimulatedClock,
    SourceFault,
    TracePacketSource,
)


@pytest.fixture()
def clock():
    return SimulatedClock()


class TestTracePacketSource:
    def test_is_a_packet_source(self, short_lab_trace, clock):
        source = TracePacketSource(short_lab_trace, clock)
        assert isinstance(source, PacketSource)

    def test_replays_every_packet_and_advances_clock(
        self, short_lab_trace, clock
    ):
        source = TracePacketSource(short_lab_trace, clock)
        count = 0
        while not source.exhausted:
            packet = source.next_packet()
            assert isinstance(packet, Packet)
            assert packet.timestamp_s == pytest.approx(
                float(short_lab_trace.timestamps_s[count])
            )
            count += 1
        assert count == short_lab_trace.n_packets
        assert clock.now_s == pytest.approx(
            float(short_lab_trace.timestamps_s[-1])
        )
        assert source.next_packet() is None

    def test_start_at_skips_the_past(self, short_lab_trace, clock):
        source = TracePacketSource(short_lab_trace, clock, start_at_s=5.0)
        packet = source.next_packet()
        assert packet is not None
        assert packet.timestamp_s >= 5.0


class TestSourceFault:
    def test_validates_kind_and_windows(self):
        with pytest.raises(ConfigurationError):
            SourceFault(kind="meteor", at_s=1.0)
        with pytest.raises(ConfigurationError):
            SourceFault(kind="stall", at_s=1.0)  # needs duration
        with pytest.raises(ConfigurationError):
            SourceFault(kind="hang", at_s=1.0)  # needs hang_s

    def test_end_time(self):
        fault = SourceFault(kind="stall", at_s=2.0, duration_s=3.0)
        assert fault.end_s == pytest.approx(5.0)


class TestFlakySourceAdapter:
    def test_transparent_without_faults(self, short_lab_trace, clock):
        source = FlakySourceAdapter(
            TracePacketSource(short_lab_trace, clock), clock
        )
        n = sum(1 for _ in iter(source.next_packet, None))
        assert n == short_lab_trace.n_packets

    def test_crash_is_permanent(self, short_lab_trace, clock):
        source = FlakySourceAdapter(
            TracePacketSource(short_lab_trace, clock),
            clock,
            faults=[SourceFault(kind="crash", at_s=2.0)],
        )
        while clock.now_s < 2.0:
            source.next_packet()
        with pytest.raises(SourceCrashedError):
            source.next_packet()
        with pytest.raises(SourceCrashedError):
            source.next_packet()

    def test_stall_returns_none_and_loses_the_backlog(
        self, short_lab_trace, clock
    ):
        interval = 1.0 / short_lab_trace.sample_rate_hz
        source = FlakySourceAdapter(
            TracePacketSource(short_lab_trace, clock),
            clock,
            faults=[SourceFault(kind="stall", at_s=2.0, duration_s=1.0)],
            nominal_interval_s=interval,
        )
        stall_polls = 0
        delivered_after = None
        while True:
            packet = source.next_packet()
            if packet is None:
                if source.exhausted:
                    break
                stall_polls += 1
                continue
            if stall_polls and delivered_after is None:
                delivered_after = packet.timestamp_s
        assert stall_polls > 0
        assert source.n_dropped_in_stalls > 0
        # The first packet delivered after the stall is from 'now', not
        # the pre-stall backlog.
        assert delivered_after is not None
        assert delivered_after >= 3.0 - interval

    def test_hang_consumes_simulated_time_once(self, short_lab_trace, clock):
        source = FlakySourceAdapter(
            TracePacketSource(short_lab_trace, clock),
            clock,
            faults=[SourceFault(kind="hang", at_s=2.0, hang_s=1.5)],
        )
        while clock.now_s < 2.0:
            source.next_packet()
        before = clock.now_s
        source.next_packet()
        assert clock.now_s - before >= 1.5
        # Only one read hangs.
        before = clock.now_s
        source.next_packet()
        assert clock.now_s - before < 1.0

    def test_transient_errors_fire_inside_window_only(
        self, short_lab_trace, clock
    ):
        source = FlakySourceAdapter(
            TracePacketSource(short_lab_trace, clock),
            clock,
            faults=[
                SourceFault(
                    kind="transient-errors",
                    at_s=2.0,
                    duration_s=1.0,
                    probability=1.0,
                )
            ],
            seed=7,
        )
        errors = 0
        while not source.exhausted:
            try:
                source.next_packet()
            except TransientSourceError:
                errors += 1
                clock.advance(0.05)  # a caller would back off here
        assert errors > 0


def _resilient(trace, clock, faults, **kwargs):
    events = EventLog()
    def factory(start_at_s):
        keep = tuple(
            f for f in faults
            if not (f.kind == "crash" and f.at_s <= start_at_s)
        )
        return FlakySourceAdapter(
            TracePacketSource(trace, clock, start_at_s=start_at_s),
            clock,
            faults=keep,
            seed=3,
            nominal_interval_s=1.0 / trace.sample_rate_hz,
        )
    source = ResilientSource(
        factory, clock, subject="s", events=events, seed=5, **kwargs
    )
    return source, events


class TestResilientSource:
    def test_clean_trace_passes_through(self, short_lab_trace, clock):
        source, events = _resilient(short_lab_trace, clock, ())
        n = 0
        while not source.exhausted:
            if source.next_packet() is not None:
                n += 1
        assert n == short_lab_trace.n_packets
        assert source.counters["reads_ok"] == n
        assert len(events) == 0

    def test_retries_then_unavailable_chains_cause(
        self, short_lab_trace, clock
    ):
        faults = (
            SourceFault(
                kind="transient-errors",
                at_s=0.0,
                duration_s=200.0,
                probability=1.0,
            ),
        )
        source, _ = _resilient(
            short_lab_trace,
            clock,
            faults,
            retry=RetryConfig(max_retries=2),
            breaker=BreakerConfig(failure_threshold=100),
        )
        with pytest.raises(SourceUnavailableError) as excinfo:
            source.next_packet()
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, TransientSourceError)
        assert source.counters["transient_errors"] == 3
        # Backoff consumed simulated time.
        assert clock.now_s > 0.0

    def test_breaker_opens_then_short_circuits(self, short_lab_trace, clock):
        faults = (
            SourceFault(
                kind="transient-errors",
                at_s=0.0,
                duration_s=200.0,
                probability=1.0,
            ),
        )
        source, events = _resilient(
            short_lab_trace,
            clock,
            faults,
            retry=RetryConfig(max_retries=1),
            breaker=BreakerConfig(failure_threshold=2, reset_timeout_s=5.0),
        )
        with pytest.raises(SourceUnavailableError):
            source.next_packet()
        with pytest.raises(CircuitOpenError) as excinfo:
            source.next_packet()
        assert excinfo.value.retry_after_s > 0.0
        assert source.counters["circuit_rejections"] == 1
        assert "breaker-open" in events.kinds()

    def test_crash_rebuilds_and_resumes_live(self, short_lab_trace, clock):
        faults = (SourceFault(kind="crash", at_s=2.0),)
        source, events = _resilient(short_lab_trace, clock, faults)
        with pytest.raises(SourceCrashedError):
            while True:
                source.next_packet()
        assert source.counters["crashes"] == 1
        assert source.counters["rebuilds"] == 1
        assert events.kinds() == ["source-crash", "source-restart"]
        packet = source.next_packet()
        assert packet is not None and packet.timestamp_s >= 2.0

    def test_hang_past_deadline_is_a_timeout(self, short_lab_trace, clock):
        faults = (SourceFault(kind="hang", at_s=1.0, hang_s=3.0),)
        source, events = _resilient(
            short_lab_trace, clock, faults, deadline_s=1.0
        )
        with pytest.raises(SourceTimeoutError) as excinfo:
            while True:
                source.next_packet()
        assert excinfo.value.elapsed_s >= 3.0
        assert source.counters["timeouts"] == 1
        assert "source-timeout" in events.kinds()

    def test_backoff_is_seeded_and_replayable(self, short_lab_trace):
        def run():
            clock = SimulatedClock()
            faults = (
                SourceFault(
                    kind="transient-errors",
                    at_s=0.0,
                    duration_s=200.0,
                    probability=1.0,
                ),
            )
            source, _ = _resilient(
                short_lab_trace,
                clock,
                faults,
                retry=RetryConfig(max_retries=3, jitter_fraction=0.5),
                breaker=BreakerConfig(failure_threshold=100),
            )
            with pytest.raises(SourceUnavailableError):
                source.next_packet()
            return clock.now_s

        assert run() == run()


class TestNumpyIndependence:
    def test_wrapper_does_not_touch_global_numpy_state(
        self, short_lab_trace, clock
    ):
        # Seeded jitter must come from the wrapper's own generator; this
        # test pokes the global RNG on purpose to prove it is untouched.
        np.random.seed(0)  # phaselint: disable=PL001
        before = np.random.get_state()[1][:5].copy()  # phaselint: disable=PL001
        source, _ = _resilient(short_lab_trace, clock, ())
        source.next_packet()
        after = np.random.get_state()[1][:5]  # phaselint: disable=PL001
        assert np.array_equal(before, after)
