"""The learned rung of the supervisor's fallback ladder.

Covers the wiring contract end to end: the 4-rung ladder is only in
effect when a learned estimator is injected, escalation lands on the
learned rung first, a rung that raises (contract violation, degraded
window) degrades to the held-over phase-difference value instead of
poisoning the stream, overload pins span the longer ladder, and the
shipped learned chaos scenario exercises the whole path deterministically.
"""

from __future__ import annotations

import pytest

from repro.core.streaming import StreamingConfig
from repro.errors import ConfigurationError, ContractError, EstimationError
from repro.io_.trace import CSITrace
from repro.obs import canonical_json
from repro.service import (
    FALLBACK_METHODS,
    MonitorSupervisor,
    SimulatedClock,
    SupervisorConfig,
    TracePacketSource,
)
from repro.service.chaos import SHIPPED_SCENARIOS, run_chaos
from repro.service.supervisor import LEARNED_FALLBACK_METHODS

STREAMING = StreamingConfig(window_s=10.0, hop_s=2.5, max_gap_s=0.5)


class StubLearned:
    """A scriptable stand-in satisfying the BreathingEstimator protocol."""

    method = "learned"

    def __init__(self, value: float = 15.0, error: Exception | None = None):
        self.value = value
        self.error = error
        self.calls = 0

    def estimate_breathing_bpm(self, trace) -> float:
        self.calls += 1
        if self.error is not None:
            raise self.error
        return self.value


def make_supervisor(clock, learned=None, **overrides):
    return MonitorSupervisor(
        clock=clock,
        config=SupervisorConfig(
            checkpoint_interval_s=5.0, watchdog_timeout_s=1.5, **overrides
        ),
        streaming_config=STREAMING,
        seed=0,
        learned_estimator=learned,
    )


def gappy(trace, start_s=12.0, stop_s=16.0):
    """Drop a mid-trace span so consecutive windows are gated data-gap."""
    t = trace.timestamps_s
    keep = ~((t >= start_s) & (t < stop_s))
    return CSITrace(
        csi=trace.csi[keep],
        timestamps_s=t[keep],
        sample_rate_hz=trace.sample_rate_hz,
        subcarrier_indices=trace.subcarrier_indices,
        meta={},
        strict=False,
    )


def run_with(trace, clock, supervisor, name="alice"):
    supervisor.add_subject(
        name,
        lambda t0: TracePacketSource(trace, clock, start_at_s=t0),
        trace.sample_rate_hz,
    )
    return supervisor.run()[name]


class TestLadderShape:
    def test_default_ladder_has_no_learned_rung(self):
        supervisor = make_supervisor(SimulatedClock())
        assert supervisor.fallback_methods == FALLBACK_METHODS
        assert "learned" not in supervisor.fallback_methods

    def test_injected_estimator_extends_the_ladder(self):
        supervisor = make_supervisor(SimulatedClock(), learned=StubLearned())
        assert supervisor.fallback_methods == LEARNED_FALLBACK_METHODS
        assert supervisor.fallback_methods[1] == "learned"
        # Primary and terminal rungs are unchanged.
        assert supervisor.fallback_methods[0] == FALLBACK_METHODS[0]
        assert supervisor.fallback_methods[-1] == FALLBACK_METHODS[-1]


class TestEscalationServesLearned:
    def test_first_escalation_lands_on_the_learned_rung(self, service_trace):
        clock = SimulatedClock()
        stub = StubLearned(value=15.0)
        supervisor = make_supervisor(
            clock, learned=stub, fallback_after_windows=1
        )
        estimates = run_with(gappy(service_trace), clock, supervisor)

        escalated = supervisor.events.select(kind="fallback-escalated")
        assert escalated[0].detail["to_method"] == "learned"
        served = [e for e in estimates if e.method == "learned"]
        assert served, "learned rung never emitted"
        assert stub.calls > 0
        assert all(e.rate_bpm == pytest.approx(15.0) for e in served)
        # The run still ends recovered and healthy.
        assert supervisor.events.select(kind="fallback-recovered")
        assert supervisor.health_summary()["alice"]["health"] == "healthy"


class TestRungDegradation:
    @pytest.mark.parametrize(
        "error",
        [
            ContractError(
                "matrix_features", "matrix", "float64 2-D", "complex64 3-D"
            ),
            EstimationError("window quality too low"),
        ],
        ids=["contract-error", "low-window-quality"],
    )
    def test_raising_rung_degrades_to_phase_difference(
        self, service_trace, error
    ):
        clock = SimulatedClock()
        stub = StubLearned(error=error)
        supervisor = make_supervisor(
            clock, learned=stub, fallback_after_windows=1
        )
        estimates = run_with(gappy(service_trace), clock, supervisor)

        assert stub.calls > 0, "learned rung was never consulted"
        # The failing rung must not emit under the learned label: while it
        # is the active rung the supervisor serves the held-over
        # phase-difference value, and sustained gating then walks past it
        # to the classical rungs.
        assert not [e for e in estimates if e.method == "learned"]
        assert [
            e
            for e in estimates
            if e.method == LEARNED_FALLBACK_METHODS[0] and not e.fresh
        ], "no held-over primary emission while the rung was failing"
        escalations = [
            e.detail["to_method"]
            for e in supervisor.events.select(kind="fallback-escalated")
        ]
        assert escalations[0] == "learned"
        assert "csi-ratio" in escalations
        assert supervisor.events.select(kind="fallback-recovered")
        assert supervisor.health_summary()["alice"]["health"] == "healthy"


class TestOverloadPins:
    def test_pin_spans_the_four_rung_ladder(self, service_trace):
        clock = SimulatedClock()
        supervisor = make_supervisor(clock, learned=StubLearned())
        supervisor.add_subject(
            "alice",
            lambda t0: TracePacketSource(service_trace, clock, start_at_s=t0),
            service_trace.sample_rate_hz,
        )
        supervisor.set_min_fallback_level("alice", 3, reason="overload")
        escalated = supervisor.events.select(kind="fallback-escalated")
        assert [e.detail["to_method"] for e in escalated] == [
            "learned",
            "csi-ratio",
            "amplitude",
        ]
        with pytest.raises(ConfigurationError, match=r"\[0, 3\]"):
            supervisor.set_min_fallback_level("alice", 4, reason="overload")

    def test_without_learned_the_old_bounds_hold(self, service_trace):
        clock = SimulatedClock()
        supervisor = make_supervisor(clock)
        supervisor.add_subject(
            "alice",
            lambda t0: TracePacketSource(service_trace, clock, start_at_s=t0),
            service_trace.sample_rate_hz,
        )
        with pytest.raises(ConfigurationError, match=r"\[0, 2\]"):
            supervisor.set_min_fallback_level("alice", 3, reason="overload")


class TestLearnedChaosScenario:
    def test_burst_escalates_into_a_real_learned_estimator(self):
        scenario = SHIPPED_SCENARIOS["learned-degradation-burst"]
        assert scenario.use_learned_rung
        report = run_chaos(scenario, seed=2)
        assert report.violations() == []
        escalated = [
            e for e in report.events if e.kind == "fallback-escalated"
        ]
        assert escalated[0].detail["to_method"] == "learned"
        served = [e for e in report.estimates if e.method == "learned"]
        assert served
        # Served values are physiologically plausible, not clamp artifacts.
        for estimate in served:
            assert 6.0 <= estimate.rate_bpm <= 42.0

    @pytest.mark.determinism
    def test_learned_chaos_report_is_byte_reproducible(self):
        scenario = SHIPPED_SCENARIOS["learned-degradation-burst"]
        first = run_chaos(scenario, seed=2)
        second = run_chaos(scenario, seed=2)
        assert canonical_json(first.to_jsonable()) == canonical_json(
            second.to_jsonable()
        )
