"""MonitorSupervisor: watchdog, restarts, fallback ladder, health."""

import math

import pytest

from repro.core.streaming import StreamingConfig
from repro.errors import ConfigurationError
from repro.service import (
    FALLBACK_METHODS,
    FlakySourceAdapter,
    MonitorSupervisor,
    SimulatedClock,
    SourceFault,
    SupervisorConfig,
    TracePacketSource,
)

STREAMING = StreamingConfig(window_s=10.0, hop_s=2.5, max_gap_s=0.5)


def make_supervisor(clock=None, **overrides):
    clock = clock if clock is not None else SimulatedClock()
    return MonitorSupervisor(
        clock=clock,
        config=SupervisorConfig(
            checkpoint_interval_s=5.0, watchdog_timeout_s=1.5, **overrides
        ),
        streaming_config=STREAMING,
        seed=0,
    )


class _CorruptingSource:
    """Delivers the trace but corrupts the CSI shape of chosen packets."""

    def __init__(self, trace, clock, corrupt_indices, *, start_at_s=0.0):
        self._inner = TracePacketSource(trace, clock, start_at_s=start_at_s)
        self._corrupt = set(corrupt_indices)
        self._count = 0

    @property
    def exhausted(self):
        return self._inner.exhausted

    def next_packet(self):
        packet = self._inner.next_packet()
        self._count += 1
        if packet is not None and self._count in self._corrupt:
            return packet._replace(csi=packet.csi[:, :3])
        return packet


class TestBasicRun:
    def test_clean_run_emits_and_stays_healthy(self, service_trace):
        clock = SimulatedClock()
        supervisor = make_supervisor(clock)
        supervisor.add_subject(
            "alice",
            lambda t0: TracePacketSource(service_trace, clock, start_at_s=t0),
            service_trace.sample_rate_hz,
        )
        results = supervisor.run()
        estimates = results["alice"]
        assert estimates, "no estimates emitted"
        fresh = [e for e in estimates if e.fresh and e.ok]
        assert fresh, "no fresh estimate in a clean run"
        truth = float(service_trace.meta["breathing_rates_bpm"][0])
        for estimate in fresh:
            assert estimate.method == FALLBACK_METHODS[0]
            assert estimate.rate_bpm == pytest.approx(truth, abs=2.0)
        health = supervisor.health_summary()["alice"]
        assert health["health"] == "healthy"
        assert health["breaker"] == "closed"
        assert supervisor.events.select(kind="checkpoint")

    def test_two_subjects_run_together(self, service_trace):
        clock = SimulatedClock()
        supervisor = make_supervisor(clock)
        for name in ("alice", "bob"):
            supervisor.add_subject(
                name,
                lambda t0: TracePacketSource(
                    service_trace, clock, start_at_s=t0
                ),
                service_trace.sample_rate_hz,
            )
        results = supervisor.run()
        assert results["alice"] and results["bob"]
        # The clock tracks packet time, not n_subjects × packet time.
        assert clock.now_s <= float(service_trace.timestamps_s[-1]) + 1.0

    def test_duplicate_subject_rejected(self, service_trace):
        clock = SimulatedClock()
        supervisor = make_supervisor(clock)

        def factory(t0):
            return TracePacketSource(service_trace, clock)

        supervisor.add_subject("alice", factory, 100.0)
        with pytest.raises(ConfigurationError):
            supervisor.add_subject("alice", factory, 100.0)

    def test_run_without_subjects_rejected(self):
        with pytest.raises(ConfigurationError):
            make_supervisor().run()


class TestWatchdogAndRestarts:
    def test_stall_is_detected_and_source_restarted(self, service_trace):
        clock = SimulatedClock()
        supervisor = make_supervisor(clock)
        interval = 1.0 / service_trace.sample_rate_hz
        stall = SourceFault(kind="stall", at_s=12.0, duration_s=4.0)

        def factory(t0):
            faults = (stall,) if stall.end_s > t0 else ()
            return FlakySourceAdapter(
                TracePacketSource(service_trace, clock, start_at_s=t0),
                clock,
                faults=faults,
                nominal_interval_s=interval,
            )

        supervisor.add_subject("alice", factory, service_trace.sample_rate_hz)
        supervisor.run()
        kinds = supervisor.events.kinds()
        assert "stall-detected" in kinds
        assert "source-restart" in kinds
        assert kinds.index("stall-detected") < kinds.index("source-restart")

    def test_monitor_crash_restarts_from_checkpoint(self, service_trace):
        clock = SimulatedClock()
        supervisor = make_supervisor(clock)
        # Corrupt one packet well after the first checkpoint (5 s, 100 Hz).
        supervisor.add_subject(
            "alice",
            lambda t0: _CorruptingSource(
                service_trace, clock, {1500}, start_at_s=t0
            ),
            service_trace.sample_rate_hz,
        )
        results = supervisor.run()
        kinds = supervisor.events.kinds()
        assert "monitor-crash" in kinds
        restart = supervisor.events.select(kind="monitor-restart")
        assert len(restart) == 1
        assert restart[0].detail["restored"] is True
        health = supervisor.health_summary()["alice"]
        assert health["monitor_restarts"] == 1
        assert health["health"] == "healthy"
        # The run still produces fresh estimates after the restart.
        assert any(
            e.ok and e.fresh and e.time_s > restart[0].time_s
            for e in results["alice"]
        )

    def test_repeated_monitor_crashes_fail_the_subject(self, service_trace):
        clock = SimulatedClock()
        supervisor = make_supervisor(clock, max_monitor_restarts=2)
        # A recurring corrupt packet: each one crashes the (restarted)
        # monitor again until the restart budget runs out.
        recurring = set(range(1200, service_trace.n_packets, 400))
        supervisor.add_subject(
            "alice",
            lambda t0: _CorruptingSource(
                service_trace, clock, recurring, start_at_s=t0
            ),
            service_trace.sample_rate_hz,
        )
        supervisor.run()
        kinds = supervisor.events.kinds()
        assert "subject-failed" in kinds
        health = supervisor.health_summary()["alice"]
        assert health["health"] == "failed"

    def test_failed_subject_does_not_block_the_healthy_one(
        self, service_trace
    ):
        clock = SimulatedClock()
        supervisor = make_supervisor(clock, max_monitor_restarts=1)
        recurring = set(range(1200, service_trace.n_packets, 400))
        supervisor.add_subject(
            "sick",
            lambda t0: _CorruptingSource(
                service_trace, clock, recurring, start_at_s=t0
            ),
            service_trace.sample_rate_hz,
        )
        supervisor.add_subject(
            "well",
            lambda t0: TracePacketSource(service_trace, clock, start_at_s=t0),
            service_trace.sample_rate_hz,
        )
        results = supervisor.run()
        summary = supervisor.health_summary()
        assert summary["sick"]["health"] == "failed"
        assert summary["well"]["health"] == "healthy"
        assert results["well"]


class TestFallbackLadder:
    def test_sustained_gaps_escalate_then_recover(self, service_trace):
        # Drop a mid-trace span so several consecutive windows are gated
        # "data-gap", then let clean packets resume.
        from repro.io_.trace import CSITrace

        t = service_trace.timestamps_s
        keep = ~((t >= 12.0) & (t < 16.0))
        gappy = CSITrace(
            csi=service_trace.csi[keep],
            timestamps_s=t[keep],
            sample_rate_hz=service_trace.sample_rate_hz,
            subcarrier_indices=service_trace.subcarrier_indices,
            meta={},
            strict=False,
        )
        clock = SimulatedClock()
        supervisor = make_supervisor(clock, fallback_after_windows=1)
        supervisor.add_subject(
            "alice",
            lambda t0: TracePacketSource(gappy, clock, start_at_s=t0),
            gappy.sample_rate_hz,
        )
        results = supervisor.run()
        kinds = supervisor.events.kinds()
        assert "fallback-escalated" in kinds
        assert "fallback-recovered" in kinds
        assert kinds.index("fallback-escalated") < kinds.index(
            "fallback-recovered"
        )
        escalated = supervisor.events.select(kind="fallback-escalated")
        assert escalated[0].detail["to_method"] == "csi-ratio"
        # While degraded, health reflected it; the run ends recovered.
        health_values = [
            e.detail["health"]
            for e in supervisor.events.select(kind="health-changed")
        ]
        assert "degraded" in health_values
        assert supervisor.health_summary()["alice"]["health"] == "healthy"
        assert any(e.fallback_level > 0 for e in results["alice"])


class TestDeterminism:
    def test_identical_runs_produce_identical_logs(self, service_trace):
        def run():
            clock = SimulatedClock()
            supervisor = make_supervisor(clock)
            interval = 1.0 / service_trace.sample_rate_hz
            fault = SourceFault(
                kind="transient-errors",
                at_s=12.0,
                duration_s=0.5,
                probability=0.5,
            )

            def factory(t0):
                return FlakySourceAdapter(
                    TracePacketSource(service_trace, clock, start_at_s=t0),
                    clock,
                    faults=(fault,),
                    seed=9,
                    nominal_interval_s=interval,
                )

            supervisor.add_subject(
                "alice", factory, service_trace.sample_rate_hz
            )
            results = supervisor.run()
            rates = [
                (e.time_s, None if math.isnan(e.rate_bpm) else e.rate_bpm,
                 e.method)
                for e in results["alice"]
            ]
            return [(e.time_s, e.kind) for e in supervisor.events], rates

        first, second = run(), run()
        assert first[0] == second[0]
        assert first[1] == second[1]
