"""Admission controller: ceilings, shard assignment, typed refusals."""

import pytest

from repro.errors import ConfigurationError, FleetAdmissionError
from repro.service.fleet.admission import AdmissionController
from repro.service.fleet.config import FleetConfig


def _controller(**overrides) -> AdmissionController:
    defaults = dict(max_sessions=8, n_shards=2, shard_capacity=4)
    defaults.update(overrides)
    return AdmissionController(FleetConfig(**defaults))


class TestAssignment:
    def test_least_loaded_lowest_index_wins(self):
        controller = _controller()
        assert controller.admit("a") == 0
        assert controller.admit("b") == 1
        assert controller.admit("c") == 0
        assert controller.shard_load(0) == 2
        assert controller.shard_load(1) == 1

    def test_release_frees_the_slot_for_reuse(self):
        controller = _controller(max_sessions=2, n_shards=1, shard_capacity=2)
        controller.admit("a")
        controller.admit("b")
        assert controller.release("a") == 0
        assert controller.n_active == 1
        # The freed slot is admittable again.
        assert controller.admit("c") == 0

    def test_shard_of_unknown_session_raises(self):
        with pytest.raises(ConfigurationError):
            _controller().shard_of("ghost")


class TestRefusals:
    def test_duplicate_session(self):
        controller = _controller()
        controller.admit("a")
        with pytest.raises(FleetAdmissionError) as excinfo:
            controller.admit("a")
        assert excinfo.value.reason == "duplicate-session"
        assert excinfo.value.session_id == "a"
        assert controller.n_rejected_total["duplicate-session"] == 1

    def test_fleet_full(self):
        controller = _controller(max_sessions=2)
        controller.admit("a")
        controller.admit("b")
        with pytest.raises(FleetAdmissionError) as excinfo:
            controller.admit("c")
        assert excinfo.value.reason == "fleet-full"

    def test_shard_full(self):
        controller = _controller(
            max_sessions=8, n_shards=2, shard_capacity=1
        )
        controller.admit("a")
        controller.admit("b")
        with pytest.raises(FleetAdmissionError) as excinfo:
            controller.admit("c")
        assert excinfo.value.reason == "shard-full"
        assert controller.n_admitted_total == 2
