"""Fleet-suite fixture: one short shared capture.

Gateway tests run whole fleets, so the per-session stream is kept short
(20 s at 50 Hz) and built once per session.
"""

from __future__ import annotations

import pytest

from repro import Person, capture_trace, laboratory_scenario
from repro.physio import SinusoidalBreathing


@pytest.fixture(scope="session")
def fleet_trace():
    """20 s laboratory capture at 50 Hz (15 bpm ground truth)."""
    person = Person(
        position=(2.2, 3.0, 1.0),
        breathing=SinusoidalBreathing(frequency_hz=0.25),
    )
    scenario = laboratory_scenario([person], clutter_seed=9)
    return capture_trace(
        scenario, duration_s=20.0, sample_rate_hz=50.0, seed=9
    )
