"""Bounded queue and queue-backed source semantics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.service.fleet.queue import BoundedPacketQueue, QueuedPacketSource
from repro.service.sources import Packet


def _packet(t: float) -> Packet:
    return Packet(csi=np.zeros(2, dtype=complex), timestamp_s=t)


class TestBoundedPacketQueue:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ConfigurationError):
            BoundedPacketQueue(0)

    def test_fifo_order(self):
        queue = BoundedPacketQueue(4)
        for t in (1.0, 2.0, 3.0):
            assert queue.offer(_packet(t))
        assert [queue.pop().timestamp_s for _ in range(3)] == [1.0, 2.0, 3.0]
        assert queue.pop() is None

    def test_overflow_drops_oldest_and_counts(self):
        queue = BoundedPacketQueue(2)
        assert queue.offer(_packet(1.0))
        assert queue.offer(_packet(2.0))
        # Full: the oldest packet makes room for the newest.
        assert not queue.offer(_packet(3.0))
        assert queue.n_dropped_total == 1
        assert [queue.pop().timestamp_s for _ in range(2)] == [2.0, 3.0]

    def test_high_water_mark_tracks_peak_depth(self):
        queue = BoundedPacketQueue(8)
        for t in range(5):
            queue.offer(_packet(float(t)))
        for _ in range(5):
            queue.pop()
        assert queue.depth == 0
        assert queue.max_depth_seen_packets == 5

    def test_clear_reports_count_without_touching_drop_total(self):
        queue = BoundedPacketQueue(4)
        for t in range(3):
            queue.offer(_packet(float(t)))
        assert queue.clear() == 3
        assert queue.depth == 0
        assert queue.n_dropped_total == 0


class TestQueuedPacketSource:
    def test_not_exhausted_while_queue_holds_data(self):
        queue = BoundedPacketQueue(4)
        source = QueuedPacketSource(queue)
        queue.offer(_packet(1.0))
        source.mark_finished()
        # Buffered packets must still reach the monitor.
        assert not source.exhausted
        assert source.next_packet().timestamp_s == 1.0
        assert source.exhausted

    def test_empty_but_unfinished_returns_none(self):
        source = QueuedPacketSource(BoundedPacketQueue(4))
        assert source.next_packet() is None
        assert not source.exhausted
