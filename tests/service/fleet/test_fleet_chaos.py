"""Fleet chaos harness: fault schema, validation, and small end-to-end."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.service.fleet import (
    FLEET_SCENARIOS,
    FleetFault,
    FleetScenario,
    run_fleet_chaos,
)


class TestFleetFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetFault(kind="meteor-strike", at_s=1.0)

    def test_session_faults_need_targets_and_window(self):
        with pytest.raises(ConfigurationError):
            FleetFault(kind="ingest-burst", at_s=1.0, duration_s=2.0)
        with pytest.raises(ConfigurationError):
            FleetFault(kind="ingest-burst", at_s=1.0, n_sessions=2)

    def test_factor_bounds(self):
        with pytest.raises(ConfigurationError):
            FleetFault(
                kind="ingest-burst",
                at_s=1.0,
                duration_s=2.0,
                n_sessions=1,
                ingest_factor=0.5,
            )
        with pytest.raises(ConfigurationError):
            FleetFault(
                kind="slow-consumer",
                at_s=1.0,
                duration_s=2.0,
                n_sessions=1,
                drain_factor=1.5,
            )

    def test_dict_round_trip(self):
        fault = FleetFault(
            kind="slow-consumer",
            at_s=4.0,
            duration_s=6.0,
            n_sessions=3,
            drain_factor=0.5,
        )
        assert FleetFault.from_dict(fault.to_dict()) == fault

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            FleetFault.from_dict(
                {"kind": "shard-crash", "at_s": 1.0, "blast_radius": 9}
            )

    def test_recorder_crash_is_instantaneous(self):
        # No duration required: the crash happens between two packets.
        fault = FleetFault(kind="recorder-crash", at_s=2.0, n_sessions=2)
        assert fault.duration_s == 0.0

    def test_recorder_crash_needs_targets(self):
        with pytest.raises(ConfigurationError):
            FleetFault(kind="recorder-crash", at_s=2.0)

    def test_torn_tail_bytes_validated(self):
        with pytest.raises(ConfigurationError, match="torn_tail_bytes"):
            FleetFault(
                kind="recorder-crash", at_s=2.0, n_sessions=1, torn_tail_bytes=-1
            )

    def test_recorder_crash_dict_round_trip(self):
        fault = FleetFault(
            kind="recorder-crash", at_s=5.0, n_sessions=3, torn_tail_bytes=96
        )
        data = fault.to_dict()
        assert data["torn_tail_bytes"] == 96
        assert FleetFault.from_dict(data) == fault


class TestFleetScenario:
    def test_json_round_trip(self):
        scenario = FLEET_SCENARIOS["overload-shed"]
        assert FleetScenario.from_json(scenario.to_json()) == scenario

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetScenario.from_json("not json")
        with pytest.raises(ConfigurationError):
            FleetScenario.from_json("[1, 2]")

    def test_schedule_metadata(self):
        scenario = FLEET_SCENARIOS["overload-shed"]
        assert scenario.last_fault_end_s == 11.0
        assert scenario.max_targeted_sessions() == 6


class TestRunValidation:
    def test_scenario_needs_a_clean_tail(self):
        late = FleetScenario(
            name="too-late",
            faults=(FleetFault(kind="shard-crash", at_s=20.0),),
        )
        with pytest.raises(ConfigurationError, match="clean tail"):
            run_fleet_chaos(late, n_sessions=2, duration_s=24.0)

    def test_fleet_must_cover_targeted_sessions(self):
        wide = FleetScenario(
            name="too-wide",
            faults=(
                FleetFault(
                    kind="correlated-source-loss",
                    at_s=4.0,
                    duration_s=2.0,
                    n_sessions=50,
                ),
            ),
        )
        with pytest.raises(ConfigurationError, match="targets"):
            run_fleet_chaos(wide, n_sessions=2, duration_s=24.0)


class TestEndToEnd:
    def test_fault_free_fleet_holds_every_invariant(self):
        scenario = FleetScenario(name="fault-free", faults=())
        report = run_fleet_chaos(
            scenario,
            n_sessions=4,
            duration_s=20.0,
            seed=0,
            trace_pool_size=2,
            registry=MetricsRegistry(),
        )
        assert report.violations() == []
        assert report.faulted_ids == ()
        assert report.n_estimates_total > 0
        assert report.fleet_summary["by_status"]["finished"] == 4
        # The metrics snapshot is canonical JSON with fleet series.
        assert '"fleet_sessions_active_count"' in report.metrics_json

    def test_same_seed_reports_are_byte_identical(self):
        scenario = FLEET_SCENARIOS["shard-crash"]
        reports = [
            run_fleet_chaos(
                scenario,
                n_sessions=6,
                duration_s=24.0,
                seed=11,
                trace_pool_size=2,
                registry=MetricsRegistry(),
            )
            for _ in range(2)
        ]
        assert reports[0].events_jsonl == reports[1].events_jsonl
        assert reports[0].metrics_json == reports[1].metrics_json
        assert reports[0].violations() == reports[1].violations() == []

    def test_report_is_json_safe(self):
        import json

        scenario = FleetScenario(name="fault-free", faults=())
        report = run_fleet_chaos(
            scenario,
            n_sessions=2,
            duration_s=20.0,
            trace_pool_size=1,
        )
        payload = json.loads(json.dumps(report.to_jsonable()))
        assert payload["violations"] == []
        assert payload["n_sessions"] == 2

    def test_recorder_crash_scenario_produces_salvageable_recordings(self):
        report = run_fleet_chaos(
            FLEET_SCENARIOS["record-crash-resume"],
            n_sessions=4,
            duration_s=24.0,
            seed=0,
            trace_pool_size=2,
            registry=MetricsRegistry(),
        )
        assert report.violations() == []
        # Three sessions are recorded; two of them crash twice.
        assert len(report.recordings) == 3
        for session_id, digest in report.recordings.items():
            salvage = digest["salvage"]
            # Every crash rotates to a new segment on resume.
            assert len(digest["segments"]) >= 2
            assert salvage["n_records_recovered"] > 0
            assert any(
                issue["kind"] == "torn-tail" for issue in salvage["issues"]
            ), session_id
        # Recordings ride in the JSON report, so sanitize byte-compares them.
        payload = report.to_jsonable()
        assert set(payload["recordings"]) == set(report.recordings)
