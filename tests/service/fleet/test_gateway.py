"""Fleet gateway: scheduling, isolation, backpressure, shard crashes."""

import pytest

from repro.core.streaming import StreamingConfig
from repro.errors import ConfigurationError, FleetAdmissionError
from repro.service.clock import SimulatedClock
from repro.service.fleet import FleetConfig, FleetGateway, SessionStatus
from repro.service.fleet.chaos import _estimate_stream_bytes
from repro.service.sources import TracePacketSource
from repro.service.supervisor import SupervisorConfig

_STREAMING = StreamingConfig(
    window_s=8.0, hop_s=4.0, max_gap_s=0.5, holdover_s=20.0
)


def _gateway(trace, *, config=None, seed=0):
    gateway = FleetGateway(
        clock=SimulatedClock(float(trace.timestamps_s[0])),
        config=config if config is not None else FleetConfig(),
        supervisor_config=SupervisorConfig(checkpoint_interval_s=5.0),
        streaming_config=_STREAMING,
        seed=seed,
    )
    return gateway


def _admit(gateway, trace, session_id, *, priority=0):
    return gateway.admit(
        session_id,
        lambda clock: TracePacketSource(trace, clock),
        trace.sample_rate_hz,
        priority=priority,
    )


class TestAdmission:
    def test_shards_fill_least_loaded_first(self, fleet_trace):
        gateway = _gateway(fleet_trace, config=FleetConfig(n_shards=2))
        shards = [
            _admit(gateway, fleet_trace, f"s{i}") for i in range(4)
        ]
        assert shards == [0, 1, 0, 1]
        assert gateway.sessions_on_shard(0) == ("s0", "s2")

    def test_refusal_is_typed_and_recorded(self, fleet_trace):
        gateway = _gateway(
            fleet_trace, config=FleetConfig(max_sessions=1)
        )
        _admit(gateway, fleet_trace, "s0")
        with pytest.raises(FleetAdmissionError) as excinfo:
            _admit(gateway, fleet_trace, "s1")
        assert excinfo.value.reason == "fleet-full"
        assert "session-rejected" in gateway.events.kinds()

    def test_run_without_sessions_raises(self, fleet_trace):
        with pytest.raises(ConfigurationError):
            _gateway(fleet_trace).run()


class TestScheduling:
    def test_fleet_run_matches_solo_run_byte_for_byte(self, fleet_trace):
        fleet = _gateway(fleet_trace)
        for i in range(3):
            _admit(fleet, fleet_trace, f"s{i}")
        fleet.run(max_duration_s=60.0)

        solo = _gateway(fleet_trace)
        _admit(solo, fleet_trace, "alone")
        solo.run(max_duration_s=60.0)

        reference = _estimate_stream_bytes(solo.estimates("alone"))
        for i in range(3):
            assert fleet.status(f"s{i}") is SessionStatus.FINISHED
            assert (
                _estimate_stream_bytes(fleet.estimates(f"s{i}"))
                == reference
            )

    def test_same_seed_runs_are_byte_identical(self, fleet_trace):
        logs = []
        for _ in range(2):
            gateway = _gateway(fleet_trace, seed=3)
            for i in range(3):
                _admit(gateway, fleet_trace, f"s{i}")
            gateway.run(max_duration_s=60.0)
            logs.append(gateway.events.to_jsonl())
        assert logs[0] == logs[1]

    def test_fresh_emission_times_are_monotone_fleet_times(
        self, fleet_trace
    ):
        gateway = _gateway(fleet_trace)
        _admit(gateway, fleet_trace, "s0")
        gateway.run(max_duration_s=60.0)
        times = gateway.fresh_emission_times("s0")
        assert times == tuple(sorted(times))
        assert len(times) <= len(gateway.estimates("s0"))

    def test_summary_counts_finished_sessions(self, fleet_trace):
        gateway = _gateway(fleet_trace)
        for i in range(2):
            _admit(gateway, fleet_trace, f"s{i}")
        gateway.run(max_duration_s=60.0)
        summary = gateway.fleet_summary()
        assert summary["by_status"]["finished"] == 2
        assert summary["n_shed"] == 0


class TestBackpressure:
    def test_slow_consumer_drives_the_pressure_ladder(self, fleet_trace):
        config = FleetConfig(
            queue_capacity_packets=32,
            high_watermark_packets=16,
            low_watermark_packets=4,
            throttle_after_rounds=1,
            ingest_budget_packets=32,
            drain_budget_packets=32,
            # Shed budget 0: the ladder may throttle and degrade but
            # never shed, so the session must ride the fault out.
            max_shed_sessions=0,
        )
        gateway = _gateway(fleet_trace, config=config)
        _admit(gateway, fleet_trace, "slow")
        _admit(gateway, fleet_trace, "healthy")
        gateway.set_slow_consumer(
            ("slow",), until_s=gateway.clock.now_s + 8.0, drain_factor=0.1
        )
        gateway.run(max_duration_s=60.0)

        throttled = [
            e.subject
            for e in gateway.events
            if e.kind == "session-throttled"
        ]
        assert "slow" in throttled
        assert "healthy" not in throttled
        # Once the fault window closes the session drains out and
        # finishes; the ladder must have stepped back down on the way.
        assert gateway.status("slow") is SessionStatus.FINISHED
        assert "session-pressure-recovered" in gateway.events.kinds()

    def test_fault_hooks_validate_arguments(self, fleet_trace):
        gateway = _gateway(fleet_trace)
        _admit(gateway, fleet_trace, "s0")
        with pytest.raises(ConfigurationError):
            gateway.set_ingest_burst(("s0",), until_s=1.0, ingest_factor=0.5)
        with pytest.raises(ConfigurationError):
            gateway.set_slow_consumer(("s0",), until_s=1.0, drain_factor=0.0)
        with pytest.raises(ConfigurationError):
            gateway.set_source_loss(("ghost",), until_s=1.0)


class TestShardCrash:
    def test_crashed_monitors_restart_and_finish(self, fleet_trace):
        gateway = _gateway(fleet_trace, config=FleetConfig(n_shards=2))
        for i in range(4):
            _admit(gateway, fleet_trace, f"s{i}")
        # Run half the capture, then kill shard 0 (sessions s0, s2).
        for _ in range(20):
            gateway.run_round()
        gateway.crash_shard(0)
        gateway.run(max_duration_s=60.0)

        crashed = {
            e.subject
            for e in gateway.events
            if e.kind == "monitor-crash"
        }
        assert crashed == {"s0", "s2"}
        assert "monitor-restart" in gateway.events.kinds()
        for i in range(4):
            assert gateway.status(f"s{i}") is SessionStatus.FINISHED

    def test_crash_validates_shard_index(self, fleet_trace):
        gateway = _gateway(fleet_trace, config=FleetConfig(n_shards=2))
        _admit(gateway, fleet_trace, "s0")
        with pytest.raises(ConfigurationError):
            gateway.crash_shard(5)
