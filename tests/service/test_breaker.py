"""Circuit breaker state machine on the simulated clock."""

import pytest

from repro.errors import ConfigurationError
from repro.service import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    SimulatedClock,
)


def make_breaker(clock=None, transitions=None, **kwargs):
    clock = clock if clock is not None else SimulatedClock()
    config = BreakerConfig(**kwargs)
    on_transition = None
    if transitions is not None:
        def on_transition(old, new):
            transitions.append((old.value, new.value))
    return clock, CircuitBreaker(clock, config, on_transition=on_transition)


class TestBreakerConfig:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            BreakerConfig(reset_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            BreakerConfig(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            BreakerConfig(reset_timeout_s=10.0, max_reset_timeout_s=5.0)


class TestCircuitBreaker:
    def test_stays_closed_below_threshold(self):
        _, breaker = make_breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow_call()

    def test_success_resets_the_streak(self):
        _, breaker = make_breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_opens_at_threshold_and_rejects(self):
        _, breaker = make_breaker(failure_threshold=2, reset_timeout_s=5.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow_call()
        assert breaker.retry_after_s() == pytest.approx(5.0)

    def test_half_open_probe_after_cooldown(self):
        clock, breaker = make_breaker(failure_threshold=1, reset_timeout_s=5.0)
        breaker.record_failure()
        assert not breaker.allow_call()
        clock.advance(5.0)
        assert breaker.allow_call()
        assert breaker.state is BreakerState.HALF_OPEN

    def test_successful_probe_closes(self):
        clock, breaker = make_breaker(failure_threshold=1, reset_timeout_s=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow_call()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.retry_after_s() == 0.0

    def test_failed_probe_reopens_with_scaled_bounded_cooldown(self):
        clock, breaker = make_breaker(
            failure_threshold=1,
            reset_timeout_s=5.0,
            backoff_factor=2.0,
            max_reset_timeout_s=12.0,
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow_call()
        breaker.record_failure()  # failed probe: cooldown 10 s
        assert breaker.state is BreakerState.OPEN
        assert breaker.retry_after_s() == pytest.approx(10.0)
        clock.advance(10.0)
        assert breaker.allow_call()
        breaker.record_failure()  # failed probe: cooldown capped at 12 s
        assert breaker.retry_after_s() == pytest.approx(12.0)

    def test_success_resets_the_cooldown_scale(self):
        clock, breaker = make_breaker(
            failure_threshold=1, reset_timeout_s=5.0, backoff_factor=2.0
        )
        breaker.record_failure()
        clock.advance(5.0)
        breaker.allow_call()
        breaker.record_failure()
        clock.advance(10.0)
        breaker.allow_call()
        breaker.record_success()
        breaker.record_failure()  # re-trip: cooldown back to the base 5 s
        assert breaker.retry_after_s() == pytest.approx(5.0)

    def test_transition_callback_sees_full_cycle(self):
        transitions = []
        clock, breaker = make_breaker(
            transitions=transitions, failure_threshold=1, reset_timeout_s=1.0
        )
        breaker.record_failure()
        clock.advance(1.0)
        breaker.allow_call()
        breaker.record_success()
        assert transitions == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]
