"""SimulatedClock and EventLog basics."""

import pytest

from repro.errors import ConfigurationError
from repro.service import EventLog, SimulatedClock


class TestSimulatedClock:
    def test_starts_where_told(self):
        assert SimulatedClock().now_s == 0.0
        assert SimulatedClock(5.5).now_s == 5.5

    def test_advance_accumulates_and_returns_new_now(self):
        clock = SimulatedClock()
        assert clock.advance(1.5) == pytest.approx(1.5)
        assert clock.advance(0.5) == pytest.approx(2.0)
        assert clock.now_s == pytest.approx(2.0)

    def test_advance_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            SimulatedClock().advance(-0.1)

    def test_advance_to_never_goes_backwards(self):
        clock = SimulatedClock(10.0)
        clock.advance_to(4.0)
        assert clock.now_s == 10.0
        clock.advance_to(12.0)
        assert clock.now_s == 12.0


class TestEventLog:
    def test_records_in_order_with_detail(self):
        log = EventLog()
        log.record(1.0, "a", "breaker-open", previous="closed")
        log.record(2.0, "b", "source-crash")
        assert len(log) == 2
        assert log.kinds() == ["breaker-open", "source-crash"]
        assert log.kinds(subject="a") == ["breaker-open"]
        first = log.events[0]
        assert first.subject == "a"
        assert first.detail == {"previous": "closed"}

    def test_select_filters_by_kind_and_subject(self):
        log = EventLog()
        log.record(1.0, "a", "checkpoint")
        log.record(2.0, "a", "source-crash")
        log.record(3.0, "b", "checkpoint")
        assert [e.time_s for e in log.select(kind="checkpoint")] == [1.0, 3.0]
        assert [e.kind for e in log.select(subject="b")] == ["checkpoint"]

    def test_to_jsonable_round_trips_through_json(self):
        import json

        log = EventLog()
        log.record(1.25, "a", "fallback-escalated", to_method="csi-ratio")
        dumped = json.dumps(log.to_jsonable())
        assert json.loads(dumped)[0]["detail"]["to_method"] == "csi-ratio"
