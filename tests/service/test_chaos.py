"""Chaos harness: scenario schema, fault filtering, and report invariants."""

import json

import pytest

from repro.core.streaming import StreamingConfig
from repro.errors import ConfigurationError, SourceCrashedError
from repro.service import (
    SHIPPED_SCENARIOS,
    ChaosScenario,
    SimulatedClock,
    TimedFault,
    flaky_source_factory,
    load_scenario,
    run_chaos,
)
from repro.service.sources import SourceFault


class TestTimedFault:
    def test_validates_kind(self):
        with pytest.raises(ConfigurationError):
            TimedFault(kind="asteroid", at_s=1.0)

    def test_degrade_needs_window_and_sane_loss(self):
        with pytest.raises(ConfigurationError):
            TimedFault(kind="degrade", at_s=1.0)
        with pytest.raises(ConfigurationError):
            TimedFault(kind="degrade", at_s=1.0, duration_s=2.0,
                       loss_fraction=1.5)

    def test_source_fault_mapping(self):
        crash = TimedFault(kind="crash", at_s=3.0)
        assert crash.to_source_fault() == SourceFault(kind="crash", at_s=3.0)
        degrade = TimedFault(kind="degrade", at_s=3.0, duration_s=2.0)
        assert degrade.to_source_fault() is None

    def test_dict_round_trip(self):
        fault = TimedFault(kind="stall", at_s=5.0, duration_s=2.0)
        assert TimedFault.from_dict(fault.to_dict()) == fault

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            TimedFault.from_dict({"kind": "crash", "at_s": 1.0, "wat": 2})


class TestChaosScenario:
    def test_json_round_trip(self, tmp_path):
        scenario = SHIPPED_SCENARIOS["degradation-burst"]
        path = tmp_path / "scenario.json"
        path.write_text(scenario.to_json())
        loaded = load_scenario(str(path))
        assert loaded == scenario

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            ChaosScenario.from_json("not json {")
        with pytest.raises(ConfigurationError):
            ChaosScenario.from_json(json.dumps(["a", "list"]))
        with pytest.raises(ConfigurationError):
            ChaosScenario.from_json(json.dumps({"faults": []}))

    def test_last_fault_end(self):
        scenario = ChaosScenario(
            name="x",
            faults=(
                TimedFault(kind="crash", at_s=10.0),
                TimedFault(kind="stall", at_s=20.0, duration_s=5.0),
            ),
        )
        assert scenario.last_fault_end_s == pytest.approx(25.0)

    def test_shipped_library_covers_the_fault_domains(self):
        assert set(SHIPPED_SCENARIOS) == {
            "source-crash",
            "sustained-stall",
            "transient-errors",
            "checkpoint-restore-loss",
            "degradation-burst",
            "learned-degradation-burst",
        }
        for name, scenario in SHIPPED_SCENARIOS.items():
            assert scenario.name == name
            assert scenario.faults
            assert scenario.description


class TestFlakySourceFactory:
    def test_rebuild_filters_fired_crash(self, service_trace):
        clock = SimulatedClock()
        factory = flaky_source_factory(
            service_trace,
            clock,
            (SourceFault(kind="crash", at_s=2.0),),
            nominal_interval_s=1.0 / service_trace.sample_rate_hz,
        )
        source = factory(0.0)
        with pytest.raises(SourceCrashedError):
            while True:
                source.next_packet()
        # Rebuilt at the crash time: the fault must not fire again.
        rebuilt = factory(clock.now_s)
        assert rebuilt.next_packet() is not None

    def test_rebuild_keeps_ongoing_stall(self, service_trace):
        clock = SimulatedClock()
        clock.advance_to(3.0)
        factory = flaky_source_factory(
            service_trace,
            clock,
            (SourceFault(kind="stall", at_s=2.0, duration_s=4.0),),
            nominal_interval_s=1.0 / service_trace.sample_rate_hz,
        )
        # Restarting mid-stall does not un-stall the hardware.
        rebuilt = factory(3.0)
        assert rebuilt.next_packet() is None


class TestRunChaos:
    def test_scenario_must_end_before_the_capture(self):
        scenario = ChaosScenario(
            name="too-late", faults=(TimedFault(kind="crash", at_s=100.0),)
        )
        with pytest.raises(ConfigurationError):
            run_chaos(scenario, duration_s=60.0)

    def test_crash_report_recovers_on_a_small_run(self):
        scenario = ChaosScenario(
            name="small-crash", faults=(TimedFault(kind="crash", at_s=15.0),)
        )
        report = run_chaos(
            scenario,
            duration_s=40.0,
            sample_rate_hz=100.0,
            seed=0,
            streaming_config=StreamingConfig(
                window_s=10.0, hop_s=2.5, max_gap_s=0.5, holdover_s=20.0
            ),
        )
        assert report.violations() == []
        assert report.n_post_recovery > 0
        kinds = report.events.kinds()
        assert kinds.index("source-crash") < kinds.index("source-restart")
        jsonable = report.to_jsonable()
        json.dumps(jsonable)  # must be serializable as-is
        assert jsonable["violations"] == []
        assert "pkts" in report.trace_quality

    def test_fault_free_scenario_has_nothing_to_violate(self):
        report = run_chaos(
            ChaosScenario(name="calm", faults=()),
            duration_s=40.0,
            sample_rate_hz=100.0,
            seed=0,
            streaming_config=StreamingConfig(
                window_s=10.0, hop_s=2.5, max_gap_s=0.5
            ),
        )
        assert report.violations() == []
        # The faulted pass IS the fault-free pass here; only the window
        # selection differs (post-recovery counts estimates past the
        # first analysis window), so the medians agree to well within
        # the recovery budget.
        assert report.post_recovery_median_error_bpm == pytest.approx(
            report.fault_free_median_error_bpm, abs=0.5
        )
