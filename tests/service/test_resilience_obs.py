"""Resilience corner cases with their observability side effects.

Two paths that earlier tests only brushed past:

* retry exhaustion — a source that never stops failing transiently must
  surface a chained :class:`~repro.errors.SourceUnavailableError` after
  exactly the configured retry budget, with every attempt mirrored into
  the ``source_transient_errors_total`` counter;
* half-open re-trip — a breaker probe that fails must re-open the breaker
  with a scaled-up cooldown and count both transitions, not silently
  close or stay half-open.
"""

import pytest

from repro.errors import (
    CircuitOpenError,
    SourceUnavailableError,
    TransientSourceError,
)
from repro.obs import Instrumentation, MetricsRegistry
from repro.service.breaker import BreakerConfig, BreakerState
from repro.service.clock import SimulatedClock
from repro.service.sources import Packet, ResilientSource, RetryConfig


class _AlwaysFailingSource:
    """A source whose every read raises a transient error."""

    def __init__(self):
        self.n_reads = 0

    @property
    def exhausted(self) -> bool:
        return False

    def next_packet(self) -> Packet | None:
        self.n_reads += 1
        raise TransientSourceError("scripted permanent flakiness")


def _resilient(clock, registry, *, max_retries, breaker=None, seed=0):
    inner = _AlwaysFailingSource()
    source = ResilientSource(
        lambda start_at_s: inner,
        clock,
        subject="lab",
        retry=RetryConfig(max_retries=max_retries, jitter_fraction=0.0),
        breaker=breaker,
        seed=seed,
        instrumentation=Instrumentation(clock=clock, registry=registry),
    )
    return source, inner


class TestRetryExhaustion:
    def test_chains_last_transient_error_with_attempt_count(self):
        clock = SimulatedClock()
        registry = MetricsRegistry()
        source, inner = _resilient(
            clock,
            registry,
            max_retries=2,
            # A roomy threshold so the breaker stays out of this test.
            breaker=BreakerConfig(failure_threshold=100),
        )

        with pytest.raises(SourceUnavailableError) as excinfo:
            source.next_packet()

        # First attempt + two retries, then give up.
        assert excinfo.value.attempts == 3
        assert inner.n_reads == 3
        assert isinstance(excinfo.value.__cause__, TransientSourceError)
        assert source.counters["transient_errors"] == 3
        assert source.counters["reads_ok"] == 0

    def test_every_attempt_is_counted_in_obs(self):
        clock = SimulatedClock()
        registry = MetricsRegistry()
        source, _ = _resilient(
            clock,
            registry,
            max_retries=2,
            breaker=BreakerConfig(failure_threshold=100),
        )

        with pytest.raises(SourceUnavailableError):
            source.next_packet()

        counter = registry.counter(
            "source_transient_errors_total", labels={"subject": "lab"}
        )
        assert counter.value == 3.0

    def test_backoff_consumes_simulated_time_between_attempts(self):
        clock = SimulatedClock()
        registry = MetricsRegistry()
        source, _ = _resilient(
            clock,
            registry,
            max_retries=2,
            breaker=BreakerConfig(failure_threshold=100),
        )

        with pytest.raises(SourceUnavailableError):
            source.next_packet()

        # Two backoff sleeps (0.05 then 0.10 with jitter off); the final
        # failing attempt raises without sleeping again.
        assert clock.now_s == pytest.approx(0.15)


class TestHalfOpenReTrip:
    def test_failed_probe_reopens_with_scaled_cooldown(self):
        clock = SimulatedClock()
        registry = MetricsRegistry()
        source, _ = _resilient(
            clock,
            registry,
            max_retries=0,
            breaker=BreakerConfig(
                failure_threshold=2,
                reset_timeout_s=5.0,
                backoff_factor=2.0,
                max_reset_timeout_s=60.0,
            ),
        )

        # Two failing reads trip the breaker.
        for _ in range(2):
            with pytest.raises(SourceUnavailableError):
                source.next_packet()
        assert source.breaker.state is BreakerState.OPEN

        # While open, calls are short-circuited without touching the
        # source.
        with pytest.raises(CircuitOpenError):
            source.next_packet()
        assert source.counters["circuit_rejections"] == 1

        # Cooldown elapses; the half-open probe fails and must re-open
        # the breaker with the cooldown doubled.
        clock.advance(5.0)
        with pytest.raises(SourceUnavailableError):
            source.next_packet()
        assert source.breaker.state is BreakerState.OPEN
        assert source.breaker.retry_after_s() == pytest.approx(10.0)

        # The event log shows trip -> probe -> re-trip, in order.
        kinds = [k for k in source.events.kinds() if k.startswith("breaker-")]
        assert kinds == ["breaker-open", "breaker-half-open", "breaker-open"]

    def test_transitions_are_counted_by_state_pair(self):
        clock = SimulatedClock()
        registry = MetricsRegistry()
        source, _ = _resilient(
            clock,
            registry,
            max_retries=0,
            breaker=BreakerConfig(failure_threshold=2, reset_timeout_s=5.0),
        )

        for _ in range(2):
            with pytest.raises(SourceUnavailableError):
                source.next_packet()
        clock.advance(5.0)
        with pytest.raises(SourceUnavailableError):
            source.next_packet()

        def transitions(from_state, to_state):
            return registry.counter(
                "breaker_transitions_total",
                labels={"from_state": from_state, "to_state": to_state},
            ).value

        assert transitions("closed", "open") == 1.0
        assert transitions("open", "half-open") == 1.0
        assert transitions("half-open", "open") == 1.0
        rejections = registry.counter(
            "source_circuit_rejections_total", labels={"subject": "lab"}
        )
        assert rejections.value == 0.0
