"""End-to-end observability: instrumented chaos runs are deterministic.

The acceptance property of the obs subsystem: two identical ``run_chaos``
invocations under :class:`~repro.service.clock.SimulatedClock` with a
fixed seed fill their registries identically, down to the canonical-JSON
bytes.  Alongside determinism, the suite pins the metric families each
layer is contracted to emit and that instrumentation never changes what
the service computes.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsRegistry, canonical_json, validate_metric_name
from repro.service.chaos import SHIPPED_SCENARIOS, ChaosScenario, run_chaos


@pytest.fixture(scope="module")
def crash_run():
    """One instrumented source-crash drill (shared: chaos runs are slow)."""
    registry = MetricsRegistry()
    report = run_chaos(
        SHIPPED_SCENARIOS["source-crash"],
        duration_s=40.0,
        registry=registry,
    )
    return registry, report


class TestDeterminism:
    def test_snapshot_is_byte_identical_across_runs(self, crash_run):
        registry, _ = crash_run
        rerun = MetricsRegistry()
        run_chaos(
            SHIPPED_SCENARIOS["source-crash"],
            duration_s=40.0,
            registry=rerun,
        )
        assert canonical_json(rerun.snapshot()) == canonical_json(
            registry.snapshot()
        )

    def test_report_unchanged_by_instrumentation(self, crash_run):
        _, instrumented = crash_run
        plain = run_chaos(
            SHIPPED_SCENARIOS["source-crash"], duration_s=40.0
        )
        # Serialized comparison: NaN medians (no post-recovery estimates
        # in a short drill) are unequal to themselves as dict values.
        assert json.dumps(plain.to_jsonable(), sort_keys=True) == json.dumps(
            instrumented.to_jsonable(), sort_keys=True
        )


class TestMetricContracts:
    def test_every_exported_name_passes_unit_discipline(self, crash_run):
        registry, _ = crash_run
        for sample in registry.snapshot()["metrics"]:
            validate_metric_name(sample["name"])

    def test_each_layer_reports(self, crash_run):
        registry, _ = crash_run
        names = {s["name"] for s in registry.snapshot()["metrics"]}
        # One family per instrumented layer proves the plumbing reaches it.
        assert "pipeline_stage_duration_s" in names       # core pipeline
        assert "dsp_reclock_gap_fraction" in names        # dsp.reclock
        assert "monitor_fresh_windows_total" in names     # streaming monitor
        assert "source_reads_ok_total" in names           # resilient source
        assert "supervisor_checkpoints_total" in names    # supervisor

    def test_crash_scenario_counts_the_crash(self, crash_run):
        registry, _ = crash_run
        crashes = registry.counter(
            "source_crashes_total", labels={"subject": "subject"}
        )
        rebuilds = registry.counter(
            "source_rebuilds_total", labels={"subject": "subject"}
        )
        assert crashes.value >= 1.0
        assert rebuilds.value >= 1.0

    def test_pipeline_stage_histograms_cover_all_stages(self, crash_run):
        registry, _ = crash_run
        stages = {
            dict(s.labels).get("stage")
            for s in registry
            if s.name == "pipeline_stage_duration_s"
        }
        assert {
            "phase_difference",
            "environment_detection",
            "calibration",
            "subcarrier_selection",
            "dwt",
            "breathing_estimation",
        } <= stages

    def test_reference_run_not_in_snapshot(self, crash_run):
        """Fresh-window count reflects one run, not the faulted run plus
        its fault-free reference (which must stay uninstrumented)."""
        registry, report = crash_run
        fresh = registry.counter("monitor_fresh_windows_total").value
        n_fresh_estimates = sum(1 for e in report.estimates if e.fresh and e.ok)
        assert fresh == pytest.approx(n_fresh_estimates)


class TestBreakerMetrics:
    def test_transient_errors_drive_breaker_transitions(self):
        registry = MetricsRegistry()
        run_chaos(
            SHIPPED_SCENARIOS["transient-errors"],
            duration_s=40.0,
            streaming_config=None,
            registry=registry,
        )
        names = {s["name"] for s in registry.snapshot()["metrics"]}
        assert "breaker_transitions_total" in names
        opened = registry.counter(
            "breaker_transitions_total",
            labels={"from_state": "closed", "to_state": "open"},
        )
        closed = registry.counter(
            "breaker_transitions_total",
            labels={"from_state": "half-open", "to_state": "closed"},
        )
        assert opened.value >= 1.0
        assert closed.value >= 1.0


class TestFaultFreeRun:
    def test_no_failure_counters_appear(self):
        registry = MetricsRegistry()
        run_chaos(
            ChaosScenario(name="clean", faults=()),
            duration_s=40.0,
            registry=registry,
        )
        names = {s["name"] for s in registry.snapshot()["metrics"]}
        assert "source_crashes_total" not in names
        assert "breaker_transitions_total" not in names
        assert "supervisor_monitor_restarts_total" not in names
        assert "monitor_fresh_windows_total" in names
