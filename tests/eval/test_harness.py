"""Tests for the trial-runner harness."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.eval.harness import (
    BreathingTrialResults,
    TrialOutcome,
    default_subject,
    run_breathing_trials,
)
from repro.rf.scene import laboratory_scenario


def small_factory(k, rng):
    return laboratory_scenario(
        [default_subject(rng, with_heartbeat=False)], clutter_seed=k
    )


class TestDefaultSubject:
    def test_rates_inside_bands(self, rng):
        person = default_subject(rng)
        assert 0.18 <= person.breathing.frequency_hz <= 0.42
        assert 0.9 <= person.heartbeat.frequency_hz <= 1.8

    def test_custom_bands(self, rng):
        person = default_subject(
            rng, breathing_band_hz=(0.18, 0.30), heart_band_hz=(1.0, 1.2)
        )
        assert 0.18 <= person.breathing.frequency_hz <= 0.30
        assert 1.0 <= person.heartbeat.frequency_hz <= 1.2

    def test_reproducible(self):
        a = default_subject(np.random.default_rng(5))
        b = default_subject(np.random.default_rng(5))
        assert a.breathing.frequency_hz == b.breathing.frequency_hz
        assert a.position == b.position


class TestResultsContainer:
    def test_accumulates_by_method(self):
        results = BreathingTrialResults()
        results.add(TrialOutcome("m1", 15.0, 15.1, 0.1, 0.99))
        results.add(TrialOutcome("m1", 15.0, 15.3, 0.3, 0.98))
        results.add(TrialOutcome("m2", 15.0, 16.0, 1.0, 0.93))
        assert results.errors("m1").tolist() == [0.1, 0.3]
        assert results.errors("m2").tolist() == [1.0]

    def test_failures_dropped_or_scored_zero(self):
        results = BreathingTrialResults()
        results.add(
            TrialOutcome("m", 15.0, float("nan"), float("nan"), 0.0, failed=True)
        )
        results.add(TrialOutcome("m", 15.0, 15.0, 0.0, 1.0))
        assert results.errors("m").tolist() == [0.0]
        assert results.failure_rate("m") == pytest.approx(0.5)
        assert results.accuracies("m").tolist() == [0.0, 1.0]

    def test_unknown_method_is_empty(self):
        results = BreathingTrialResults()
        assert results.errors("nope").size == 0
        assert results.failure_rate("nope") == 0.0


class TestRunBreathingTrials:
    def test_runs_all_methods(self):
        results = run_breathing_trials(
            small_factory,
            2,
            duration_s=10.0,
            sample_rate_hz=200.0,
            methods=("phasebeat", "amplitude", "rss"),
            base_seed=42,
        )
        for method in ("phasebeat", "amplitude", "rss"):
            assert len(results.outcomes[method]) == 2

    def test_phasebeat_accurate_on_easy_trials(self):
        results = run_breathing_trials(
            small_factory,
            3,
            duration_s=20.0,
            methods=("phasebeat",),
            base_seed=7,
        )
        errors = results.errors("phasebeat")
        assert errors.size >= 2
        assert np.median(errors) < 1.0

    def test_zero_trials_rejected(self):
        with pytest.raises(ReproError):
            run_breathing_trials(small_factory, 0)

    def test_unknown_method_rejected(self):
        with pytest.raises(ReproError):
            run_breathing_trials(
                small_factory, 1, duration_s=5.0, methods=("bogus",)
            )
