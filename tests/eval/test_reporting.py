"""Tests for ASCII reporting helpers."""

from repro.eval.reporting import format_cdf_summary, format_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            ["name", "value"], [["a", 1.0], ["bb", 2.5]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "bb" in lines[4]

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456789]])
        assert "0.1235" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestFormatSeries:
    def test_xy_columns(self):
        text = format_series(
            [1.0, 2.0], [0.1, 0.2], x_label="d", y_label="err"
        )
        lines = text.splitlines()
        assert lines[0].startswith("d")
        assert "0.1" in lines[2]


class TestFormatCdfSummary:
    def test_contains_key_stats(self):
        summary = {
            "median": 0.25,
            "p90": 0.5,
            "max": 0.85,
            "frac_under_half_bpm": 0.9,
        }
        text = format_cdf_summary("phasebeat", summary)
        assert "phasebeat" in text
        assert "median=0.25" in text
        assert "p90=0.5" in text
        assert "P(err<=0.5)=0.90" in text

    def test_p80_variant(self):
        text = format_cdf_summary("heart", {"median": 1.0, "p80": 2.5, "max": 10.0})
        assert "p80=2.5" in text
