"""Unit tests for evaluation metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.eval.metrics import (
    absolute_error_bpm,
    accuracy,
    empirical_cdf,
    match_rates,
    multi_person_errors,
    percentile_error,
)


class TestScalarMetrics:
    def test_absolute_error(self):
        assert absolute_error_bpm(15.5, 15.0) == pytest.approx(0.5)
        assert absolute_error_bpm(14.5, 15.0) == pytest.approx(0.5)

    def test_accuracy_perfect(self):
        assert accuracy(15.0, 15.0) == 1.0

    def test_accuracy_paper_definition(self):
        # 5% relative error → 95% accuracy.
        assert accuracy(15.75, 15.0) == pytest.approx(0.95)

    def test_accuracy_clipped_at_zero(self):
        assert accuracy(45.0, 15.0) == 0.0

    def test_accuracy_needs_positive_truth(self):
        with pytest.raises(ConfigurationError):
            accuracy(10.0, 0.0)


class TestMatching:
    def test_identity_match(self):
        pairs = match_rates(np.array([12.0, 18.0]), np.array([12.0, 18.0]))
        assert pairs == [(12.0, 12.0), (18.0, 18.0)]

    def test_closest_pair_assignment(self):
        pairs = match_rates(np.array([12.4, 18.1]), np.array([12.0, 18.0]))
        assert pairs == [(12.4, 12.0), (18.1, 18.0)]

    def test_missing_estimate_becomes_nan(self):
        pairs = match_rates(np.array([12.0]), np.array([12.0, 18.0]))
        assert pairs[0] == (12.0, 12.0)
        assert np.isnan(pairs[1][0])
        assert pairs[1][1] == 18.0

    def test_no_double_assignment(self):
        # One estimate near both truths can only serve one of them.
        pairs = match_rates(np.array([15.0, 40.0]), np.array([14.9, 15.1]))
        estimates = [e for e, _ in pairs]
        assert sorted(estimates) == [15.0, 40.0]


class TestMultiPersonErrors:
    def test_exact_estimates(self):
        errors = multi_person_errors(
            np.array([12.0, 18.0]), np.array([12.0, 18.0])
        )
        assert np.allclose(errors, 0.0)

    def test_miss_charged_as_truth(self):
        errors = multi_person_errors(np.array([12.0]), np.array([12.0, 18.0]))
        assert errors[0] == 0.0
        assert errors[1] == 18.0  # accuracy 0 under the paper's metric

    def test_custom_miss_penalty(self):
        errors = multi_person_errors(
            np.array([12.0]), np.array([12.0, 18.0]), miss_penalty_bpm=5.0
        )
        assert errors[1] == 5.0


class TestCdfAndPercentiles:
    def test_empirical_cdf(self):
        x, p = empirical_cdf(np.array([3.0, 1.0, 2.0]))
        assert np.allclose(x, [1.0, 2.0, 3.0])
        assert np.allclose(p, [1 / 3, 2 / 3, 1.0])

    def test_cdf_of_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            empirical_cdf(np.array([]))

    def test_percentiles(self):
        errors = np.arange(1.0, 101.0)
        assert percentile_error(errors, 50) == pytest.approx(50.5)
        assert percentile_error(errors, 90) == pytest.approx(90.1)

    def test_percentile_validation(self):
        with pytest.raises(ConfigurationError):
            percentile_error(np.array([1.0]), 150)
        with pytest.raises(ConfigurationError):
            percentile_error(np.array([]), 50)
