"""Smoke tests for the per-figure experiment functions.

The heavy parameterizations live in benchmarks/; these runs use the
cheapest meaningful settings and assert structural invariants so the
experiment code paths stay green under refactoring.
"""

import numpy as np

from repro.eval import experiments as E


class TestCheapFigures:
    def test_fig01_structure(self):
        result = E.fig01_phase_stability(n_packets=300)
        assert set(result) >= {
            "raw_resultant_length",
            "diff_resultant_length",
            "raw_sector_deg",
            "diff_sector_deg",
        }
        assert 0 <= result["raw_resultant_length"] <= 1
        assert 0 <= result["diff_resultant_length"] <= 1

    def test_fig03_structure(self):
        result = E.fig03_environment_detection(seed=1)
        assert set(result["segment_mean_v"]) == {
            "sitting",
            "no_person",
            "standing_up",
            "walking",
        }
        assert result["v"].shape == result["window_centers_s"].shape

    def test_fig04_structure(self):
        result = E.fig04_calibration(seed=1)
        assert result["n_raw_packets"] == 10_000
        assert result["n_calibrated_samples"] == 500

    def test_fig06_structure(self):
        result = E.fig06_dwt_decomposition(seed=1)
        assert result["breathing_band_hz"] == (0.0, 0.625)
        assert result["band_separation_ratio"] > 1.0

    def test_fig07_structure(self):
        result = E.fig07_subcarrier_mad()
        assert result["mads"].shape == (30,)
        assert result["selected"] in result["candidates"]


class TestTrialFigures:
    def test_fig11_minimal(self):
        result = E.fig11_breathing_cdf(n_trials=3, base_seed=100)
        for method in ("phasebeat", "amplitude"):
            assert "median" in result[method]
            assert result[method]["cdf_x"].size >= 1

    def test_fig13_minimal(self):
        result = E.fig13_sampling_rate(
            rates_hz=(200.0, 400.0), n_trials=2
        )
        assert len(result["breathing"]) == 2
        assert len(result["heart_tone_snr"]) == 2

    def test_fig15_minimal(self):
        result = E.fig15_distance_corridor(
            distances_m=(2.0, 6.0), n_trials=2
        )
        assert len(result["mean_error_bpm"]) == 2
        assert all(np.isfinite(result["mean_error_bpm"]))

    def test_fig16_minimal(self):
        result = E.fig16_distance_through_wall(
            distances_m=(3.0,), n_trials=2
        )
        assert len(result["mean_error_bpm"]) == 1


class TestExportList:
    def test_all_experiments_exported_and_callable(self):
        for name in E.__all__:
            assert callable(getattr(E, name))

    def test_one_export_per_reproduced_figure(self):
        figures = {
            name.split("_")[0] for name in E.__all__ if name.startswith("fig")
        }
        expected = {
            "fig01", "fig03", "fig04", "fig05", "fig06", "fig07",
            "fig08", "fig09", "fig11", "fig12", "fig13", "fig14",
            "fig15", "fig16",
        }
        assert figures == expected
