"""Fixture-driven tests for the phaselint rules and CLI.

Every rule gets at least one snippet it must fire on and one it must stay
silent on, so a rule regression shows up as a failing pair rather than a
quietly shrinking finding count.
"""

import json



from phaselint.baseline import Baseline
from phaselint.cli import main
from phaselint.config import LintConfig, load_config
from phaselint.engine import lint_file, lint_paths, lint_paths_detailed

def lint_snippet(tmp_path, source, config=None, *, select=(), name="snippet.py"):
    # Rule tests isolate their rule with ``select`` so an unrelated rule
    # (e.g. PL006 on a deliberately sloppy snippet) cannot pollute the
    # finding list under scrutiny.
    if config is None:
        config = LintConfig(select=tuple(select))
    path = tmp_path / name
    path.write_text(source)
    return lint_file(path, config)


def codes(findings):
    return [f.rule for f in findings]


class TestPL001Randomness:
    def test_fires_on_global_numpy_rng(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import numpy as np\nx = np.random.normal(size=3)\n",
            select=("PL001",),
        )
        assert codes(found) == ["PL001"]

    def test_fires_on_unseeded_default_rng(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import numpy as np\nrng = np.random.default_rng()\n",
            select=("PL001",),
        )
        assert codes(found) == ["PL001"]

    def test_fires_on_stdlib_random(self, tmp_path):
        found = lint_snippet(
            tmp_path, "import random\nx = random.random()\n", select=("PL001",)
        )
        assert codes(found) == ["PL001"]

    def test_fires_on_wall_clock(self, tmp_path):
        found = lint_snippet(
            tmp_path, "import time\nseed = int(time.time())\n", select=("PL001",)
        )
        assert codes(found) == ["PL001"]

    def test_silent_on_seeded_rng(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import numpy as np\nrng = np.random.default_rng(42)\n"
            "x = rng.normal(size=3)\n",
            select=("PL001",),
        )
        assert found == []

    def test_allowlisted_entry_point_exempt(self, tmp_path):
        config = LintConfig(allow_unseeded=("*cli.py",), select=("PL001",))
        found = lint_snippet(
            tmp_path,
            "import numpy as np\nrng = np.random.default_rng()\n",
            config,
            name="cli.py",
        )
        assert found == []


class TestPL001WallClockShim:
    """The `time` module ban inside wall-clock-scope, shim files excepted."""

    def _config(self, tmp_path, **overrides):
        settings = {
            "select": ("PL001",),
            "wall_clock_scope": (tmp_path.as_posix(),),
            "wall_clock_shims": ("*/clock.py",),
        }
        settings.update(overrides)
        return LintConfig(**settings)

    def test_denies_import_time_in_scope(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import time\n\nT0 = time.perf_counter()\n",
            self._config(tmp_path),
        )
        assert codes(found) == ["PL001"]
        assert "wall-clock shim" in found[0].message

    def test_denies_from_time_import_in_scope(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "from time import perf_counter\n\nT0 = perf_counter()\n",
            self._config(tmp_path),
        )
        assert codes(found) == ["PL001"]

    def test_from_time_import_time_yields_single_finding(self, tmp_path):
        # `from time import time` trips both the shim ban and the legacy
        # wall-clock check; the shim ban must supersede, not stack.
        found = lint_snippet(
            tmp_path,
            "from time import time\n\nseed = int(time())\n",
            self._config(tmp_path),
        )
        assert codes(found) == ["PL001"]

    def test_allows_sanctioned_shim_file(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import time\n\n\ndef now_s() -> float:\n"
            '    """Monotonic seconds."""\n'
            "    return time.perf_counter()\n",
            self._config(tmp_path),
            name="clock.py",
        )
        assert found == []

    def test_perf_counter_stays_legal_outside_scope(self, tmp_path):
        # Without a scope the historical behaviour holds: perf_counter is
        # a duration read, not a wall-clock read.
        found = lint_snippet(
            tmp_path,
            "import time\n\nT0 = time.perf_counter()\n",
            self._config(tmp_path, wall_clock_scope=()),
        )
        assert found == []

    def test_allow_unseeded_does_not_bypass_shim_ban(self, tmp_path):
        # An entry-point exemption covers entropy/wall-clock *reads*, not
        # the structural ban on importing `time` inside the scope.
        config = self._config(tmp_path, allow_unseeded=("*cli.py",))
        found = lint_snippet(
            tmp_path,
            "import time\nimport numpy as np\n\n"
            "rng = np.random.default_rng()\nT0 = time.perf_counter()\n",
            config,
            name="cli.py",
        )
        assert codes(found) == ["PL001"]
        assert found[0].line == 1

    def test_shim_config_loads_from_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.phaselint]\n"
            'wall-clock-scope = ["src"]\n'
            'wall-clock-shims = ["src/repro/obs/clock.py"]\n'
        )
        config = load_config(tmp_path)
        assert config.wall_clock_banned("src/repro/core/pipeline.py")
        assert not config.wall_clock_banned("src/repro/obs/clock.py")
        assert not config.wall_clock_banned("tests/test_cli.py")


class TestPL002Ndarray:
    def test_fires_on_bare_parameter_annotation(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import numpy as np\n\n\n"
            "def f(x: np.ndarray) -> float:\n"
            '    """Doc."""\n'
            "    return float(x.sum())\n",
            select=("PL002",),
        )
        assert codes(found) == ["PL002"]

    def test_fires_on_bare_return_annotation(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import numpy as np\n\n\n"
            "def f(n: int) -> np.ndarray:\n"
            '    """Doc."""\n'
            "    return np.zeros(n)\n",
            select=("PL002",),
        )
        assert codes(found) == ["PL002"]

    def test_silent_on_ndarray_alias(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import numpy as np\nfrom numpy.typing import NDArray\n\n\n"
            "def f(x: NDArray[np.float64]) -> NDArray[np.float64]:\n"
            '    """Doc."""\n'
            "    return x\n",
            select=("PL002",),
        )
        assert found == []

    def test_silent_on_private_function(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import numpy as np\n\n\ndef _helper(x: np.ndarray):\n    return x\n",
            select=("PL002",),
        )
        assert found == []


class TestPL003Units:
    def test_fires_on_ambiguous_parameter(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def resample(series, sample_rate):\n"
            '    """Doc."""\n'
            "    return series\n",
            select=("PL003",),
        )
        assert "PL003" in codes(found)

    def test_fires_on_ambiguous_dataclass_field(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "from dataclasses import dataclass\n\n\n"
            "@dataclass\nclass Config:\n"
            '    """Doc."""\n\n'
            "    rate: float = 1.0\n",
            select=("PL003",),
        )
        assert "PL003" in codes(found)

    def test_silent_with_unit_suffix(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def resample(series, sample_rate_hz, window_duration_s):\n"
            '    """Doc."""\n'
            "    return series\n",
            select=("PL003",),
        )
        assert found == []


class TestPL004FloatEquality:
    def test_fires_on_float_equality(self, tmp_path):
        found = lint_snippet(tmp_path, "ok = 0.1 + 0.2 == 0.3\n", select=("PL004",))
        assert codes(found) == ["PL004"]

    def test_fires_on_float_inequality(self, tmp_path):
        found = lint_snippet(
            tmp_path, "def f(x):\n    return x != 1.5\n", select=("PL004",)
        )
        assert codes(found) == ["PL004"]

    def test_silent_on_isclose(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import math\nok = math.isclose(0.1 + 0.2, 0.3)\n",
            select=("PL004",),
        )
        assert found == []

    def test_silent_on_integer_comparison(self, tmp_path):
        found = lint_snippet(
            tmp_path, "def f(n):\n    return n == 0\n", select=("PL004",)
        )
        assert found == []


class TestPL005MutableDefaults:
    def test_fires_on_list_default(self, tmp_path):
        found = lint_snippet(
            tmp_path, "def f(items=[]):\n    return items\n", select=("PL005",)
        )
        assert codes(found) == ["PL005"]

    def test_fires_on_dict_default(self, tmp_path):
        found = lint_snippet(
            tmp_path, "def f(table={}):\n    return table\n", select=("PL005",)
        )
        assert codes(found) == ["PL005"]

    def test_silent_on_none_default(self, tmp_path):
        found = lint_snippet(
            tmp_path, "def f(items=None):\n    return items\n", select=("PL005",)
        )
        assert found == []


class TestPL006PublicApi:
    def test_fires_on_missing_annotations(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def estimate(series, sample_rate_hz):\n"
            '    """Doc."""\n'
            "    return 0.0\n",
            select=("PL006",),
        )
        assert "PL006" in codes(found)

    def test_fires_on_missing_docstring(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def estimate(series: list, sample_rate_hz: float) -> float:\n"
            "    return 0.0\n",
            select=("PL006",),
        )
        assert "PL006" in codes(found)

    def test_silent_on_complete_public_function(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def estimate(series: list, sample_rate_hz: float) -> float:\n"
            '    """Estimate the rate."""\n'
            "    return 0.0\n",
            select=("PL006",),
        )
        assert found == []


class TestSuppression:
    def test_line_disable(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "ok = 0.1 == 0.2  # phaselint: disable=PL004 -- deliberate\n",
            select=("PL004",),
        )
        assert found == []

    def test_line_disable_other_rule_still_fires(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "ok = 0.1 == 0.2  # phaselint: disable=PL001\n",
            select=("PL004",),
        )
        assert codes(found) == ["PL004"]

    def test_file_disable(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "# phaselint: disable-file=PL004\nok = 0.1 == 0.2\nbad = 0.3 == 0.4\n",
            select=("PL004",),
        )
        assert found == []


class TestEngine:
    def test_syntax_error_becomes_pl000(self, tmp_path):
        found = lint_snippet(tmp_path, "def broken(:\n")
        assert codes(found) == ["PL000"]

    def test_rule_paths_scope(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "tests").mkdir()
        bad = "import numpy as np\n\n\ndef f(x: np.ndarray):\n    return x\n"
        (tmp_path / "src" / "mod.py").write_text(bad)
        (tmp_path / "tests" / "test_mod.py").write_text(bad)
        config = LintConfig(
            rule_paths={"PL002": (str(tmp_path / "src"),)}, select=("PL002",)
        )
        found = lint_paths([tmp_path], config)
        assert [f.path for f in found] == [str(tmp_path / "src" / "mod.py")]

    def test_findings_sorted_and_located(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "a = 0.1 == 0.2\nimport random\nb = random.random()\n",
            select=("PL001", "PL004"),
        )
        assert [(f.rule, f.line) for f in found] == [
            ("PL001", 3),
            ("PL004", 1),
        ] or [(f.rule, f.line) for f in found] == [("PL004", 1), ("PL001", 3)]
        for f in found:
            assert f.line >= 1 and f.col >= 0 and f.path


class TestConfigLoading:
    def test_load_config_reads_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.phaselint]\n"
            'allow-unseeded = ["scripts/*"]\n'
            "[tool.phaselint.rule-paths]\n"
            'PL006 = ["src/repro"]\n'
        )
        config = load_config(tmp_path)
        assert config.allow_unseeded == ("scripts/*",)
        assert config.rule_paths["PL006"] == ("src/repro",)

    def test_missing_pyproject_gives_defaults(self, tmp_path):
        assert load_config(tmp_path) == LintConfig()


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path / "ok.py"), "--config-root", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one_with_summary(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("ok = 0.1 == 0.2\n")
        assert main([str(tmp_path / "bad.py"), "--config-root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "PL004" in out and "1 finding(s)" in out

    def test_json_output(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("ok = 0.1 == 0.2\n")
        code = main(
            [
                str(tmp_path / "bad.py"),
                "--config-root",
                str(tmp_path),
                "--format",
                "json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "PL004"
        assert set(payload[0]) == {"path", "line", "col", "rule", "message"}

    def test_select_filters_rules(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import random\na = random.random()\nb = 0.1 == 0.2\n"
        )
        code = main(
            [
                str(tmp_path / "bad.py"),
                "--config-root",
                str(tmp_path),
                "--select",
                "PL001",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "PL001" in out and "PL004" not in out

    def test_unknown_rule_code_is_usage_error(self, tmp_path):
        assert main(["--select", "PL999", str(tmp_path)]) == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        assert main([str(tmp_path / "missing_dir")]) == 2

    def test_list_rules_covers_all_shipped(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "PL001", "PL002", "PL003", "PL004", "PL005", "PL006", "PL007",
            "PL008", "PL009", "PL010", "PL011",
        ):
            assert code in out


class TestPL007BroadExcept:
    def test_fires_on_bare_except(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "try:\n    x = 1\nexcept:\n    pass\n",
            select=("PL007",),
        )
        assert codes(found) == ["PL007"]

    def test_fires_on_silent_except_exception(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "try:\n    x = 1\nexcept Exception:\n    x = 2\n",
            select=("PL007",),
        )
        assert codes(found) == ["PL007"]

    def test_fires_on_broad_tuple(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "try:\n    x = 1\nexcept (ValueError, Exception):\n    pass\n",
            select=("PL007",),
        )
        assert codes(found) == ["PL007"]

    def test_silent_on_narrow_type(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "try:\n    x = 1\nexcept ValueError:\n    pass\n",
            select=("PL007",),
        )
        assert found == []

    def test_silent_when_reraising_typed_error(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "try:\n    x = 1\n"
            "except Exception as exc:\n"
            "    raise RuntimeError('boom') from exc\n",
            select=("PL007",),
        )
        assert found == []

    def test_silent_when_logging(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import warnings\n"
            "try:\n    x = 1\n"
            "except Exception:\n"
            "    warnings.warn('degraded')\n",
            select=("PL007",),
        )
        assert found == []

    def test_raise_in_nested_function_does_not_count(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "try:\n    x = 1\n"
            "except Exception:\n"
            "    def fail():\n"
            "        raise RuntimeError('later')\n",
            select=("PL007",),
        )
        assert codes(found) == ["PL007"]

    def test_disable_comment_suppresses(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "try:\n    x = 1\n"
            "except Exception:  # phaselint: disable=PL007\n"
            "    pass\n",
            select=("PL007",),
        )
        assert found == []


class TestPL008UnorderedIteration:
    def test_fires_on_dict_view_loop_with_append(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def collect(table):\n"
            "    out = []\n"
            "    for value in table.values():\n"
            "        out.append(value)\n"
            "    return out\n",
            select=("PL008",),
        )
        assert codes(found) == ["PL008"]
        assert found[0].line == 3
        assert ".values()" in found[0].message

    def test_fires_on_set_loop_with_accumulation(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def total(names):\n"
            "    items = set(names)\n"
            "    acc = ''\n"
            "    for item in items:\n"
            "        acc += item\n"
            "    return acc\n",
            select=("PL008",),
        )
        assert codes(found) == ["PL008"]
        assert "hash-dependent" in found[0].message

    def test_fires_transitively_through_local_helper(self, tmp_path):
        # The loop body has no sink of its own; the helper it calls does.
        found = lint_snippet(
            tmp_path,
            "log = []\n\n\n"
            "def emit(x):\n"
            "    log.append(x)\n\n\n"
            "def run(table):\n"
            "    for key in table.keys():\n"
            "        emit(key)\n",
            select=("PL008",),
        )
        assert codes(found) == ["PL008"]
        assert "transitive" in found[0].message

    def test_fires_transitively_across_modules(self, tmp_path):
        (tmp_path / "sink_mod.py").write_text(
            "log = []\n\n\ndef emit(x):\n    log.append(x)\n"
        )
        (tmp_path / "loop_mod.py").write_text(
            "from sink_mod import emit\n\n\n"
            "def run(table):\n"
            "    for key in table.values():\n"
            "        emit(key)\n"
        )
        found = lint_paths([tmp_path], LintConfig(select=("PL008",)))
        assert [(f.rule, f.path.endswith("loop_mod.py")) for f in found] == [
            ("PL008", True)
        ]

    def test_fires_on_set_in_list_comprehension(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def freeze(names):\n"
            "    tags = {n.strip() for n in names}\n"
            "    return [t.upper() for t in tags]\n",
            select=("PL008",),
        )
        assert codes(found) == ["PL008"]

    def test_fires_on_set_into_list_call(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def freeze(tags: set) -> list:\n"
            '    """Doc."""\n'
            "    return list(tags)\n",
            select=("PL008",),
        )
        assert codes(found) == ["PL008"]

    def test_silent_on_sorted_iteration(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def collect(table):\n"
            "    out = []\n"
            "    for value in sorted(table.values()):\n"
            "        out.append(value)\n"
            "    return out\n",
            select=("PL008",),
        )
        assert found == []

    def test_silent_on_order_insensitive_consumption(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def stats(table, tags: set):\n"
            "    n = len(tags)\n"
            "    alive = any(v.ok for v in table.values())\n"
            "    return n, alive, sorted(tags)\n",
            select=("PL008",),
        )
        assert found == []

    def test_silent_on_loop_without_sink(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def validate(table):\n"
            "    for value in table.values():\n"
            "        value.check()\n",
            select=("PL008",),
        )
        assert found == []

    def test_insertion_order_directive_with_reason_suppresses(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def collect(table):\n"
            "    out = []\n"
            "    for v in table.values():  "
            "# phaselint: insertion-order -- admission order is the contract\n"
            "        out.append(v)\n"
            "    return out\n",
            select=("PL008",),
        )
        assert found == []

    def test_insertion_order_directive_without_reason_is_inert(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def collect(table):\n"
            "    out = []\n"
            "    for v in table.values():  # phaselint: insertion-order\n"
            "        out.append(v)\n"
            "    return out\n",
            select=("PL008",),
        )
        assert codes(found) == ["PL008"]


class TestPL009RngFlow:
    def test_fires_on_legacy_global_call(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import numpy as np\n\n\n"
            "def jitter(n):\n"
            "    return np.random.rand(n)\n",
            select=("PL009",),
        )
        assert codes(found) == ["PL009"]
        assert "numpy.random.rand" in found[0].message

    def test_fires_on_legacy_seed_call(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import numpy as np\nnp.random.seed(0)\n",
            select=("PL009",),
        )
        assert codes(found) == ["PL009"]

    def test_fires_on_module_level_generator(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import numpy as np\n\n_rng = np.random.default_rng(42)\n",
            select=("PL009",),
        )
        assert codes(found) == ["PL009"]
        assert "module-level Generator" in found[0].message

    def test_fires_on_class_level_generator(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import numpy as np\n\n\n"
            "class Source:\n"
            '    """Doc."""\n\n'
            "    rng = np.random.default_rng(7)\n",
            select=("PL009",),
        )
        assert codes(found) == ["PL009"]

    def test_fires_on_cross_module_generator_import(self, tmp_path):
        (tmp_path / "rng_owner.py").write_text(
            "import numpy as np\n\nshared_rng = np.random.default_rng(1)\n"
        )
        (tmp_path / "rng_user.py").write_text(
            "from rng_owner import shared_rng\n\n\n"
            "def draw():\n    return shared_rng.normal()\n"
        )
        found = lint_paths([tmp_path], LintConfig(select=("PL009",)))
        by_file = sorted(
            (f.path.rpartition("/")[2], f.rule) for f in found
        )
        assert by_file == [
            ("rng_owner.py", "PL009"),
            ("rng_user.py", "PL009"),
        ]

    def test_silent_on_scoped_seeded_generator(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import numpy as np\n\n\n"
            "def sample(seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.normal(size=3)\n",
            select=("PL009",),
        )
        assert found == []


class TestPL010SharedState:
    def test_fires_on_module_level_dict(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "_cache = {}\n\n\n"
            "def lookup(key):\n    return _cache.get(key)\n",
            select=("PL010",),
        )
        assert codes(found) == ["PL010"]
        assert "module-level mutable dict" in found[0].message

    def test_fires_on_class_level_list(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "class Session:\n"
            '    """Doc."""\n\n'
            "    history = []\n",
            select=("PL010",),
        )
        assert codes(found) == ["PL010"]
        assert "class-level mutable list" in found[0].message

    def test_silent_on_constant_convention_names(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "SCENARIOS = {'a': 1}\n_DEFAULTS = [1, 2]\n",
            select=("PL010",),
        )
        assert found == []

    def test_silent_on_dataclass_fields(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "from dataclasses import dataclass, field\n\n\n"
            "@dataclass\nclass Report:\n"
            '    """Doc."""\n\n'
            "    items: list = field(default_factory=list)\n",
            select=("PL010",),
        )
        assert found == []

    def test_justify_directive_suppresses(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "_registry = {}  "
            "# phaselint: justify=PL010 -- populated only at import time\n",
            select=("PL010",),
        )
        assert found == []

    def test_justify_without_reason_is_inert(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "_registry = {}  # phaselint: justify=PL010\n",
            select=("PL010",),
        )
        assert codes(found) == ["PL010"]

    def test_shared_state_roots_scope_the_closure(self, tmp_path):
        # root_mod imports helper_mod; loner_mod is unreachable from the
        # configured root, so its cache is out of scope.
        (tmp_path / "root_mod.py").write_text(
            "import helper_mod\n\n\ndef run():\n    return helper_mod.cache\n"
        )
        (tmp_path / "helper_mod.py").write_text("cache = {}\n")
        (tmp_path / "loner_mod.py").write_text("stash = {}\n")
        config = LintConfig(
            select=("PL010",), shared_state_roots=("root_mod",)
        )
        found = lint_paths([tmp_path], config)
        assert [f.path.rpartition("/")[2] for f in found] == ["helper_mod.py"]


class TestPL011FloatReduction:
    def test_fires_on_sum_over_set(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def total(weights: set) -> float:\n"
            '    """Doc."""\n'
            "    return sum(weights)\n",
            select=("PL011",),
        )
        assert codes(found) == ["PL011"]
        assert "hash order" in found[0].message

    def test_fires_on_sum_genexp_over_dict_view(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def total(sessions):\n"
            "    return sum(s.weight for s in sessions.values())\n",
            select=("PL011",),
        )
        assert codes(found) == ["PL011"]
        assert ".values()" in found[0].message

    def test_fires_on_fsum_over_set(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import math\n\n\n"
            "def total(weights: set) -> float:\n"
            '    """Doc."""\n'
            "    return math.fsum(weights)\n",
            select=("PL011",),
        )
        assert codes(found) == ["PL011"]

    def test_silent_on_fsum_over_dict_view(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import math\n\n\n"
            "def total(table):\n"
            "    return math.fsum(table.values())\n",
            select=("PL011",),
        )
        assert found == []

    def test_silent_on_sum_over_sorted(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def total(weights: set) -> float:\n"
            '    """Doc."""\n'
            "    return sum(sorted(weights))\n",
            select=("PL011",),
        )
        assert found == []

    def test_silent_on_sum_over_ordered_sequence(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def total(values: list) -> float:\n"
            '    """Doc."""\n'
            "    return sum(values)\n",
            select=("PL011",),
        )
        assert found == []

    def test_insertion_order_directive_suppresses(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def count(table):\n"
            "    return sum(len(v) for v in table.values())  "
            "# phaselint: insertion-order -- integer sum, order-independent\n",
            select=("PL011",),
        )
        assert found == []


class TestBaseline:
    _BAD = (
        "def collect(table):\n"
        "    out = []\n"
        "    for value in table.values():\n"
        "        out.append(value)\n"
        "    return out\n"
    )

    def _write_tree(self, tmp_path, source=None):
        (tmp_path / "mod.py").write_text(source or self._BAD)

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        self._write_tree(tmp_path)
        args = [str(tmp_path / "mod.py"), "--config-root", str(tmp_path)]
        assert main([*args, "--select", "PL008"]) == 1
        assert main([*args, "--select", "PL008", "--update-baseline"]) == 0
        assert (tmp_path / "phaselint-baseline.json").is_file()
        capsys.readouterr()
        assert main([*args, "--select", "PL008"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_baseline_survives_line_drift(self, tmp_path):
        self._write_tree(tmp_path)
        args = [str(tmp_path / "mod.py"), "--config-root", str(tmp_path),
                "--select", "PL008"]
        assert main([*args, "--update-baseline"]) == 0
        # Insert lines above the finding: the content hash still matches.
        self._write_tree(tmp_path, "X = 1\nY = 2\n" + self._BAD)
        assert main(args) == 0

    def test_editing_flagged_line_invalidates_entry(self, tmp_path):
        self._write_tree(tmp_path)
        args = [str(tmp_path / "mod.py"), "--config-root", str(tmp_path),
                "--select", "PL008"]
        assert main([*args, "--update-baseline"]) == 0
        edited = self._BAD.replace(
            "for value in table.values():", "for val in table.values():"
        )
        self._write_tree(tmp_path, edited)
        assert main(args) == 1

    def test_new_duplicate_of_grandfathered_line_still_fires(self, tmp_path):
        self._write_tree(tmp_path)
        args = [str(tmp_path / "mod.py"), "--config-root", str(tmp_path),
                "--select", "PL008"]
        assert main([*args, "--update-baseline"]) == 0
        self._write_tree(
            tmp_path, self._BAD + "\n\n" + self._BAD.replace("collect", "gather")
        )
        assert main(args) == 1

    def test_no_baseline_flag_reports_everything(self, tmp_path, capsys):
        self._write_tree(tmp_path)
        args = [str(tmp_path / "mod.py"), "--config-root", str(tmp_path),
                "--select", "PL008"]
        assert main([*args, "--update-baseline"]) == 0
        capsys.readouterr()
        assert main([*args, "--no-baseline"]) == 1
        assert "PL008" in capsys.readouterr().out

    def test_roundtrip_via_api(self, tmp_path):
        self._write_tree(tmp_path)
        run = lint_paths_detailed(
            [tmp_path], LintConfig(select=("PL008",))
        )
        assert run.findings
        baseline = Baseline.from_findings(run.findings, run.line_text)
        baseline.save(tmp_path / "baseline.json")
        reloaded = Baseline.load(tmp_path / "baseline.json")
        assert reloaded.filter(run.findings, run.line_text) == []


class TestSarif:
    def test_sarif_output_shape(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(TestBaseline._BAD)
        code = main(
            [str(tmp_path / "mod.py"), "--config-root", str(tmp_path),
             "--select", "PL008", "--format", "sarif"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "phaselint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"PL001", "PL008", "PL009", "PL010", "PL011"} <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "PL008"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("mod.py")
        assert location["region"]["startLine"] == 3

    def test_output_alias_and_clean_run(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        code = main(
            [str(tmp_path / "ok.py"), "--config-root", str(tmp_path),
             "--output", "sarif"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"] == []


class TestRepoIsClean:
    def test_shipping_tree_has_no_findings(self, monkeypatch):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        # Relative paths, as CI invokes it: [tool.phaselint] scoping and
        # allowlists are expressed relative to the repo root.
        monkeypatch.chdir(root)
        run = lint_paths_detailed(
            ["src", "tests", "benchmarks"], load_config(root)
        )
        baseline = Baseline.load(root / "phaselint-baseline.json")
        findings = baseline.filter(run.findings, run.line_text)
        assert findings == [], "\n".join(f.format_text() for f in findings)

    def test_baseline_is_small_and_audited(self):
        # The baseline is for grandfathered display-order sites only; a
        # growing baseline means new determinism findings are being
        # buried instead of fixed or annotated.
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        baseline = Baseline.load(root / "phaselint-baseline.json")
        assert sum(baseline.entries.values()) <= 4
        assert all(rule == "PL008" for _, rule, _ in baseline.entries)
