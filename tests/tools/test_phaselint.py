"""Fixture-driven tests for the phaselint rules and CLI.

Every rule gets at least one snippet it must fire on and one it must stay
silent on, so a rule regression shows up as a failing pair rather than a
quietly shrinking finding count.
"""

import json



from phaselint.cli import main
from phaselint.config import LintConfig, load_config
from phaselint.engine import lint_file, lint_paths

def lint_snippet(tmp_path, source, config=None, *, select=(), name="snippet.py"):
    # Rule tests isolate their rule with ``select`` so an unrelated rule
    # (e.g. PL006 on a deliberately sloppy snippet) cannot pollute the
    # finding list under scrutiny.
    if config is None:
        config = LintConfig(select=tuple(select))
    path = tmp_path / name
    path.write_text(source)
    return lint_file(path, config)


def codes(findings):
    return [f.rule for f in findings]


class TestPL001Randomness:
    def test_fires_on_global_numpy_rng(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import numpy as np\nx = np.random.normal(size=3)\n",
            select=("PL001",),
        )
        assert codes(found) == ["PL001"]

    def test_fires_on_unseeded_default_rng(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import numpy as np\nrng = np.random.default_rng()\n",
            select=("PL001",),
        )
        assert codes(found) == ["PL001"]

    def test_fires_on_stdlib_random(self, tmp_path):
        found = lint_snippet(
            tmp_path, "import random\nx = random.random()\n", select=("PL001",)
        )
        assert codes(found) == ["PL001"]

    def test_fires_on_wall_clock(self, tmp_path):
        found = lint_snippet(
            tmp_path, "import time\nseed = int(time.time())\n", select=("PL001",)
        )
        assert codes(found) == ["PL001"]

    def test_silent_on_seeded_rng(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import numpy as np\nrng = np.random.default_rng(42)\n"
            "x = rng.normal(size=3)\n",
            select=("PL001",),
        )
        assert found == []

    def test_allowlisted_entry_point_exempt(self, tmp_path):
        config = LintConfig(allow_unseeded=("*cli.py",), select=("PL001",))
        found = lint_snippet(
            tmp_path,
            "import numpy as np\nrng = np.random.default_rng()\n",
            config,
            name="cli.py",
        )
        assert found == []


class TestPL001WallClockShim:
    """The `time` module ban inside wall-clock-scope, shim files excepted."""

    def _config(self, tmp_path, **overrides):
        settings = {
            "select": ("PL001",),
            "wall_clock_scope": (tmp_path.as_posix(),),
            "wall_clock_shims": ("*/clock.py",),
        }
        settings.update(overrides)
        return LintConfig(**settings)

    def test_denies_import_time_in_scope(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import time\n\nT0 = time.perf_counter()\n",
            self._config(tmp_path),
        )
        assert codes(found) == ["PL001"]
        assert "wall-clock shim" in found[0].message

    def test_denies_from_time_import_in_scope(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "from time import perf_counter\n\nT0 = perf_counter()\n",
            self._config(tmp_path),
        )
        assert codes(found) == ["PL001"]

    def test_from_time_import_time_yields_single_finding(self, tmp_path):
        # `from time import time` trips both the shim ban and the legacy
        # wall-clock check; the shim ban must supersede, not stack.
        found = lint_snippet(
            tmp_path,
            "from time import time\n\nseed = int(time())\n",
            self._config(tmp_path),
        )
        assert codes(found) == ["PL001"]

    def test_allows_sanctioned_shim_file(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import time\n\n\ndef now_s() -> float:\n"
            '    """Monotonic seconds."""\n'
            "    return time.perf_counter()\n",
            self._config(tmp_path),
            name="clock.py",
        )
        assert found == []

    def test_perf_counter_stays_legal_outside_scope(self, tmp_path):
        # Without a scope the historical behaviour holds: perf_counter is
        # a duration read, not a wall-clock read.
        found = lint_snippet(
            tmp_path,
            "import time\n\nT0 = time.perf_counter()\n",
            self._config(tmp_path, wall_clock_scope=()),
        )
        assert found == []

    def test_allow_unseeded_does_not_bypass_shim_ban(self, tmp_path):
        # An entry-point exemption covers entropy/wall-clock *reads*, not
        # the structural ban on importing `time` inside the scope.
        config = self._config(tmp_path, allow_unseeded=("*cli.py",))
        found = lint_snippet(
            tmp_path,
            "import time\nimport numpy as np\n\n"
            "rng = np.random.default_rng()\nT0 = time.perf_counter()\n",
            config,
            name="cli.py",
        )
        assert codes(found) == ["PL001"]
        assert found[0].line == 1

    def test_shim_config_loads_from_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.phaselint]\n"
            'wall-clock-scope = ["src"]\n'
            'wall-clock-shims = ["src/repro/obs/clock.py"]\n'
        )
        config = load_config(tmp_path)
        assert config.wall_clock_banned("src/repro/core/pipeline.py")
        assert not config.wall_clock_banned("src/repro/obs/clock.py")
        assert not config.wall_clock_banned("tests/test_cli.py")


class TestPL002Ndarray:
    def test_fires_on_bare_parameter_annotation(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import numpy as np\n\n\n"
            "def f(x: np.ndarray) -> float:\n"
            '    """Doc."""\n'
            "    return float(x.sum())\n",
            select=("PL002",),
        )
        assert codes(found) == ["PL002"]

    def test_fires_on_bare_return_annotation(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import numpy as np\n\n\n"
            "def f(n: int) -> np.ndarray:\n"
            '    """Doc."""\n'
            "    return np.zeros(n)\n",
            select=("PL002",),
        )
        assert codes(found) == ["PL002"]

    def test_silent_on_ndarray_alias(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import numpy as np\nfrom numpy.typing import NDArray\n\n\n"
            "def f(x: NDArray[np.float64]) -> NDArray[np.float64]:\n"
            '    """Doc."""\n'
            "    return x\n",
            select=("PL002",),
        )
        assert found == []

    def test_silent_on_private_function(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import numpy as np\n\n\ndef _helper(x: np.ndarray):\n    return x\n",
            select=("PL002",),
        )
        assert found == []


class TestPL003Units:
    def test_fires_on_ambiguous_parameter(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def resample(series, sample_rate):\n"
            '    """Doc."""\n'
            "    return series\n",
            select=("PL003",),
        )
        assert "PL003" in codes(found)

    def test_fires_on_ambiguous_dataclass_field(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "from dataclasses import dataclass\n\n\n"
            "@dataclass\nclass Config:\n"
            '    """Doc."""\n\n'
            "    rate: float = 1.0\n",
            select=("PL003",),
        )
        assert "PL003" in codes(found)

    def test_silent_with_unit_suffix(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def resample(series, sample_rate_hz, window_duration_s):\n"
            '    """Doc."""\n'
            "    return series\n",
            select=("PL003",),
        )
        assert found == []


class TestPL004FloatEquality:
    def test_fires_on_float_equality(self, tmp_path):
        found = lint_snippet(tmp_path, "ok = 0.1 + 0.2 == 0.3\n", select=("PL004",))
        assert codes(found) == ["PL004"]

    def test_fires_on_float_inequality(self, tmp_path):
        found = lint_snippet(
            tmp_path, "def f(x):\n    return x != 1.5\n", select=("PL004",)
        )
        assert codes(found) == ["PL004"]

    def test_silent_on_isclose(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import math\nok = math.isclose(0.1 + 0.2, 0.3)\n",
            select=("PL004",),
        )
        assert found == []

    def test_silent_on_integer_comparison(self, tmp_path):
        found = lint_snippet(
            tmp_path, "def f(n):\n    return n == 0\n", select=("PL004",)
        )
        assert found == []


class TestPL005MutableDefaults:
    def test_fires_on_list_default(self, tmp_path):
        found = lint_snippet(
            tmp_path, "def f(items=[]):\n    return items\n", select=("PL005",)
        )
        assert codes(found) == ["PL005"]

    def test_fires_on_dict_default(self, tmp_path):
        found = lint_snippet(
            tmp_path, "def f(table={}):\n    return table\n", select=("PL005",)
        )
        assert codes(found) == ["PL005"]

    def test_silent_on_none_default(self, tmp_path):
        found = lint_snippet(
            tmp_path, "def f(items=None):\n    return items\n", select=("PL005",)
        )
        assert found == []


class TestPL006PublicApi:
    def test_fires_on_missing_annotations(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def estimate(series, sample_rate_hz):\n"
            '    """Doc."""\n'
            "    return 0.0\n",
            select=("PL006",),
        )
        assert "PL006" in codes(found)

    def test_fires_on_missing_docstring(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def estimate(series: list, sample_rate_hz: float) -> float:\n"
            "    return 0.0\n",
            select=("PL006",),
        )
        assert "PL006" in codes(found)

    def test_silent_on_complete_public_function(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "def estimate(series: list, sample_rate_hz: float) -> float:\n"
            '    """Estimate the rate."""\n'
            "    return 0.0\n",
            select=("PL006",),
        )
        assert found == []


class TestSuppression:
    def test_line_disable(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "ok = 0.1 == 0.2  # phaselint: disable=PL004 -- deliberate\n",
            select=("PL004",),
        )
        assert found == []

    def test_line_disable_other_rule_still_fires(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "ok = 0.1 == 0.2  # phaselint: disable=PL001\n",
            select=("PL004",),
        )
        assert codes(found) == ["PL004"]

    def test_file_disable(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "# phaselint: disable-file=PL004\nok = 0.1 == 0.2\nbad = 0.3 == 0.4\n",
            select=("PL004",),
        )
        assert found == []


class TestEngine:
    def test_syntax_error_becomes_pl000(self, tmp_path):
        found = lint_snippet(tmp_path, "def broken(:\n")
        assert codes(found) == ["PL000"]

    def test_rule_paths_scope(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "tests").mkdir()
        bad = "import numpy as np\n\n\ndef f(x: np.ndarray):\n    return x\n"
        (tmp_path / "src" / "mod.py").write_text(bad)
        (tmp_path / "tests" / "test_mod.py").write_text(bad)
        config = LintConfig(
            rule_paths={"PL002": (str(tmp_path / "src"),)}, select=("PL002",)
        )
        found = lint_paths([tmp_path], config)
        assert [f.path for f in found] == [str(tmp_path / "src" / "mod.py")]

    def test_findings_sorted_and_located(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "a = 0.1 == 0.2\nimport random\nb = random.random()\n",
            select=("PL001", "PL004"),
        )
        assert [(f.rule, f.line) for f in found] == [
            ("PL001", 3),
            ("PL004", 1),
        ] or [(f.rule, f.line) for f in found] == [("PL004", 1), ("PL001", 3)]
        for f in found:
            assert f.line >= 1 and f.col >= 0 and f.path


class TestConfigLoading:
    def test_load_config_reads_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.phaselint]\n"
            'allow-unseeded = ["scripts/*"]\n'
            "[tool.phaselint.rule-paths]\n"
            'PL006 = ["src/repro"]\n'
        )
        config = load_config(tmp_path)
        assert config.allow_unseeded == ("scripts/*",)
        assert config.rule_paths["PL006"] == ("src/repro",)

    def test_missing_pyproject_gives_defaults(self, tmp_path):
        assert load_config(tmp_path) == LintConfig()


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path / "ok.py"), "--config-root", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one_with_summary(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("ok = 0.1 == 0.2\n")
        assert main([str(tmp_path / "bad.py"), "--config-root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "PL004" in out and "1 finding(s)" in out

    def test_json_output(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("ok = 0.1 == 0.2\n")
        code = main(
            [
                str(tmp_path / "bad.py"),
                "--config-root",
                str(tmp_path),
                "--format",
                "json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "PL004"
        assert set(payload[0]) == {"path", "line", "col", "rule", "message"}

    def test_select_filters_rules(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import random\na = random.random()\nb = 0.1 == 0.2\n"
        )
        code = main(
            [
                str(tmp_path / "bad.py"),
                "--config-root",
                str(tmp_path),
                "--select",
                "PL001",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "PL001" in out and "PL004" not in out

    def test_unknown_rule_code_is_usage_error(self, tmp_path):
        assert main(["--select", "PL999", str(tmp_path)]) == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        assert main([str(tmp_path / "missing_dir")]) == 2

    def test_list_rules_covers_all_shipped(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "PL001", "PL002", "PL003", "PL004", "PL005", "PL006", "PL007",
        ):
            assert code in out


class TestPL007BroadExcept:
    def test_fires_on_bare_except(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "try:\n    x = 1\nexcept:\n    pass\n",
            select=("PL007",),
        )
        assert codes(found) == ["PL007"]

    def test_fires_on_silent_except_exception(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "try:\n    x = 1\nexcept Exception:\n    x = 2\n",
            select=("PL007",),
        )
        assert codes(found) == ["PL007"]

    def test_fires_on_broad_tuple(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "try:\n    x = 1\nexcept (ValueError, Exception):\n    pass\n",
            select=("PL007",),
        )
        assert codes(found) == ["PL007"]

    def test_silent_on_narrow_type(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "try:\n    x = 1\nexcept ValueError:\n    pass\n",
            select=("PL007",),
        )
        assert found == []

    def test_silent_when_reraising_typed_error(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "try:\n    x = 1\n"
            "except Exception as exc:\n"
            "    raise RuntimeError('boom') from exc\n",
            select=("PL007",),
        )
        assert found == []

    def test_silent_when_logging(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "import warnings\n"
            "try:\n    x = 1\n"
            "except Exception:\n"
            "    warnings.warn('degraded')\n",
            select=("PL007",),
        )
        assert found == []

    def test_raise_in_nested_function_does_not_count(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "try:\n    x = 1\n"
            "except Exception:\n"
            "    def fail():\n"
            "        raise RuntimeError('later')\n",
            select=("PL007",),
        )
        assert codes(found) == ["PL007"]

    def test_disable_comment_suppresses(self, tmp_path):
        found = lint_snippet(
            tmp_path,
            "try:\n    x = 1\n"
            "except Exception:  # phaselint: disable=PL007\n"
            "    pass\n",
            select=("PL007",),
        )
        assert found == []


class TestRepoIsClean:
    def test_shipping_tree_has_no_findings(self, monkeypatch):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        # Relative paths, as CI invokes it: [tool.phaselint] scoping and
        # allowlists are expressed relative to the repo root.
        monkeypatch.chdir(root)
        findings = lint_paths(["src", "tests", "benchmarks"], load_config(root))
        assert findings == [], "\n".join(f.format_text() for f in findings)
