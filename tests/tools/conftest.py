"""Make ``tools/phaselint`` importable for its own test suite.

The tier-1 command is ``PYTHONPATH=src python -m pytest``; the linter is
deliberately not part of the installed package, so its tree is appended
here instead of widening PYTHONPATH everywhere.
"""

import sys
from pathlib import Path

_TOOLS = Path(__file__).resolve().parents[2] / "tools"
if str(_TOOLS) not in sys.path:
    sys.path.insert(0, str(_TOOLS))
