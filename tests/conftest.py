"""Shared fixtures: small, cached simulated traces.

Trace simulation is the expensive part of most integration-level tests, so
canonical traces are built once per session.  Tests that need special
parameters build their own short captures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Person, capture_trace, laboratory_scenario
from repro.physio import SinusoidalBreathing, SinusoidalHeartbeat


@pytest.fixture(scope="session")
def lab_person() -> Person:
    """The canonical single subject: 15 bpm breathing, 64.2 bpm heart."""
    return Person(
        position=(2.2, 3.0, 1.0),
        breathing=SinusoidalBreathing(frequency_hz=0.25),
        heartbeat=SinusoidalHeartbeat(frequency_hz=1.07),
    )


@pytest.fixture(scope="session")
def lab_trace(lab_person):
    """30 s laboratory capture at 400 Hz (the paper's default rate)."""
    scenario = laboratory_scenario([lab_person], clutter_seed=1)
    return capture_trace(scenario, duration_s=30.0, seed=1)


@pytest.fixture(scope="session")
def short_lab_trace(lab_person):
    """10 s capture at 200 Hz for cheaper unit-level checks."""
    scenario = laboratory_scenario([lab_person], clutter_seed=2)
    return capture_trace(scenario, duration_s=10.0, sample_rate_hz=200.0, seed=2)


@pytest.fixture(scope="session")
def directional_trace(lab_person):
    """60 s directional-TX capture for heart-rate tests."""
    scenario = laboratory_scenario(
        [lab_person], directional_tx=True, clutter_seed=3
    )
    return capture_trace(scenario, duration_s=60.0, seed=3)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(12345)
