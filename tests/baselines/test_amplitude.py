"""Tests for the CSI-amplitude baseline."""

import numpy as np
import pytest

from repro.baselines.amplitude import AmplitudeMethod, AmplitudeMethodConfig
from repro.errors import ConfigurationError


class TestAmplitudeMethod:
    def test_breathing_estimate_on_lab_trace(self, lab_trace, lab_person):
        method = AmplitudeMethod()
        rate = method.estimate_breathing_bpm(lab_trace)
        assert rate == pytest.approx(lab_person.breathing_rate_bpm, abs=1.0)

    def test_antenna_selection(self, lab_trace, lab_person):
        # A single-antenna amplitude method has no cross-antenna diversity;
        # an unlucky chain can sit at a null point.  Require the majority of
        # chains to produce an accurate rate.
        good = 0
        for antenna in range(lab_trace.n_rx):
            method = AmplitudeMethod(AmplitudeMethodConfig(antenna=antenna))
            rate = method.estimate_breathing_bpm(lab_trace)
            if abs(rate - lab_person.breathing_rate_bpm) < 1.5:
                good += 1
        assert good >= 2

    def test_out_of_range_antenna_rejected(self, short_lab_trace):
        method = AmplitudeMethod(AmplitudeMethodConfig(antenna=5))
        with pytest.raises(ConfigurationError):
            method.estimate_breathing_bpm(short_lab_trace)

    def test_negative_antenna_rejected(self):
        with pytest.raises(ConfigurationError):
            AmplitudeMethodConfig(antenna=-1)

    def test_heart_estimate_on_directional_trace(
        self, directional_trace, lab_person
    ):
        # Best-effort: amplitude heart estimation exists but is noisy; only
        # require it to return something inside the physiological band.
        method = AmplitudeMethod()
        try:
            rate = method.estimate_heart_bpm(directional_trace)
        except Exception:
            pytest.skip("amplitude heart estimation failed on this trace")
        assert 48.0 <= rate <= 120.0

    def test_agc_jitter_hurts_amplitude_more_than_phase(self):
        """The Fig. 11 mechanism: gain jitter hits |CSI|, not Δ∠CSI."""
        from repro.core.pipeline import PhaseBeat, PhaseBeatConfig
        from repro.physio.person import Person
        from repro.rf.hardware import HardwareConfig
        from repro.rf.receiver import capture_trace
        from repro.rf.scene import laboratory_scenario

        person = Person(position=(2.2, 3.0, 1.0), heartbeat=None)
        truth = person.breathing_rate_bpm
        pipeline = PhaseBeat(PhaseBeatConfig(enforce_stationarity=False))
        phase_errors, amplitude_errors = [], []
        for seed in (11, 12, 13, 14):
            scenario = laboratory_scenario([person], clutter_seed=seed)
            heavy_jitter = HardwareConfig(
                noise_sigma=0.004, agc_jitter_sigma=0.12, seed=seed
            )
            trace = capture_trace(
                scenario, duration_s=30.0, seed=seed, hardware=heavy_jitter
            )
            phase_errors.append(
                abs(
                    pipeline.process(
                        trace, estimate_heart=False
                    ).breathing_rates_bpm[0]
                    - truth
                )
            )
            amplitude_errors.append(
                abs(AmplitudeMethod().estimate_breathing_bpm(trace) - truth)
            )
        # Per-trial outcomes are noisy; the advantage is statistical.
        assert np.mean(phase_errors) < 1.0
        assert np.mean(amplitude_errors) >= 0.8 * np.mean(phase_errors)
