"""Tests for the RSS (UbiBreathe-style) baseline."""

import numpy as np
import pytest

from repro.baselines.rss import RSSMethod, RSSMethodConfig, rss_series_db
from repro.errors import ConfigurationError


class TestRSSSeries:
    def test_shape(self, short_lab_trace):
        rss = rss_series_db(short_lab_trace)
        assert rss.shape == (short_lab_trace.n_packets,)

    def test_quantization_applied(self, short_lab_trace):
        rss = rss_series_db(short_lab_trace, quantization_db=1.0)
        assert np.allclose(rss, np.round(rss))

    def test_quantization_disabled(self, short_lab_trace):
        rss = rss_series_db(short_lab_trace, quantization_db=0.0)
        assert not np.allclose(rss, np.round(rss))

    def test_rss_is_coarser_than_csi(self, lab_trace):
        # One scalar per packet versus 90 complex numbers.
        rss = rss_series_db(lab_trace)
        assert rss.ndim == 1


class TestRSSMethod:
    def test_estimates_breathing_when_signal_strong(self):
        """RSS works in the easy regime: strong modulation, no quantization."""
        from repro.physio.breathing import SinusoidalBreathing
        from repro.physio.person import Person
        from repro.rf.receiver import capture_trace
        from repro.rf.scene import laboratory_scenario

        person = Person(
            position=(2.2, 3.0, 1.0),
            breathing=SinusoidalBreathing(frequency_hz=0.25, amplitude_m=8e-3),
            heartbeat=None,
        )
        scenario = laboratory_scenario([person], clutter_seed=13)
        trace = capture_trace(scenario, duration_s=30.0, seed=13)
        method = RSSMethod(RSSMethodConfig(quantization_db=0.0))
        rate = method.estimate_breathing_bpm(trace)
        assert rate == pytest.approx(15.0, abs=1.5)

    def test_quantization_degrades_estimate(self, lab_trace, lab_person):
        fine = RSSMethod(RSSMethodConfig(quantization_db=0.0))
        coarse = RSSMethod(RSSMethodConfig(quantization_db=4.0))
        truth = lab_person.breathing_rate_bpm
        fine_error = abs(fine.estimate_breathing_bpm(lab_trace) - truth)
        coarse_error = abs(coarse.estimate_breathing_bpm(lab_trace) - truth)
        assert coarse_error >= fine_error

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            RSSMethodConfig(quantization_db=-1.0)
        with pytest.raises(ConfigurationError):
            RSSMethodConfig(smooth_window_s=0.0)
