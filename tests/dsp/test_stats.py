"""Unit tests for robust and circular statistics."""

import numpy as np
import pytest

from repro.dsp.stats import (
    MAD_TO_SIGMA,
    angular_sector_width,
    circular_mean,
    circular_resultant_length,
    circular_std,
    circular_variance,
    mean_absolute_deviation,
    median_absolute_deviation,
)


class TestMeanAbsoluteDeviation:
    def test_constant_series_has_zero_mad(self):
        assert mean_absolute_deviation(np.full(100, 3.7)) == 0.0

    def test_known_value(self):
        # mean of [0, 4] is 2; |x - 2| = [2, 2] -> MAD 2.
        assert mean_absolute_deviation(np.array([0.0, 4.0])) == pytest.approx(2.0)

    def test_sine_wave_mad_is_2_over_pi_amplitude(self):
        t = np.linspace(0.0, 1.0, 100_000, endpoint=False)
        x = 3.0 * np.sin(2.0 * np.pi * 5 * t)
        assert mean_absolute_deviation(x) == pytest.approx(
            3.0 * 2.0 / np.pi, rel=1e-3
        )

    def test_axis_reduction(self):
        x = np.array([[0.0, 4.0], [1.0, 1.0]]).T  # columns differ
        out = mean_absolute_deviation(x, axis=0)
        assert out.shape == (2,)
        assert out[0] == pytest.approx(2.0)
        assert out[1] == pytest.approx(0.0)

    def test_translation_invariance(self):
        x = np.array([1.0, 2.0, 5.0, 9.0])
        assert mean_absolute_deviation(x + 100.0) == pytest.approx(
            mean_absolute_deviation(x)
        )


class TestMedianAbsoluteDeviation:
    def test_constant_series(self):
        assert median_absolute_deviation(np.ones(10)) == 0.0

    def test_gaussian_consistency_scale(self):
        rng = np.random.default_rng(0)
        x = rng.normal(scale=2.0, size=200_000)
        sigma_hat = median_absolute_deviation(x, scale=MAD_TO_SIGMA)
        assert sigma_hat == pytest.approx(2.0, rel=0.02)

    def test_robust_to_outliers(self):
        x = np.concatenate([np.zeros(99), [1e9]])
        assert median_absolute_deviation(x) == 0.0


class TestCircularStatistics:
    def test_point_mass_resultant_is_one(self):
        angles = np.full(50, 1.2)
        assert circular_resultant_length(angles) == pytest.approx(1.0)
        assert circular_variance(angles) == pytest.approx(0.0)
        assert circular_std(angles) == pytest.approx(0.0, abs=1e-6)

    def test_uniform_angles_resultant_near_zero(self):
        angles = np.linspace(0, 2 * np.pi, 1000, endpoint=False)
        assert circular_resultant_length(angles) == pytest.approx(0.0, abs=1e-10)
        assert circular_variance(angles) == pytest.approx(1.0, abs=1e-10)

    def test_circular_mean_wraps(self):
        # Angles straddling the ±π seam average to π, not ~0.
        angles = np.array([np.pi - 0.1, -np.pi + 0.1])
        mean = circular_mean(angles)
        assert abs(abs(mean) - np.pi) < 1e-9

    def test_circular_mean_of_empty_raises(self):
        with pytest.raises(ValueError):
            circular_mean(np.array([]))

    def test_circular_std_of_uniform_is_inf(self):
        angles = np.linspace(0, 2 * np.pi, 256, endpoint=False)
        assert circular_std(angles) == float("inf")


class TestAngularSectorWidth:
    def test_tight_cluster(self):
        angles = np.array([1.0, 1.05, 1.1])
        assert angular_sector_width(angles) == pytest.approx(0.1, abs=1e-9)

    def test_cluster_across_seam(self):
        # 20-degree sector straddling the 0/2π seam.
        angles = np.deg2rad(np.array([355.0, 0.0, 5.0, 10.0]))
        width = np.degrees(angular_sector_width(angles))
        assert width == pytest.approx(15.0, abs=1e-6)

    def test_uniform_covers_circle(self):
        angles = np.linspace(0, 2 * np.pi, 360, endpoint=False)
        width = angular_sector_width(angles)
        assert width > 0.99 * 2 * np.pi * (359 / 360)

    def test_partial_coverage_trims_outlier(self):
        angles = np.concatenate([np.full(99, 0.5), [3.0]])
        full = angular_sector_width(angles, coverage=1.0)
        trimmed = angular_sector_width(angles, coverage=0.95)
        assert full == pytest.approx(2.5, abs=1e-9)
        assert trimmed == pytest.approx(0.0, abs=1e-9)

    def test_invalid_coverage_raises(self):
        with pytest.raises(ValueError):
            angular_sector_width(np.array([0.0]), coverage=0.0)
        with pytest.raises(ValueError):
            angular_sector_width(np.array([0.0]), coverage=1.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            angular_sector_width(np.array([]))
