"""Unit tests for cycle-synchronous template subtraction."""

import numpy as np
import pytest

from repro.dsp.fft_utils import magnitude_spectrum
from repro.dsp.template import fold_cycle_template, subtract_cycle_template
from repro.errors import ConfigurationError, SignalTooShortError


def comb_signal(f0, fs, n, harmonics=(1.0, 0.5, 0.3, 0.2)):
    """A fundamental with a strong harmonic comb (the breathing model)."""
    t = np.arange(n) / fs
    return sum(
        a * np.cos(2 * np.pi * (k + 1) * f0 * t + 0.3 * k)
        for k, a in enumerate(harmonics)
    )


class TestFoldCycleTemplate:
    def test_recovers_waveform_shape(self):
        fs, f0 = 20.0, 0.25
        x = comb_signal(f0, fs, 2400)
        phases, template = fold_cycle_template(x, fs, f0, n_bins=40)
        assert phases.shape == template.shape == (40,)
        # The template evaluated at phase φ matches the generating waveform.
        expected = sum(
            a * np.cos(2 * np.pi * (k + 1) * phases + 0.3 * k)
            for k, a in enumerate((1.0, 0.5, 0.3, 0.2))
        )
        assert np.corrcoef(template, expected)[0, 1] > 0.99

    def test_too_few_cycles_raises(self):
        with pytest.raises(SignalTooShortError):
            fold_cycle_template(np.zeros(30), 20.0, 0.25)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fold_cycle_template(np.zeros(100), -1.0, 0.25)
        with pytest.raises(ConfigurationError):
            fold_cycle_template(np.zeros(100), 20.0, 0.25, n_bins=2)


class TestSubtractCycleTemplate:
    def test_removes_fundamental_and_harmonics(self):
        fs, f0 = 20.0, 0.25
        n = 2400
        x = comb_signal(f0, fs, n)
        residual = subtract_cycle_template(x, fs, f0)
        # > 99% of the comb energy must vanish.
        assert np.sum(residual**2) < 0.01 * np.sum(x**2)

    def test_preserves_incommensurate_tone(self):
        fs, f0 = 20.0, 0.25
        n = 2400
        t = np.arange(n) / fs
        heart = 0.1 * np.sin(2 * np.pi * 1.07 * t)
        x = comb_signal(f0, fs, n) + heart
        residual = subtract_cycle_template(x, fs, f0)
        freqs, mag = magnitude_spectrum(residual, fs)
        heart_bin = np.argmin(np.abs(freqs - 1.07))
        # The heart tone dominates the residual spectrum near 1.07 Hz.
        band = (freqs > 0.8) & (freqs < 2.0)
        assert mag[heart_bin] > 0.8 * mag[band].max()
        # And retains most of its energy.
        assert mag[heart_bin] > 0.5 * 0.1 * n / 2 * 0.5

    def test_small_frequency_error_tolerated(self):
        fs, f0 = 20.0, 0.25
        x = comb_signal(f0, fs, 1200)
        residual = subtract_cycle_template(x, fs, f0 * 1.002)
        assert np.sum(residual**2) < 0.15 * np.sum(x**2)

    def test_white_noise_mostly_preserved(self, rng):
        fs = 20.0
        x = rng.normal(size=1200)
        residual = subtract_cycle_template(x, fs, 0.25)
        # Folding averages ~30 samples per bin, so only ~1/30 of noise
        # energy should be removed.
        assert np.sum(residual**2) > 0.85 * np.sum(x**2)
