"""Unit tests for the from-scratch Daubechies DWT."""

import numpy as np
import pytest

from repro.dsp.wavelet import (
    Wavelet,
    coefficient_band,
    daubechies_filter,
    dwt,
    dwt_max_level,
    idwt,
    make_wavelet,
    reconstruct_band,
    wavedec,
    waverec,
)
from repro.errors import ConfigurationError, SignalTooShortError


class TestDaubechiesFilters:
    def test_db1_is_haar(self):
        h = daubechies_filter(1)
        assert np.allclose(h, [1 / np.sqrt(2)] * 2)

    def test_db2_matches_known_coefficients(self):
        h = daubechies_filter(2)
        expected = np.array(
            [1 + np.sqrt(3), 3 + np.sqrt(3), 3 - np.sqrt(3), 1 - np.sqrt(3)]
        ) / (4 * np.sqrt(2))
        assert np.allclose(h, expected, atol=1e-10)

    @pytest.mark.parametrize("order", [1, 2, 3, 4, 6, 8, 10])
    def test_filter_length_is_2n(self, order):
        assert daubechies_filter(order).size == 2 * order

    @pytest.mark.parametrize("order", [1, 2, 4, 8])
    def test_taps_sum_to_sqrt2(self, order):
        assert daubechies_filter(order).sum() == pytest.approx(np.sqrt(2))

    @pytest.mark.parametrize("order", [1, 2, 4, 8])
    def test_double_shift_orthonormality(self, order):
        # Σ h[n] h[n+2k] = δ_k — the conjugate-quadrature property.
        h = daubechies_filter(order)
        for k in range(order):
            inner = np.sum(h[: h.size - 2 * k] * h[2 * k :])
            assert inner == pytest.approx(1.0 if k == 0 else 0.0, abs=1e-10)

    @pytest.mark.parametrize("order", [2, 4, 6])
    def test_vanishing_moments(self, order):
        # The high-pass filter annihilates polynomials up to degree N-1.
        w = make_wavelet(f"db{order}")
        n = np.arange(w.length, dtype=float)
        for degree in range(order):
            assert np.sum(w.dec_hi * n**degree) == pytest.approx(0.0, abs=1e-6)

    def test_out_of_range_order_rejected(self):
        with pytest.raises(ConfigurationError):
            daubechies_filter(0)
        with pytest.raises(ConfigurationError):
            daubechies_filter(13)


class TestMakeWavelet:
    def test_haar_alias(self):
        assert make_wavelet("haar").name == "db1"

    def test_case_insensitive(self):
        assert make_wavelet("DB4").name == "db4"

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            make_wavelet("sym4")

    def test_malformed_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_wavelet("dbx")

    def test_returns_wavelet_instance(self):
        w = make_wavelet("db3")
        assert isinstance(w, Wavelet)
        assert w.length == 6


class TestSingleLevel:
    def test_perfect_reconstruction(self, rng):
        x = rng.normal(size=128)
        for name in ("db1", "db2", "db4", "db8"):
            a, d = dwt(x, name)
            assert a.size == d.size == 64
            assert np.allclose(idwt(a, d, name), x, atol=1e-10)

    def test_energy_preservation(self, rng):
        # Orthogonal transform: ||x||² = ||a||² + ||d||².
        x = rng.normal(size=256)
        a, d = dwt(x, "db4")
        assert np.sum(a**2) + np.sum(d**2) == pytest.approx(np.sum(x**2))

    def test_constant_signal_goes_to_approximation(self):
        x = np.full(64, 5.0)
        a, d = dwt(x, "db4")
        assert np.allclose(d, 0.0, atol=1e-10)
        assert np.allclose(a, 5.0 * np.sqrt(2), atol=1e-10)

    def test_odd_length_rejected(self):
        with pytest.raises(ConfigurationError):
            dwt(np.zeros(65), "db2")

    def test_mismatched_idwt_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            idwt(np.zeros(4), np.zeros(5), "db2")


class TestMultilevel:
    @pytest.mark.parametrize("n", [64, 100, 501, 1200])
    @pytest.mark.parametrize("name", ["db1", "db2", "db4", "db8"])
    def test_perfect_reconstruction(self, n, name, rng):
        x = rng.normal(size=n)
        dec = wavedec(x, name, level=4)
        assert np.allclose(waverec(dec), x, atol=1e-8)

    def test_level_and_shapes(self, rng):
        x = rng.normal(size=160)
        dec = wavedec(x, "db2", level=3)
        assert dec.level == 3
        assert dec.detail(1).size == 80
        assert dec.detail(2).size == 40
        assert dec.detail(3).size == 20
        assert dec.approx.size == 20

    def test_detail_level_out_of_range(self, rng):
        dec = wavedec(rng.normal(size=64), "db2", level=2)
        with pytest.raises(ConfigurationError):
            dec.detail(3)
        with pytest.raises(ConfigurationError):
            dec.detail(0)

    def test_too_short_signal_rejected(self):
        with pytest.raises(SignalTooShortError):
            wavedec(np.zeros(8), "db4", level=4)

    def test_bad_level_rejected(self):
        with pytest.raises(ConfigurationError):
            wavedec(np.zeros(64), "db4", level=0)


class TestBandReconstruction:
    def test_low_tone_lands_in_approximation(self):
        fs = 20.0
        t = np.arange(1200) / fs
        x = np.sin(2 * np.pi * 0.3 * t)
        dec = wavedec(x, "db4", level=4)
        approx_only = reconstruct_band(dec, keep_approx=True)
        detail_34 = reconstruct_band(dec, keep_details=(3, 4))
        total = np.sum(x**2)
        assert np.sum(approx_only**2) / total > 0.95
        assert np.sum(detail_34**2) / total < 0.05

    def test_heart_tone_lands_in_detail_34(self):
        fs = 20.0
        t = np.arange(1200) / fs
        x = np.sin(2 * np.pi * 1.2 * t)
        dec = wavedec(x, "db4", level=4)
        detail_34 = reconstruct_band(dec, keep_details=(3, 4))
        assert np.sum(detail_34**2) / np.sum(x**2) > 0.9

    def test_band_reconstructions_sum_to_signal(self, rng):
        x = rng.normal(size=256)
        dec = wavedec(x, "db4", level=4)
        total = reconstruct_band(dec, keep_approx=True, keep_details=(1, 2, 3, 4))
        assert np.allclose(total, x, atol=1e-8)

    def test_invalid_detail_level_rejected(self, rng):
        dec = wavedec(rng.normal(size=64), "db2", level=2)
        with pytest.raises(ConfigurationError):
            reconstruct_band(dec, keep_details=(3,))


class TestHelpers:
    def test_dwt_max_level(self):
        assert dwt_max_level(1000, "db4") == int(np.floor(np.log2(1000 / 7)))
        assert dwt_max_level(4, "db4") == 0

    def test_coefficient_band_paper_values(self):
        # 20 Hz, L = 4: α₄ covers 0–0.625 Hz, β₃ 1.25–2.5, β₄ 0.625–1.25.
        assert coefficient_band(20.0, 4, is_approx=True) == (0.0, 0.625)
        assert coefficient_band(20.0, 4, is_approx=False) == (0.625, 1.25)
        assert coefficient_band(20.0, 3, is_approx=False) == (1.25, 2.5)

    def test_coefficient_band_validation(self):
        with pytest.raises(ConfigurationError):
            coefficient_band(-1.0, 4, is_approx=True)
        with pytest.raises(ConfigurationError):
            coefficient_band(20.0, 0, is_approx=False)
