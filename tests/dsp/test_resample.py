"""Unit tests for decimation."""

import numpy as np
import pytest

from repro.dsp.resample import decimate, downsampled_rate
from repro.errors import ConfigurationError


class TestDecimate:
    def test_paper_factor_20(self):
        x = np.arange(10_000.0)
        out = decimate(x, 20)
        assert out.size == 500
        assert out[0] == 0.0
        assert out[1] == 20.0

    def test_factor_one_is_copy(self):
        x = np.arange(10.0)
        out = decimate(x, 1)
        assert np.array_equal(out, x)
        out[0] = 99.0
        assert x[0] == 0.0

    def test_axis_selection(self):
        x = np.arange(40.0).reshape(20, 2)
        out = decimate(x, 5, axis=0)
        assert out.shape == (4, 2)

    def test_anti_alias_attenuates_high_tone(self):
        fs = 400.0
        t = np.arange(8000) / fs
        # 71 Hz aliases to 9 Hz after plain 20× slicing (new Nyquist 10 Hz).
        high = np.sin(2 * np.pi * 71.0 * t)
        raw = decimate(high, 20)
        filtered = decimate(high, 20, anti_alias=True)
        assert np.std(raw) > 0.5  # the alias is real without the filter
        assert np.std(filtered) < 0.2 * np.std(raw)

    def test_bad_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            decimate(np.zeros(10), 0)

    def test_signal_shorter_than_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            decimate(np.zeros(5), 10)


class TestDownsampledRate:
    def test_paper_rates(self):
        assert downsampled_rate(400.0, 20) == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            downsampled_rate(0.0, 2)
        with pytest.raises(ConfigurationError):
            downsampled_rate(100.0, 0)
