"""Unit tests for decimation and gap-aware reclocking."""

import numpy as np
import pytest

from repro.dsp.resample import decimate, downsampled_rate, reclock
from repro.errors import ConfigurationError, DataGapError, SignalTooShortError


class TestDecimate:
    def test_paper_factor_20(self):
        x = np.arange(10_000.0)
        out = decimate(x, 20)
        assert out.size == 500
        assert out[0] == 0.0
        assert out[1] == 20.0

    def test_factor_one_is_copy(self):
        x = np.arange(10.0)
        out = decimate(x, 1)
        assert np.array_equal(out, x)
        out[0] = 99.0
        assert x[0] == 0.0

    def test_axis_selection(self):
        x = np.arange(40.0).reshape(20, 2)
        out = decimate(x, 5, axis=0)
        assert out.shape == (4, 2)

    def test_anti_alias_attenuates_high_tone(self):
        fs = 400.0
        t = np.arange(8000) / fs
        # 71 Hz aliases to 9 Hz after plain 20× slicing (new Nyquist 10 Hz).
        high = np.sin(2 * np.pi * 71.0 * t)
        raw = decimate(high, 20)
        filtered = decimate(high, 20, anti_alias=True)
        assert np.std(raw) > 0.5  # the alias is real without the filter
        assert np.std(filtered) < 0.2 * np.std(raw)

    def test_bad_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            decimate(np.zeros(10), 0)

    def test_signal_shorter_than_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            decimate(np.zeros(5), 10)


class TestReclock:
    def test_uniform_input_is_preserved(self):
        fs = 100.0
        t = np.arange(500) / fs
        x = np.sin(2 * np.pi * 0.3 * t)
        out = reclock(x, t, fs)
        assert out.sample_rate_hz == fs
        assert out.n_dropped == 0
        assert not out.gap_mask.any()
        assert np.allclose(out.series, x, atol=1e-12)

    def test_recovers_tone_from_lossy_sampling(self):
        # A 0.25 Hz tone sampled at 100 Hz with 30% of samples missing:
        # reclocking onto the uniform grid must reproduce the tone, while
        # pretending the survivors were uniform (index-as-time) warps it.
        rng = np.random.default_rng(7)
        fs = 100.0
        t_full = np.arange(3000) / fs
        keep = rng.random(3000) > 0.3
        keep[[0, -1]] = True
        t = t_full[keep]
        x = np.sin(2 * np.pi * 0.25 * t)
        out = reclock(x, t, fs)
        truth = np.sin(2 * np.pi * 0.25 * out.times_s)
        assert np.abs(out.series - truth).max() < 0.01

    def test_2d_columns_reclocked_together(self):
        fs = 50.0
        t = np.sort(np.random.default_rng(1).uniform(0, 10, 300))
        x = np.stack([t, 2 * t], axis=1)
        out = reclock(x, t, fs)
        assert out.series.shape == (out.times_s.size, 2)
        assert np.allclose(out.series[:, 1], 2 * out.series[:, 0])

    def test_gap_flagging(self):
        fs = 100.0
        t = np.concatenate([np.arange(100), np.arange(200, 300)]) / fs
        out = reclock(np.ones_like(t), t, fs)
        # The 1 s hole is interpolated but flagged.
        assert out.gap_mask.sum() == pytest.approx(100, abs=3)

    def test_gap_budget_enforced(self):
        fs = 100.0
        t = np.concatenate([np.arange(100), np.arange(200, 300)]) / fs
        with pytest.raises(DataGapError) as excinfo:
            reclock(np.ones_like(t), t, fs, max_gap_s=0.5)
        assert excinfo.value.gap_s == pytest.approx(1.01, abs=0.02)

    def test_drops_backward_and_nan_stamps(self):
        fs = 100.0
        t = np.arange(200) / fs
        t[50] = np.nan
        t[120] = t[119] - 0.5  # backward glitch
        x = np.ones_like(t)
        out = reclock(x, t, fs)
        assert out.n_dropped == 2
        assert np.all(np.isfinite(out.series))

    def test_too_short_rejected(self):
        with pytest.raises(SignalTooShortError):
            reclock(np.ones(1), np.zeros(1), 100.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            reclock(np.ones(10), np.arange(10.0), 0.0)
        with pytest.raises(ConfigurationError):
            reclock(np.ones(10), np.arange(5.0), 100.0)


class TestDownsampledRate:
    def test_paper_rates(self):
        assert downsampled_rate(400.0, 20) == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            downsampled_rate(0.0, 2)
        with pytest.raises(ConfigurationError):
            downsampled_rate(100.0, 0)
