"""Unit tests for detrending helpers."""

import numpy as np

from repro.dsp.detrend import hampel_denoise, hampel_detrend, remove_dc


class TestRemoveDc:
    def test_zero_mean_output(self):
        rng = np.random.default_rng(0)
        x = rng.normal(loc=5.0, size=1000)
        out = remove_dc(x)
        assert abs(out.mean()) < 1e-12

    def test_axis_selection(self):
        x = np.array([[1.0, 10.0], [3.0, 30.0]])
        out = remove_dc(x, axis=0)
        assert np.allclose(out.mean(axis=0), 0.0)
        assert not np.allclose(out.mean(axis=1), 0.0)

    def test_preserves_oscillation(self):
        t = np.arange(400) / 20.0
        x = 2.0 + np.sin(2 * np.pi * 0.25 * t)
        out = remove_dc(x)
        assert np.corrcoef(out, np.sin(2 * np.pi * 0.25 * t))[0, 1] > 0.999


class TestHampelDetrend:
    def test_removes_slow_ramp(self):
        t = np.arange(8000) / 400.0
        signal = 0.3 * np.sin(2 * np.pi * 0.25 * t)
        ramp = 0.2 * t
        out = hampel_detrend(signal + ramp, window=2000)
        interior = slice(1000, -1000)
        # The ramp is gone; the oscillation survives.
        assert abs(np.polyfit(t[interior], out[interior], 1)[0]) < 0.02
        assert np.corrcoef(out[interior], signal[interior])[0, 1] > 0.9

    def test_keeps_breathing_band_energy(self):
        t = np.arange(8000) / 400.0
        signal = np.sin(2 * np.pi * 0.25 * t)
        out = hampel_detrend(signal + 3.0, window=2000)
        interior = slice(1000, -1000)
        retained = np.sum(out[interior] ** 2) / np.sum(signal[interior] ** 2)
        assert retained > 0.5


class TestHampelDenoise:
    def test_suppresses_impulses(self):
        t = np.arange(2000) / 400.0
        clean = np.sin(2 * np.pi * 0.25 * t)
        dirty = clean.copy()
        dirty[97::97] += 5.0  # sparse impulses (interior — the replicated
        # edge padding lets a spike at sample 0 survive, by construction)
        out = hampel_denoise(dirty, window=50)
        interior = slice(50, -50)
        assert np.max(np.abs(out[interior] - clean[interior])) < 0.5

    def test_narrowband_signal_survives(self):
        t = np.arange(2000) / 400.0
        clean = np.sin(2 * np.pi * 0.25 * t)
        out = hampel_denoise(clean, window=50)
        assert np.corrcoef(out, clean)[0, 1] > 0.999
