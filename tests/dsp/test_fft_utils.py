"""Unit tests for spectrum helpers and frequency refinement."""

import numpy as np
import pytest

from repro.dsp.fft_utils import (
    band_mask,
    dominant_frequency,
    magnitude_spectrum,
    quadratic_peak_interpolation,
    spectral_peaks,
    three_bin_phase_frequency,
)
from repro.errors import ConfigurationError, EstimationError, SignalTooShortError


def tone(freq, fs, n, amp=1.0, phase=0.0):
    t = np.arange(n) / fs
    return amp * np.sin(2 * np.pi * freq * t + phase)


class TestMagnitudeSpectrum:
    def test_shapes(self):
        freqs, mag = magnitude_spectrum(tone(1.0, 20.0, 200), 20.0)
        assert freqs.shape == mag.shape == (101,)
        assert freqs[0] == 0.0
        assert freqs[-1] == pytest.approx(10.0)

    def test_tone_peaks_at_right_bin(self):
        freqs, mag = magnitude_spectrum(tone(2.0, 20.0, 400), 20.0)
        assert freqs[np.argmax(mag)] == pytest.approx(2.0)

    def test_detrend_removes_dc(self):
        x = tone(2.0, 20.0, 400) + 100.0
        _, mag = magnitude_spectrum(x, 20.0, detrend=True)
        assert mag[0] == pytest.approx(0.0, abs=1e-6)

    def test_zero_padding(self):
        freqs, _ = magnitude_spectrum(tone(1.0, 20.0, 100), 20.0, nfft=1000)
        assert freqs.size == 501

    def test_nfft_shorter_than_signal_rejected(self):
        with pytest.raises(ConfigurationError):
            magnitude_spectrum(np.zeros(100), 20.0, nfft=50)

    def test_too_short_rejected(self):
        with pytest.raises(SignalTooShortError):
            magnitude_spectrum(np.zeros(1), 20.0)


class TestBandMask:
    def test_none_selects_everything(self):
        freqs = np.linspace(0, 10, 11)
        assert band_mask(freqs, None).all()

    def test_inclusive_bounds(self):
        freqs = np.array([0.0, 1.0, 2.0, 3.0])
        mask = band_mask(freqs, (1.0, 2.0))
        assert mask.tolist() == [False, True, True, False]

    def test_invalid_band_rejected(self):
        with pytest.raises(ConfigurationError):
            band_mask(np.array([1.0]), (2.0, 1.0))


class TestDominantFrequency:
    def test_exact_bin(self):
        f = dominant_frequency(tone(2.0, 20.0, 400), 20.0)
        assert f == pytest.approx(2.0, abs=1e-6)

    def test_off_bin_interpolation(self):
        # 0.273 Hz falls between bins for a 30 s window; interpolation
        # must land within a tenth of the bin width.
        f = dominant_frequency(tone(0.273, 20.0, 600), 20.0, band=(0.1, 0.7))
        assert f == pytest.approx(0.273, abs=0.01)

    def test_band_restriction_skips_stronger_out_of_band_tone(self):
        x = tone(0.25, 20.0, 600) + 5.0 * tone(3.0, 20.0, 600)
        f = dominant_frequency(x, 20.0, band=(0.1, 0.7))
        assert f == pytest.approx(0.25, abs=0.01)

    def test_empty_band_raises(self):
        with pytest.raises(EstimationError):
            dominant_frequency(tone(1.0, 20.0, 100), 20.0, band=(9.99, 9.995))


class TestQuadraticInterpolation:
    def test_symmetric_peak_gives_zero_offset(self):
        assert quadratic_peak_interpolation(1.0, 2.0, 1.0) == 0.0

    def test_skewed_peak_shifts_toward_larger_neighbor(self):
        assert quadratic_peak_interpolation(1.0, 2.0, 1.5) > 0
        assert quadratic_peak_interpolation(1.5, 2.0, 1.0) < 0

    def test_flat_triple_returns_zero(self):
        assert quadratic_peak_interpolation(2.0, 2.0, 2.0) == 0.0

    def test_offset_clipped_to_half_bin(self):
        assert abs(quadratic_peak_interpolation(0.0, 1.0, 1.0 - 1e-12)) <= 0.5


class TestThreeBinPhaseFrequency:
    def test_beats_bin_resolution(self):
        fs, n = 20.0, 600  # bin width 1/30 s = 0.033 Hz
        true_f = 1.071
        f = three_bin_phase_frequency(tone(true_f, fs, n), fs, band=(0.625, 2.5))
        assert f == pytest.approx(true_f, abs=0.005)

    def test_with_noise(self, rng):
        fs, n = 20.0, 1200
        x = tone(1.07, fs, n) + 0.2 * rng.normal(size=n)
        f = three_bin_phase_frequency(x, fs, band=(0.625, 2.5))
        assert f == pytest.approx(1.07, abs=0.02)

    def test_too_short_rejected(self):
        with pytest.raises(SignalTooShortError):
            three_bin_phase_frequency(np.zeros(4), 20.0, band=(0.5, 2.0))

    def test_empty_band_rejected(self):
        with pytest.raises(EstimationError):
            three_bin_phase_frequency(
                tone(1.0, 20.0, 100), 20.0, band=(9.99, 9.999)
            )


class TestSpectralPeaks:
    def test_finds_two_separated_tones(self):
        x = tone(0.2, 20.0, 1200) + tone(0.3, 20.0, 1200)
        peaks = spectral_peaks(x, 20.0, 2, band=(0.1, 0.7))
        assert peaks.size == 2
        assert peaks[0] == pytest.approx(0.2, abs=0.01)
        assert peaks[1] == pytest.approx(0.3, abs=0.01)

    def test_rayleigh_limited_merge(self):
        # Two tones 0.02 Hz apart over a 25 s window (resolution 0.04 Hz)
        # appear as one peak — the Fig. 8 failure mode.
        fs, n = 20.0, 500
        x = tone(0.22, fs, n) + tone(0.24, fs, n)
        peaks = spectral_peaks(x, fs, 2, band=(0.1, 0.7))
        assert peaks.size < 2 or abs(peaks[1] - peaks[0]) > 0.05

    def test_min_separation_merges_close_candidates(self):
        x = tone(0.2, 20.0, 2400) + tone(0.22, 20.0, 2400)
        unconstrained = spectral_peaks(x, 20.0, 2, band=(0.1, 0.7))
        constrained = spectral_peaks(
            x, 20.0, 2, band=(0.1, 0.7), min_separation_hz=0.05
        )
        assert unconstrained.size == 2
        assert constrained.size == 1 or (constrained[1] - constrained[0]) >= 0.05

    def test_count_validation(self):
        with pytest.raises(ConfigurationError):
            spectral_peaks(np.zeros(100), 20.0, 0)

    def test_returns_sorted(self):
        x = 2 * tone(0.4, 20.0, 1200) + tone(0.2, 20.0, 1200)
        peaks = spectral_peaks(x, 20.0, 2, band=(0.1, 0.7))
        assert np.all(np.diff(peaks) > 0)
