"""Unit tests for Hampel filtering and trend extraction."""

import numpy as np
import pytest

from repro.dsp.hampel import hampel_filter, hampel_trend, rolling_mad, rolling_median
from repro.errors import ConfigurationError


class TestRollingMedian:
    def test_constant_input_unchanged(self):
        x = np.full(50, 2.5)
        assert np.allclose(rolling_median(x, 5), x)

    def test_median_of_step(self):
        x = np.concatenate([np.zeros(10), np.ones(10)])
        out = rolling_median(x, 3)
        # Away from the step the median tracks the level exactly.
        assert np.all(out[:8] == 0.0)
        assert np.all(out[-8:] == 1.0)

    def test_window_longer_than_signal_is_clipped(self):
        x = np.arange(5.0)
        out = rolling_median(x, 100)
        assert out.shape == x.shape

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            rolling_median(np.zeros((3, 3)), 3)

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            rolling_median(np.zeros(10), 0)


class TestRollingMad:
    def test_constant_has_zero_mad(self):
        assert np.allclose(rolling_mad(np.full(30, 7.0), 5), 0.0)

    def test_positive_for_varying_signal(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=200)
        mad = rolling_mad(x, 21)
        assert np.all(mad[10:-10] > 0)


class TestHampelFilter:
    def test_replaces_isolated_spike(self):
        x = np.zeros(101)
        x[50] = 100.0
        out = hampel_filter(x, 11, threshold=3.0)
        assert out[50] == 0.0
        assert np.allclose(out, 0.0)

    def test_preserves_clean_signal_with_large_threshold(self):
        # A smooth sine stays essentially intact: any replaced sample is
        # replaced by a local median that is itself close to the signal.
        t = np.arange(400) / 20.0
        x = np.sin(2 * np.pi * 0.25 * t)
        out = hampel_filter(x, 11, threshold=50.0)
        assert np.allclose(out, x, atol=0.05)

    def test_tiny_threshold_degenerates_to_rolling_median(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=300)
        out = hampel_filter(x, 25, threshold=0.01)
        med = rolling_median(x, 25)
        # With threshold 0.01 essentially every sample is replaced.
        assert np.mean(out == med) > 0.95

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            hampel_filter(np.zeros(10), 3, threshold=-1.0)

    def test_output_is_copy(self):
        x = np.ones(20)
        out = hampel_filter(x, 5, 1.0)
        out[0] = 99.0
        assert x[0] == 1.0


class TestHampelTrend:
    def test_recovers_slow_trend_under_fast_oscillation(self):
        t = np.arange(4000) / 400.0
        trend = 0.5 * t  # slow ramp
        x = trend + 0.3 * np.sin(2 * np.pi * 2.0 * t)
        estimated = hampel_trend(x, window=801)
        # Away from the edges the trend estimate tracks the ramp.
        interior = slice(500, -500)
        assert np.max(np.abs(estimated[interior] - trend[interior])) < 0.2

    def test_detrending_removes_dc(self):
        t = np.arange(4000) / 400.0
        x = 5.0 + np.sin(2 * np.pi * 0.25 * t)
        detrended = x - hampel_trend(x, window=2001)
        assert abs(np.mean(detrended[400:-400])) < 0.1
