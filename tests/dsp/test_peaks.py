"""Unit tests for sliding-window peak detection."""

import numpy as np
import pytest

from repro.dsp.peaks import (
    find_peaks,
    mean_peak_interval,
    peak_rate_bpm,
    robust_peak_interval,
)
from repro.errors import ConfigurationError, EstimationError


def breathing_like(freq=0.25, fs=20.0, n=1200, noise=0.0, rng=None):
    t = np.arange(n) / fs
    x = np.sin(2 * np.pi * freq * t)
    if noise and rng is not None:
        x = x + noise * rng.normal(size=n)
    return x


class TestFindPeaks:
    def test_clean_sine_peak_count(self):
        # 60 s at 0.25 Hz → 15 cycles → 14 or 15 detected peaks.
        peaks = find_peaks(breathing_like(), window=51)
        assert 13 <= peaks.size <= 16

    def test_peak_positions_near_crests(self):
        fs, f = 20.0, 0.25
        peaks = find_peaks(breathing_like(f, fs), window=51)
        t_peaks = peaks / fs
        # Crests of sin at t = (0.25 + k) / f.
        expected_phase = np.mod(t_peaks * f, 1.0)
        assert np.all(np.abs(expected_phase - 0.25) < 0.05)

    def test_fake_peak_rejected_by_window(self):
        # A small ripple riding a big slow wave: the dominance window must
        # keep only the slow crests.
        fs = 20.0
        t = np.arange(1200) / fs
        x = np.sin(2 * np.pi * 0.2 * t) + 0.1 * np.sin(2 * np.pi * 1.3 * t)
        peaks = find_peaks(x, window=51)
        intervals = np.diff(peaks) / fs
        assert np.all(intervals > 3.0)  # 0.2 Hz → 5 s spacing

    def test_min_prominence_suppresses_flat_noise(self, rng):
        x = 0.01 * rng.normal(size=400)
        with_prominence = find_peaks(x, window=51, min_prominence=1.0)
        assert with_prominence.size == 0

    def test_short_signal_returns_empty(self):
        assert find_peaks(np.array([1.0, 2.0]), window=5).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            find_peaks(np.zeros((10, 2)))

    def test_rejects_tiny_window(self):
        with pytest.raises(ConfigurationError):
            find_peaks(np.zeros(100), window=2)

    def test_plateau_keeps_single_peak(self):
        x = np.zeros(100)
        x[40:45] = 1.0  # flat-topped crest
        peaks = find_peaks(x, window=21)
        assert peaks.size == 1


class TestIntervals:
    def test_mean_interval_of_clean_sine(self):
        fs, f = 20.0, 0.25
        peaks = find_peaks(breathing_like(f, fs), window=51)
        assert mean_peak_interval(peaks, fs) == pytest.approx(4.0, abs=0.1)

    def test_rate_bpm(self):
        fs, f = 20.0, 0.25
        peaks = find_peaks(breathing_like(f, fs), window=51)
        assert peak_rate_bpm(peaks, fs) == pytest.approx(15.0, abs=0.3)

    def test_single_peak_raises(self):
        with pytest.raises(EstimationError):
            mean_peak_interval(np.array([5]), 20.0)

    def test_bad_sample_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_peak_interval(np.array([1, 2]), 0.0)


class TestRobustInterval:
    def test_matches_mean_on_clean_peaks(self):
        peaks = np.array([0, 80, 160, 240, 320])
        assert robust_peak_interval(peaks, 20.0) == pytest.approx(
            mean_peak_interval(peaks, 20.0)
        )

    def test_trims_one_fake_peak(self):
        # Clean spacing of 80 samples plus one fake peak splitting an
        # interval into 20 + 60.
        peaks = np.array([0, 80, 160, 180, 240, 320, 400])
        period = robust_peak_interval(peaks, 20.0)
        assert period == pytest.approx(80 / 20.0, abs=0.3)

    def test_trims_one_missed_peak(self):
        # One interval doubled by a missed peak.
        peaks = np.array([0, 80, 160, 320, 400, 480])
        period = robust_peak_interval(peaks, 20.0)
        assert period == pytest.approx(4.0, abs=0.2)

    def test_all_trimmed_falls_back_to_full_mean(self):
        # Pathological spacing where the trim band around the median is
        # empty must not crash.
        peaks = np.array([0, 10, 200, 210])
        assert robust_peak_interval(peaks, 20.0) > 0

    def test_fewer_than_two_peaks_raises(self):
        with pytest.raises(EstimationError):
            robust_peak_interval(np.array([3]), 20.0)
