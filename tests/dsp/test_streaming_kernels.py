"""Streaming-kernel exactness: trailing medians, cycle unwrap, sliding DFT.

The incremental monitor's correctness argument rests on two bitwise claims
pinned here against naive reference implementations:

* trailing (causal) order statistics are frozen once computed, so blockwise
  incremental evaluation — and rebuilding from a buffered suffix — equals a
  from-scratch pass exactly;
* the integer cycle counter of ``cycle_unwrap`` is exactly associative, so
  blockwise unwrapping equals a single pass bitwise.

Float-tolerance claims (sliding DFT vs a fresh rFFT) are tested against the
1e-9 equivalence budget used throughout the streaming suite.
"""

import numpy as np
import pytest

from repro.dsp.fft_utils import (
    batched_magnitude_spectrum,
    magnitude_spectrum,
    rfft_plan,
)
from repro.dsp.hampel import hampel_filter, rolling_median
from repro.dsp.stats import MAD_TO_SIGMA
from repro.dsp.streaming_kernels import (
    CycleUnwrapper,
    RollingHampel,
    RollingMedian,
    SlidingDFT,
    StreamingCalibrator,
    TrailingHampelState,
    batched_hampel_filter,
    batched_rolling_median,
    cycle_unwrap,
    trailing_calibrate,
    trailing_hampel,
    trailing_mad,
    trailing_median,
    trailing_window_samples,
)
from repro.errors import ConfigurationError


def naive_trailing_median(x, window):
    """Reference: rank ``window // 2`` statistic of ``[i - w + 1, i]``,
    negative indices replicated with ``x[0]`` (scipy's ``mode='nearest'``)."""
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    for i in range(x.size):
        lo = i - window + 1
        pad = np.full(max(0, -lo), x[0])
        win = np.concatenate([pad, x[max(0, lo) : i + 1]])
        out[i] = np.sort(win)[window // 2]
    return out


def tied_series(rng, n=120):
    """A series with many exact ties — the regime where median conventions
    (rank choice, even-window averaging) diverge if mismatched."""
    return rng.integers(0, 5, size=n) / 4.0


class TestTrailingMedian:
    @pytest.mark.parametrize("window", [1, 2, 3, 4, 5, 10, 50, 51])
    def test_matches_naive_reference_bitwise(self, rng, window):
        x = rng.normal(size=120)
        np.testing.assert_array_equal(
            trailing_median(x, window), naive_trailing_median(x, window)
        )

    @pytest.mark.parametrize("window", [2, 3, 4, 7])
    def test_ties_and_even_windows(self, rng, window):
        x = tied_series(rng)
        np.testing.assert_array_equal(
            trailing_median(x, window), naive_trailing_median(x, window)
        )

    def test_window_longer_than_series(self, rng):
        x = rng.normal(size=8)
        np.testing.assert_array_equal(
            trailing_median(x, 20), naive_trailing_median(x, 20)
        )

    def test_2d_filters_each_column_independently(self, rng):
        x = rng.normal(size=(60, 4))
        out = trailing_median(x, 9)
        for col in range(4):
            np.testing.assert_array_equal(out[:, col], trailing_median(x[:, col], 9))

    def test_causality_extending_never_changes_past_outputs(self, rng):
        x = rng.normal(size=100)
        full = trailing_median(x, 11)
        np.testing.assert_array_equal(trailing_median(x[:60], 11), full[:60])

    def test_rejects_bad_inputs(self, rng):
        with pytest.raises(ConfigurationError):
            trailing_median(rng.normal(size=(2, 2, 2)), 3)
        with pytest.raises(ConfigurationError):
            trailing_median(rng.normal(size=10), 0)


class TestTrailingMadAndHampel:
    def test_mad_is_median_of_deviations(self, rng):
        x = rng.normal(size=80)
        med = trailing_median(x, 7)
        np.testing.assert_array_equal(
            trailing_mad(x, 7), trailing_median(np.abs(x - med), 7)
        )

    def test_mad_median_reuse_is_bitwise_neutral(self, rng):
        x = rng.normal(size=80)
        med = trailing_median(x, 7)
        np.testing.assert_array_equal(
            trailing_mad(x, 7), trailing_mad(x, 7, median=med)
        )

    def test_hampel_applies_outlier_rule_about_trailing_stats(self, rng):
        x = rng.normal(size=90)
        x[40] += 25.0  # a spike the small threshold must replace
        out = trailing_hampel(x, 9, 0.01)
        med = trailing_median(x, 9)
        mad = trailing_median(np.abs(x - med), 9)
        outlier = np.abs(x - med) > 0.01 * MAD_TO_SIGMA * mad
        assert outlier[40]
        np.testing.assert_array_equal(out[outlier], med[outlier])
        np.testing.assert_array_equal(out[~outlier], x[~outlier])

    def test_rejects_negative_threshold(self, rng):
        with pytest.raises(ConfigurationError):
            trailing_hampel(rng.normal(size=10), 3, -1.0)


class TestRollingStructures:
    @pytest.mark.parametrize("window", [1, 2, 3, 4, 9, 16])
    def test_rolling_median_matches_vectorized_kernel(self, rng, window):
        x = np.concatenate([rng.normal(size=60), tied_series(rng, 60)])
        roller = RollingMedian(window)
        streamed = np.array([roller.push(v) for v in x])
        np.testing.assert_array_equal(streamed, trailing_median(x, window))

    def test_rolling_median_reset_forgets_history(self, rng):
        x = rng.normal(size=30)
        roller = RollingMedian(5)
        for v in x:
            roller.push(v)
        roller.reset()
        streamed = np.array([roller.push(v) for v in x])
        np.testing.assert_array_equal(streamed, trailing_median(x, 5))

    @pytest.mark.parametrize("window", [3, 8])
    def test_rolling_hampel_matches_trailing_hampel(self, rng, window):
        x = rng.normal(size=100)
        x[::17] += 10.0
        roller = RollingHampel(window, 0.01)
        streamed = np.array([roller.push(v) for v in x])
        np.testing.assert_array_equal(streamed, trailing_hampel(x, window, 0.01))

    def test_structure_validation(self):
        with pytest.raises(ConfigurationError):
            RollingMedian(0)
        with pytest.raises(ConfigurationError):
            RollingHampel(5, -0.1)


class TestBatchedCenteredKernels:
    def test_batched_rolling_median_matches_per_column(self, rng):
        matrix = rng.normal(size=(64, 5))
        out = batched_rolling_median(matrix, 9)
        for col in range(5):
            np.testing.assert_array_equal(
                out[:, col], rolling_median(matrix[:, col], 9)
            )

    def test_batched_hampel_matches_per_column_loop(self, rng):
        matrix = rng.normal(size=(64, 5))
        matrix[10, 2] += 30.0
        out = batched_hampel_filter(matrix, 11, 0.01)
        for col in range(5):
            np.testing.assert_array_equal(
                out[:, col], hampel_filter(matrix[:, col], 11, 0.01)
            )

    def test_window_clamped_to_series_length_like_1d_filter(self, rng):
        matrix = rng.normal(size=(6, 3))
        out = batched_hampel_filter(matrix, 50, 0.01)
        for col in range(3):
            np.testing.assert_array_equal(
                out[:, col], hampel_filter(matrix[:, col], 50, 0.01)
            )

    def test_1d_input_treated_as_single_column(self, rng):
        x = rng.normal(size=40)
        out = batched_hampel_filter(x, 7, 0.01)
        assert out.shape == (40, 1)
        np.testing.assert_array_equal(out[:, 0], hampel_filter(x, 7, 0.01))


class TestCycleUnwrap:
    def wrapped_walk(self, rng, shape):
        steps = rng.normal(scale=0.7, size=shape)
        phase = np.cumsum(steps, axis=0)
        return np.angle(np.exp(1j * phase)), phase

    def test_matches_np_unwrap_to_float_rounding(self, rng):
        wrapped, _ = self.wrapped_walk(rng, (400,))
        unwrapped, cycles = cycle_unwrap(wrapped)
        assert cycles.dtype == np.int64
        np.testing.assert_allclose(
            unwrapped, np.unwrap(wrapped), rtol=0, atol=1e-9
        )

    def test_blockwise_continuation_is_bitwise_exact(self, rng):
        wrapped, _ = self.wrapped_walk(rng, (300, 4))
        full, full_cycles = cycle_unwrap(wrapped)
        pieces, cycles_pieces = [], []
        prev_angle, prev_cycles = None, None
        for block in np.array_split(wrapped, [1, 7, 64, 65, 200], axis=0):
            if block.shape[0] == 0:
                continue
            if prev_angle is None:
                u, c = cycle_unwrap(block)
            else:
                u, c = cycle_unwrap(
                    block, prev_angle=prev_angle, prev_cycles=prev_cycles
                )
            pieces.append(u)
            cycles_pieces.append(c)
            prev_angle, prev_cycles = block[-1], c[-1]
        np.testing.assert_array_equal(np.concatenate(pieces), full)
        np.testing.assert_array_equal(np.concatenate(cycles_pieces), full_cycles)

    def test_stateful_wrapper_matches_single_pass(self, rng):
        wrapped, _ = self.wrapped_walk(rng, (250, 3))
        unwrapper = CycleUnwrapper()
        blocks = [
            unwrapper.extend(b)
            for b in np.array_split(wrapped, [40, 41, 150], axis=0)
        ]
        full, _ = cycle_unwrap(wrapped)
        np.testing.assert_array_equal(np.concatenate(blocks), full)

    def test_empty_block_is_a_noop(self, rng):
        wrapped, _ = self.wrapped_walk(rng, (50, 2))
        unwrapper = CycleUnwrapper()
        unwrapper.extend(wrapped[:20])
        out = unwrapper.extend(wrapped[:0])
        assert out.shape == (0, 2)
        full, _ = cycle_unwrap(wrapped)
        np.testing.assert_array_equal(unwrapper.extend(wrapped[20:]), full[20:])


class TestSlidingDFT:
    def test_full_window_matches_direct_rfft(self, rng):
        n = 64
        x = rng.normal(size=3 * n)
        sdft = SlidingDFT(n, resync_every=0)
        for v in x[:-1]:
            sdft.push(v)
        spectrum = sdft.push(x[-1])
        np.testing.assert_allclose(
            spectrum, np.fft.rfft(x[-n:]), rtol=0, atol=1e-9
        )

    def test_block_extend_replacing_window_is_exact(self, rng):
        n = 32
        sdft = SlidingDFT(n)
        x = rng.normal(size=100)
        spectrum = sdft.extend(x)
        np.testing.assert_array_equal(spectrum, np.fft.rfft(x[-n:]))

    def test_partial_window_equals_zero_padded_rfft(self, rng):
        n = 16
        sdft = SlidingDFT(n, resync_every=0)
        x = rng.normal(size=5)
        for v in x:
            spectrum = sdft.push(v)
        padded = np.concatenate([np.zeros(n - 5), x])
        np.testing.assert_allclose(spectrum, np.fft.rfft(padded), atol=1e-9)

    def test_tracked_bin_subset(self, rng):
        n = 64
        bins = np.array([2, 3, 4])
        sdft = SlidingDFT(n, bins=bins, resync_every=0)
        x = rng.normal(size=n)
        spectrum = sdft.extend(x)
        np.testing.assert_allclose(spectrum, np.fft.rfft(x)[bins], atol=1e-9)

    def test_resync_bounds_drift(self, rng):
        n = 16
        sdft = SlidingDFT(n, resync_every=8)
        x = rng.normal(size=200)
        for v in x:
            spectrum = sdft.push(v)
        np.testing.assert_allclose(spectrum, np.fft.rfft(x[-n:]), atol=1e-9)

    def test_window_contents_oldest_first(self, rng):
        sdft = SlidingDFT(4, resync_every=0)
        for v in [1.0, 2.0, 3.0, 4.0, 5.0]:
            sdft.push(v)
        np.testing.assert_array_equal(
            sdft.window_contents(), [2.0, 3.0, 4.0, 5.0]
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlidingDFT(1)
        with pytest.raises(ConfigurationError):
            SlidingDFT(8, bins=np.array([], dtype=int))
        with pytest.raises(ConfigurationError):
            SlidingDFT(8, bins=np.array([5]))  # > n // 2
        with pytest.raises(ConfigurationError):
            SlidingDFT(8, resync_every=-1)


class TestRfftPlan:
    def test_cached_instance_is_reused(self):
        assert rfft_plan(256, 20.0) is rfft_plan(256, 20.0)

    def test_grid_matches_numpy_and_is_frozen(self):
        plan = rfft_plan(100, 50.0)
        np.testing.assert_array_equal(
            plan.freqs_hz, np.fft.rfftfreq(100, d=1.0 / 50.0)
        )
        assert plan.n_bins == 51
        assert plan.bin_width_hz == pytest.approx(0.5)
        with pytest.raises(ValueError):
            plan.freqs_hz[0] = 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            rfft_plan(0, 20.0)
        with pytest.raises(ConfigurationError):
            rfft_plan(64, 0.0)


class TestBatchedSpectrum:
    # The batched rFFT takes a different (vectorized) FFT code path than the
    # 1-D transform, so per-column agreement is to float rounding, not
    # bitwise — well inside the suite's 1e-9 budget either way.
    def test_matches_per_column_magnitude_spectrum(self, rng):
        matrix = rng.normal(size=(128, 4))
        freqs, mags = batched_magnitude_spectrum(matrix, 20.0)
        for col in range(4):
            f_col, m_col = magnitude_spectrum(matrix[:, col], 20.0)
            np.testing.assert_array_equal(freqs, f_col)
            np.testing.assert_allclose(mags[:, col], m_col, rtol=0, atol=1e-9)

    def test_zero_padding_matches(self, rng):
        matrix = rng.normal(size=(100, 3))
        freqs, mags = batched_magnitude_spectrum(matrix, 20.0, nfft=256)
        f0, m0 = magnitude_spectrum(matrix[:, 0], 20.0, nfft=256)
        np.testing.assert_array_equal(freqs, f0)
        np.testing.assert_allclose(mags[:, 0], m0, rtol=0, atol=1e-9)


def wrapped_phase_matrix(rng, n, n_series):
    """Wrapped phase differences with realistic slow drift + oscillation."""
    t = np.arange(n) / 100.0
    drift = np.cumsum(rng.normal(scale=0.05, size=(n, n_series)), axis=0)
    tone = 1.5 * np.sin(2 * np.pi * 0.3 * t)[:, None]
    return np.angle(np.exp(1j * (drift + tone)))


class TestTrailingHampelState:
    @pytest.mark.parametrize("splits", [[7], [1, 2, 3], [50], [10, 10, 10, 10]])
    def test_blocked_extends_match_full_pass_bitwise(self, rng, splits):
        x = wrapped_phase_matrix(rng, 90, 3)
        state = TrailingHampelState(11, 0.01)
        blocks = [
            state.extend(b)
            for b in np.array_split(x, np.cumsum(splits), axis=0)
            if b.shape[0]
        ]
        np.testing.assert_array_equal(
            np.concatenate(blocks), trailing_hampel(x, 11, 0.01)
        )

    def test_window_longer_than_first_block(self, rng):
        x = rng.normal(size=(40, 2))
        state = TrailingHampelState(25, 0.01)
        out = np.concatenate([state.extend(x[:5]), state.extend(x[5:])])
        np.testing.assert_array_equal(out, trailing_hampel(x, 25, 0.01))

    def test_empty_block_is_a_noop(self, rng):
        x = rng.normal(size=(30, 2))
        state = TrailingHampelState(7, 0.01)
        first = state.extend(x[:15])
        assert state.extend(x[:0]).shape == (0, 2)
        out = np.concatenate([first, state.extend(x[15:])])
        np.testing.assert_array_equal(out, trailing_hampel(x, 7, 0.01))

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            TrailingHampelState(0, 0.01)
        with pytest.raises(ConfigurationError):
            TrailingHampelState(5, -1.0)
        with pytest.raises(ConfigurationError):
            TrailingHampelState(5, 0.01).extend(rng.normal(size=10))


class TestTrailingWindowSamples:
    def test_matches_batch_formula(self):
        assert trailing_window_samples(5.0, 400.0) == 2000
        assert trailing_window_samples(0.125, 400.0) == 50
        assert trailing_window_samples(0.001, 400.0) == 3  # floor of 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            trailing_window_samples(0.0, 400.0)
        with pytest.raises(ConfigurationError):
            trailing_window_samples(1.0, 0.0)


# Short windows keep the reference fast: trend 1 s / noise 0.1 s at 100 Hz
# gives trend_w=100, noise_w=10, rebuild context 2*99 + 2*9 = 216 rows.
CAL_KW = dict(trend_window_s=1.0, noise_window_s=0.1, hampel_threshold=0.01)


class TestTrailingCalibrate:
    def test_decimation_grid_anchored_at_row_zero(self, rng):
        wrapped = wrapped_phase_matrix(rng, 400, 3)
        ref = trailing_calibrate(wrapped, 100.0, **CAL_KW)
        dec = trailing_calibrate(wrapped, 100.0, decimation_factor=5, **CAL_KW)
        np.testing.assert_array_equal(dec.series, ref.predecimation_series[::5])
        np.testing.assert_array_equal(dec.predecimation_series, ref.predecimation_series)
        assert dec.sample_rate_hz == pytest.approx(20.0)

    def test_unwrap_uses_integer_cycles(self, rng):
        wrapped = wrapped_phase_matrix(rng, 300, 2)
        ref = trailing_calibrate(wrapped, 100.0, **CAL_KW)
        np.testing.assert_array_equal(
            ref.unwrapped, wrapped + 2.0 * np.pi * ref.cycles
        )
        np.testing.assert_array_equal(ref.cycles[0], np.zeros(2, dtype=np.int64))

    def test_initial_cycles_shift_whole_series_by_whole_turns(self, rng):
        wrapped = wrapped_phase_matrix(rng, 200, 2)
        base = np.array([3, -2], dtype=np.int64)
        ref = trailing_calibrate(wrapped, 100.0, **CAL_KW)
        shifted = trailing_calibrate(wrapped, 100.0, initial_cycles=base, **CAL_KW)
        np.testing.assert_array_equal(shifted.cycles, ref.cycles + base)

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            trailing_calibrate(rng.normal(size=50), 100.0)
        with pytest.raises(ConfigurationError):
            trailing_calibrate(np.empty((0, 2)), 100.0)
        with pytest.raises(ConfigurationError):
            trailing_calibrate(rng.normal(size=(50, 2)), 100.0, decimation_factor=0)
        with pytest.raises(ConfigurationError):
            # Denoise window not shorter than the trend window.
            trailing_calibrate(
                rng.normal(size=(50, 2)), 100.0,
                trend_window_s=0.1, noise_window_s=1.0,
            )


class TestStreamingCalibrator:
    def make_engine(self, n_series, factor=1, initial_cycles=None):
        return StreamingCalibrator(
            100.0,
            n_series,
            decimation_factor=factor,
            initial_cycles=initial_cycles,
            **CAL_KW,
        )

    @pytest.mark.parametrize("splits", [[123], [1, 5, 50], [30, 30, 30, 30]])
    def test_blocked_extends_match_stateless_reference_bitwise(self, rng, splits):
        wrapped = wrapped_phase_matrix(rng, 400, 3)
        ref = trailing_calibrate(wrapped, 100.0, **CAL_KW)
        engine = self.make_engine(3)
        for block in np.array_split(wrapped, np.cumsum(splits), axis=0):
            engine.extend(block)
        assert engine.n_rows == 400
        np.testing.assert_array_equal(engine.unwrapped_window(0), ref.unwrapped)
        np.testing.assert_array_equal(
            engine.calibrated_window(0), ref.predecimation_series
        )
        np.testing.assert_array_equal(engine.base_cycles, ref.cycles[0])

    def test_decimated_window_keeps_grid_phase_across_eviction(self, rng):
        wrapped = wrapped_phase_matrix(rng, 400, 2)
        ref = trailing_calibrate(wrapped, 100.0, decimation_factor=5, **CAL_KW)
        engine = self.make_engine(2, factor=5)
        engine.extend(wrapped)
        np.testing.assert_array_equal(engine.calibrated_window(0), ref.series)
        engine.evict(50)
        # Rows kept after eviction are absolute rows 50, 55, ... — the same
        # grid, just starting later.
        np.testing.assert_array_equal(engine.calibrated_window(0), ref.series[10:])
        np.testing.assert_array_equal(
            engine.base_cycles, ref.cycles[50]
        )
        # start_row rounds up to the next grid row.
        np.testing.assert_array_equal(
            engine.calibrated_window(3), engine.calibrated_window(5)
        )

    def test_eviction_must_respect_decimation_quantum(self, rng):
        engine = self.make_engine(2, factor=5)
        engine.extend(wrapped_phase_matrix(rng, 100, 2))
        with pytest.raises(ConfigurationError):
            engine.evict(7)
        engine.evict(0)  # no-op
        assert engine.n_rows == 100

    def test_rebuild_from_suffix_exact_past_context(self, rng):
        wrapped = wrapped_phase_matrix(rng, 500, 2)
        engine = self.make_engine(2)
        engine.extend(wrapped)
        start = 150
        context = engine.rebuild_context_samples
        assert context == 2 * 99 + 2 * 9
        ref = trailing_calibrate(wrapped, 100.0, **CAL_KW)
        rebuilt = self.make_engine(2, initial_cycles=ref.cycles[start])
        rebuilt.extend(wrapped[start:])
        # Cycles and unwrapped values are exact everywhere (integer anchor);
        # the Hampel cascade is exact once its windows stop reaching past
        # the suffix start.
        np.testing.assert_array_equal(
            rebuilt.unwrapped_window(0), engine.unwrapped_window(start)
        )
        np.testing.assert_array_equal(
            rebuilt.calibrated_window(0)[context:],
            engine.calibrated_window(start + context),
        )

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            self.make_engine(0)
        with pytest.raises(ConfigurationError):
            self.make_engine(2, factor=0)
        with pytest.raises(ConfigurationError):
            StreamingCalibrator(
                100.0, 2, trend_window_s=0.1, noise_window_s=1.0
            )
        engine = self.make_engine(2)
        with pytest.raises(ConfigurationError):
            engine.extend(rng.normal(size=(10, 3)))  # wrong width
        engine.extend(np.empty((0, 2)))  # empty extend is a no-op
        assert engine.n_rows == 0
