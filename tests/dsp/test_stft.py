"""Unit tests for the STFT module."""

import numpy as np
import pytest

from repro.dsp.stft import stft_bandpass, stft_spectrogram, track_rate
from repro.errors import ConfigurationError, SignalTooShortError


def chirp_like(f_start, f_end, fs, duration):
    """A tone whose frequency ramps linearly from f_start to f_end."""
    t = np.arange(int(duration * fs)) / fs
    freq = np.linspace(f_start, f_end, t.size)
    phase = 2 * np.pi * np.cumsum(freq) / fs
    return t, np.sin(phase)


class TestSpectrogram:
    def test_shapes_and_axes(self):
        fs = 20.0
        x = np.sin(2 * np.pi * 0.3 * np.arange(1200) / fs)
        spec = stft_spectrogram(x, fs, window_s=20.0, hop_s=5.0)
        assert spec.magnitude.shape == (spec.freqs_hz.size, spec.n_frames)
        assert spec.times_s[0] == pytest.approx(10.0)
        assert np.all(np.diff(spec.times_s) == pytest.approx(5.0))

    def test_stationary_tone_peaks_at_right_bin(self):
        fs = 20.0
        x = np.sin(2 * np.pi * 0.3 * np.arange(2400) / fs)
        spec = stft_spectrogram(x, fs, window_s=30.0, hop_s=10.0)
        for frame in range(spec.n_frames):
            peak = spec.freqs_hz[np.argmax(spec.magnitude[:, frame])]
            assert peak == pytest.approx(0.3, abs=0.05)

    def test_too_short_rejected(self):
        with pytest.raises(SignalTooShortError):
            stft_spectrogram(np.zeros(10), 20.0, window_s=30.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            stft_spectrogram(np.zeros((10, 2)), 20.0)
        with pytest.raises(ConfigurationError):
            stft_spectrogram(np.zeros(1000), 20.0, window_s=0.0)


class TestBandpass:
    def test_passes_in_band_tone(self):
        fs = 20.0
        t = np.arange(1200) / fs
        x = np.sin(2 * np.pi * 1.2 * t)
        out = stft_bandpass(x, fs, (0.8, 2.0))
        # Interior energy survives (edges taper).
        interior = slice(200, -200)
        ratio = np.sum(out[interior] ** 2) / np.sum(x[interior] ** 2)
        assert ratio > 0.8

    def test_rejects_out_of_band_tone(self):
        fs = 20.0
        t = np.arange(1200) / fs
        x = np.sin(2 * np.pi * 0.25 * t)
        out = stft_bandpass(x, fs, (0.8, 2.0))
        assert np.sum(out**2) < 0.05 * np.sum(x**2)

    def test_separates_mixture(self):
        fs = 20.0
        t = np.arange(2400) / fs
        breath = np.sin(2 * np.pi * 0.25 * t)
        heart = 0.2 * np.sin(2 * np.pi * 1.3 * t)
        out = stft_bandpass(breath + heart, fs, (0.8, 2.0))
        interior = slice(200, -200)
        corr = np.corrcoef(out[interior], heart[interior])[0, 1]
        assert corr > 0.95

    def test_length_preserved(self):
        x = np.random.default_rng(0).normal(size=777)
        out = stft_bandpass(x, 20.0, (0.5, 2.0), window_s=6.4)
        assert out.size == 777


class TestTrackRate:
    def test_constant_rate(self):
        fs = 20.0
        x = np.sin(2 * np.pi * 0.3 * np.arange(2400) / fs)
        times, rates = track_rate(x, fs, (0.1, 0.7))
        assert np.allclose(rates, 0.3, atol=0.04)

    def test_follows_rate_change(self):
        fs = 20.0
        _, x = chirp_like(0.2, 0.4, fs, 240.0)
        times, rates = track_rate(x, fs, (0.1, 0.7), window_s=30.0, hop_s=10.0)
        # The ridge rises from ~0.2 toward ~0.4 Hz.
        assert rates[0] < 0.27
        assert rates[-1] > 0.33
        assert np.all(np.diff(rates) > -0.06)

    def test_continuity_constraint_suppresses_jumps(self):
        fs = 20.0
        t = np.arange(2400) / fs
        x = np.sin(2 * np.pi * 0.25 * t)
        # A strong interferer appears briefly at 0.55 Hz.
        burst = (t > 60) & (t < 70)
        x = x + 3.0 * burst * np.sin(2 * np.pi * 0.55 * t)
        _, free = track_rate(x, fs, (0.1, 0.7), hop_s=5.0)
        _, constrained = track_rate(
            x, fs, (0.1, 0.7), hop_s=5.0, max_step_hz=0.05
        )
        assert free.max() > 0.5  # the unconstrained ridge jumps
        assert constrained.max() < 0.35  # the constrained one does not

    def test_empty_band_rejected(self):
        x = np.zeros(1200)
        with pytest.raises(ConfigurationError):
            track_rate(x, 20.0, (0.7, 0.1))
