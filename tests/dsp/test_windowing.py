"""Unit tests for sliding-window helpers."""

import numpy as np
import pytest

from repro.dsp.windowing import centered_window_bounds, segment_indices, sliding_view


class TestSlidingView:
    def test_shape_and_content(self):
        view = sliding_view(np.arange(5.0), 3)
        assert view.shape == (3, 3)
        assert np.allclose(view[0], [0, 1, 2])
        assert np.allclose(view[-1], [2, 3, 4])

    def test_rejects_window_longer_than_signal(self):
        with pytest.raises(ValueError):
            sliding_view(np.arange(3.0), 5)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            sliding_view(np.zeros((3, 3)), 2)


class TestSegmentIndices:
    def test_non_overlapping(self):
        segments = list(segment_indices(10, 4, 4))
        assert segments == [(0, 4), (4, 8)]

    def test_overlapping(self):
        segments = list(segment_indices(8, 4, 2))
        assert segments == [(0, 4), (2, 6), (4, 8)]

    def test_trailing_partial_dropped(self):
        segments = list(segment_indices(9, 4, 4))
        assert segments == [(0, 4), (4, 8)]

    def test_empty_when_too_short(self):
        assert list(segment_indices(3, 4, 1)) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            list(segment_indices(10, 0, 1))
        with pytest.raises(ValueError):
            list(segment_indices(10, 4, 0))


class TestCenteredWindowBounds:
    def test_interior(self):
        assert centered_window_bounds(10, 3, 100) == (7, 14)

    def test_left_edge_clipped(self):
        assert centered_window_bounds(1, 5, 100) == (0, 7)

    def test_right_edge_clipped(self):
        assert centered_window_bounds(98, 5, 100) == (93, 100)

    def test_empty_signal_rejected(self):
        with pytest.raises(ValueError):
            centered_window_bounds(0, 1, 0)
