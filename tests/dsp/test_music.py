"""Unit tests for root-MUSIC frequency estimation."""

import numpy as np
import pytest

from repro.dsp.music import (
    estimate_frequencies,
    forward_backward_average,
    hankel_snapshots,
    noise_subspace,
    root_music_frequencies,
    sample_covariance,
)
from repro.errors import ConfigurationError, SignalTooShortError


def tones(freqs, fs, n, amps=None, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n) / fs
    amps = amps or [1.0] * len(freqs)
    x = sum(
        a * np.sin(2 * np.pi * f * t + rng.uniform(0, 2 * np.pi))
        for a, f in zip(amps, freqs)
    )
    return x + noise * rng.normal(size=n)


class TestHankelSnapshots:
    def test_shape(self):
        snaps = hankel_snapshots(np.arange(10.0), 4)
        assert snaps.shape == (4, 7)

    def test_content(self):
        snaps = hankel_snapshots(np.arange(6.0), 3)
        assert np.allclose(snaps[:, 0], [0, 1, 2])
        assert np.allclose(snaps[:, 3], [3, 4, 5])

    def test_too_short_raises(self):
        with pytest.raises(SignalTooShortError):
            hankel_snapshots(np.zeros(4), 4)

    def test_bad_order_raises(self):
        with pytest.raises(ConfigurationError):
            hankel_snapshots(np.zeros(10), 1)


class TestCovariance:
    def test_hermitian(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=100) + 1j * rng.normal(size=100)
        cov = sample_covariance(x, 8)
        assert np.allclose(cov, cov.conj().T)

    def test_multi_channel_averages(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(200, 5))
        cov = sample_covariance(x, 6)
        assert cov.shape == (6, 6)

    def test_forward_backward_persymmetric(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=100) + 1j * rng.normal(size=100)
        cov = forward_backward_average(sample_covariance(x, 6))
        exchange = np.eye(6)[::-1]
        assert np.allclose(cov, exchange @ cov.conj() @ exchange)

    def test_forward_backward_rejects_nonsquare(self):
        with pytest.raises(ConfigurationError):
            forward_backward_average(np.zeros((3, 4)))


class TestNoiseSubspace:
    def test_dimensions(self):
        cov = np.eye(8, dtype=complex)
        en = noise_subspace(cov, 3)
        assert en.shape == (8, 5)

    def test_orthogonal_to_signal_steering(self):
        # Single complex exponential: the noise subspace must be orthogonal
        # to its steering vector.
        fs, f, m = 10.0, 1.3, 8
        n = 200
        t = np.arange(n) / fs
        z = np.exp(2j * np.pi * f * t)
        cov = sample_covariance(z, m) + 1e-6 * np.eye(m)
        en = noise_subspace(cov, 1)
        steering = np.exp(2j * np.pi * f * np.arange(m) / fs)
        projection = np.linalg.norm(en.conj().T @ steering)
        assert projection < 1e-3 * np.linalg.norm(steering)

    def test_invalid_source_count(self):
        cov = np.eye(4, dtype=complex)
        with pytest.raises(ConfigurationError):
            noise_subspace(cov, 0)
        with pytest.raises(ConfigurationError):
            noise_subspace(cov, 4)


class TestRootMusic:
    def test_single_tone(self):
        fs = 10.0
        t = np.arange(500) / fs
        z = np.exp(2j * np.pi * 1.7 * t)
        cov = forward_backward_average(sample_covariance(z, 12))
        freqs = root_music_frequencies(cov, 1, fs)
        assert freqs[0] == pytest.approx(1.7, abs=0.01)

    def test_band_restriction(self):
        fs = 10.0
        t = np.arange(500) / fs
        z = np.exp(2j * np.pi * 1.0 * t) + np.exp(2j * np.pi * 3.0 * t)
        cov = forward_backward_average(sample_covariance(z, 16))
        freqs = root_music_frequencies(cov, 1, fs, band=(2.0, 4.0))
        assert freqs[0] == pytest.approx(3.0, abs=0.05)

    def test_invalid_band(self):
        cov = np.eye(6, dtype=complex)
        with pytest.raises(ConfigurationError):
            root_music_frequencies(cov, 1, 10.0, band=(3.0, 1.0))


class TestEstimateFrequencies:
    def test_single_real_tone(self):
        x = tones([0.25], 20.0, 1200, noise=0.05)
        f = estimate_frequencies(x, 1, 20.0, band=(0.1, 0.7))
        assert f[0] == pytest.approx(0.25, abs=0.01)

    def test_resolves_close_pair_beyond_fft(self):
        # 0.025 Hz apart over 60 s — at the FFT Rayleigh limit; root-MUSIC
        # with decimation resolves them cleanly.
        x = tones([0.2233, 0.2483], 20.0, 1200, noise=0.02)
        f = estimate_frequencies(x, 2, 20.0, band=(0.1, 0.7), decimation=10)
        assert f[0] == pytest.approx(0.2233, abs=0.008)
        assert f[1] == pytest.approx(0.2483, abs=0.008)

    def test_three_paper_rates(self):
        x = tones([0.1467, 0.2233, 0.2483], 20.0, 2400, noise=0.05)
        f = estimate_frequencies(x, 3, 20.0, band=(0.08, 0.7), decimation=10)
        assert np.allclose(f, [0.1467, 0.2233, 0.2483], atol=0.01)

    def test_multichannel_improves_on_single(self):
        rng = np.random.default_rng(7)
        t = np.arange(900) / 20.0
        base = np.sin(2 * np.pi * 0.21 * t) + np.sin(2 * np.pi * 0.26 * t)
        channels = np.stack(
            [base + 0.4 * rng.normal(size=t.size) for _ in range(10)], axis=1
        )
        f = estimate_frequencies(channels, 2, 20.0, band=(0.1, 0.7), decimation=5)
        assert f[0] == pytest.approx(0.21, abs=0.02)
        assert f[1] == pytest.approx(0.26, abs=0.02)

    def test_harmonic_suppression(self):
        # Strong tone + its second harmonic: asking for 2 sources must not
        # return the harmonic (it is a mixing product, not a person).
        x = tones([0.2, 0.31], 20.0, 2400, amps=[1.0, 0.5], noise=0.01)
        x = x + 0.6 * np.sin(2 * np.pi * 0.4 * np.arange(2400) / 20.0 + 0.3)
        f = estimate_frequencies(x, 2, 20.0, band=(0.1, 0.7), decimation=10)
        assert f[0] == pytest.approx(0.2, abs=0.01)
        assert f[1] == pytest.approx(0.31, abs=0.01)

    def test_decimation_of_real_input_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_frequencies(
                np.zeros(100), 1, 20.0, analytic=False, decimation=5
            )

    def test_order_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_frequencies(np.zeros(100), 3, 20.0, order=4)
