"""Property-based tests for the DWT (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dsp.wavelet import dwt, idwt, reconstruct_band, wavedec, waverec

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def signal_strategy(min_size=16, max_size=300):
    return arrays(
        dtype=np.float64,
        shape=st.integers(min_value=min_size, max_value=max_size),
        elements=finite_floats,
    )


@given(x=signal_strategy(), order=st.sampled_from([1, 2, 4, 6]))
@settings(max_examples=60, deadline=None)
def test_multilevel_perfect_reconstruction(x, order):
    """waverec(wavedec(x)) == x for any signal, wavelet, and padding."""
    level = min(3, int(np.log2(max(x.size, 8))) - 1)
    level = max(level, 1)
    dec = wavedec(x, f"db{order}", level=level)
    rec = waverec(dec)
    scale = max(1.0, np.max(np.abs(x)))
    assert np.allclose(rec, x, atol=1e-7 * scale)


@given(
    x=arrays(
        dtype=np.float64,
        shape=st.integers(min_value=8, max_value=128).map(lambda n: 2 * n),
        elements=finite_floats,
    ),
    order=st.sampled_from([1, 2, 4]),
)
@settings(max_examples=60, deadline=None)
def test_single_level_energy_preservation(x, order):
    """Orthogonality: ||x||² = ||a||² + ||d||²."""
    a, d = dwt(x, f"db{order}")
    lhs = np.sum(x.astype(np.longdouble) ** 2)
    rhs = np.sum(a.astype(np.longdouble) ** 2) + np.sum(
        d.astype(np.longdouble) ** 2
    )
    assert np.isclose(float(lhs), float(rhs), rtol=1e-6, atol=1e-6)


@given(
    x=arrays(
        dtype=np.float64,
        shape=st.integers(min_value=8, max_value=100).map(lambda n: 2 * n),
        elements=finite_floats,
    ),
    scale=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_linearity(x, scale):
    """DWT(c·x) == c·DWT(x)."""
    a1, d1 = dwt(x, "db4")
    a2, d2 = dwt(scale * x, "db4")
    tol = 1e-8 * max(1.0, abs(scale)) * max(1.0, np.max(np.abs(x)))
    assert np.allclose(a2, scale * a1, atol=tol)
    assert np.allclose(d2, scale * d1, atol=tol)


@given(x=signal_strategy(min_size=32, max_size=256))
@settings(max_examples=40, deadline=None)
def test_band_reconstructions_partition_signal(x):
    """Approx-band + all detail bands == original signal."""
    dec = wavedec(x, "db2", level=2)
    total = reconstruct_band(dec, keep_approx=True) + sum(
        reconstruct_band(dec, keep_details=(lv,)) for lv in (1, 2)
    )
    scale = max(1.0, np.max(np.abs(x)))
    assert np.allclose(total, x, atol=1e-7 * scale)


@given(
    x=arrays(
        dtype=np.float64,
        shape=st.just(64),
        elements=finite_floats,
    )
)
@settings(max_examples=40, deadline=None)
def test_idwt_dwt_identity(x):
    """dwt → idwt is the identity, in both orders of composition."""
    a, d = dwt(x, "db2")
    assert np.allclose(
        idwt(a, d, "db2"), x, atol=1e-8 * max(1.0, np.max(np.abs(x)))
    )
