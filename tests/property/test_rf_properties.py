"""Property-based tests for the RF substrate's physical invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rf.channel import simulate_clean_csi
from repro.rf.constants import INTEL5300_SUBCARRIER_INDICES, subcarrier_frequencies
from repro.rf.hardware import HardwareConfig, HardwareErrorModel
from repro.rf.multipath import StaticRay

FREQS = subcarrier_frequencies()

amplitudes = st.floats(min_value=0.01, max_value=10.0, allow_nan=False)
delays = st.floats(min_value=1e-9, max_value=200e-9, allow_nan=False)


def ray(amplitude, delay):
    return StaticRay(
        amplitudes=np.full(3, amplitude), delays_s=np.full(3, delay)
    )


@given(a1=amplitudes, d1=delays, a2=amplitudes, d2=delays)
@settings(max_examples=50, deadline=None)
def test_channel_superposition(a1, d1, a2, d2):
    """CSI of two rays equals the sum of each ray's CSI (Eq. 2 linearity)."""
    times = np.arange(4) / 400.0
    both = simulate_clean_csi([ray(a1, d1), ray(a2, d2)], [], times, FREQS, n_rx=3)
    separate = simulate_clean_csi(
        [ray(a1, d1)], [], times, FREQS, n_rx=3
    ) + simulate_clean_csi([ray(a2, d2)], [], times, FREQS, n_rx=3)
    assert np.allclose(both, separate, rtol=1e-10, atol=1e-12)


@given(a=amplitudes, d=delays, scale=st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=50, deadline=None)
def test_channel_amplitude_homogeneity(a, d, scale):
    """Scaling a ray's amplitude scales the CSI linearly."""
    times = np.arange(3) / 400.0
    base = simulate_clean_csi([ray(a, d)], [], times, FREQS, n_rx=3)
    scaled = simulate_clean_csi([ray(a * scale, d)], [], times, FREQS, n_rx=3)
    assert np.allclose(scaled, scale * base, rtol=1e-10)


@given(a=amplitudes, d=delays)
@settings(max_examples=50, deadline=None)
def test_channel_magnitude_equals_ray_amplitude(a, d):
    """A single ray's CSI has |CSI| equal to its amplitude at every bin."""
    times = np.arange(2) / 400.0
    csi = simulate_clean_csi([ray(a, d)], [], times, FREQS, n_rx=3)
    assert np.allclose(np.abs(csi), a, rtol=1e-12)


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_packets=st.integers(min_value=2, max_value=200),
)
@settings(max_examples=30, deadline=None)
def test_phase_difference_invariant_to_common_errors(seed, n_packets):
    """Theorem 1 as a property: with β and noise off, the cross-antenna
    phase difference of ANY hardware realization is packet-invariant."""
    config = HardwareConfig(
        noise_sigma=0.0,
        agc_jitter_sigma=0.0,
        pll_offsets_rad=(0.0, 0.0, 0.0),
        seed=seed,
    )
    clean = np.full((n_packets, 3, 30), 0.8 - 0.3j, dtype=complex)
    measured = HardwareErrorModel(config).apply(
        clean, 1 / 400.0, INTEL5300_SUBCARRIER_INDICES
    )
    diff = np.angle(measured[:, 0, :] * np.conj(measured[:, 1, :]))
    assert np.max(np.std(diff, axis=0)) < 1e-9


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    sigma=st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
)
@settings(max_examples=30, deadline=None)
def test_agc_never_touches_phase(seed, sigma):
    """AGC gain is real-positive: it can never rotate the CSI phase."""
    config = HardwareConfig(
        noise_sigma=0.0, agc_jitter_sigma=sigma, seed=seed
    )
    clean = np.full((50, 3, 30), 1.0 + 1.0j, dtype=complex)
    measured = HardwareErrorModel(config).apply(
        clean, 1 / 400.0, INTEL5300_SUBCARRIER_INDICES
    )
    no_agc = HardwareErrorModel(
        HardwareConfig(noise_sigma=0.0, agc_jitter_sigma=0.0, seed=seed)
    ).apply(clean, 1 / 400.0, INTEL5300_SUBCARRIER_INDICES)
    assert np.allclose(np.angle(measured), np.angle(no_agc), atol=1e-12)
