"""Property-based tests for the statistics module."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dsp.stats import (
    angular_sector_width,
    circular_resultant_length,
    mean_absolute_deviation,
    median_absolute_deviation,
)

values = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
samples = arrays(
    dtype=np.float64, shape=st.integers(min_value=1, max_value=200), elements=values
)
angles = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=200),
    elements=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
)


@given(x=samples)
@settings(max_examples=100, deadline=None)
def test_mad_nonnegative(x):
    assert mean_absolute_deviation(x) >= 0.0


@given(x=samples, shift=values)
@settings(max_examples=100, deadline=None)
def test_mad_translation_invariant(x, shift):
    a = mean_absolute_deviation(x)
    b = mean_absolute_deviation(x + shift)
    assert np.isclose(a, b, rtol=1e-6, atol=1e-6 * max(1.0, abs(shift)))


@given(x=samples, scale=st.floats(min_value=0.0, max_value=1e3, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_mad_positive_homogeneous(x, scale):
    a = mean_absolute_deviation(x * scale)
    b = scale * mean_absolute_deviation(x)
    # atol scales with the data magnitude: scaling a constant array leaves
    # an O(ε·|x|·scale) round-off MAD that is not exactly zero.
    tol = 1e-9 * max(1.0, scale * float(np.max(np.abs(x))))
    assert np.isclose(a, b, rtol=1e-6, atol=tol)


@given(x=samples)
@settings(max_examples=100, deadline=None)
def test_median_abs_dev_bounded_by_range(x):
    spread = np.max(x) - np.min(x)
    assert median_absolute_deviation(x) <= spread + 1e-12


@given(theta=angles)
@settings(max_examples=100, deadline=None)
def test_resultant_length_in_unit_interval(theta):
    r = circular_resultant_length(theta)
    assert -1e-12 <= r <= 1.0 + 1e-12


@given(theta=angles, rotation=st.floats(min_value=-10, max_value=10, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_resultant_length_rotation_invariant(theta, rotation):
    a = circular_resultant_length(theta)
    b = circular_resultant_length(theta + rotation)
    assert np.isclose(a, b, atol=1e-9)


@given(theta=angles)
@settings(max_examples=100, deadline=None)
def test_sector_width_bounds(theta):
    width = angular_sector_width(theta)
    assert -1e-9 <= width <= 2 * np.pi + 1e-9


@given(theta=angles, rotation=st.floats(min_value=-10, max_value=10, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_sector_width_rotation_invariant(theta, rotation):
    a = angular_sector_width(theta)
    b = angular_sector_width(theta + rotation)
    assert np.isclose(a, b, atol=1e-6)
