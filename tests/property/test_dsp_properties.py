"""Property-based tests for Hampel filtering, peaks, and templates."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dsp.hampel import hampel_filter, rolling_median
from repro.dsp.peaks import find_peaks
from repro.dsp.resample import decimate
from repro.dsp.template import subtract_cycle_template

values = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)
signals = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=5, max_value=300),
    elements=values,
)


@given(x=signals, window=st.integers(min_value=1, max_value=31))
@settings(max_examples=80, deadline=None)
def test_rolling_median_bounded_by_input_range(x, window):
    out = rolling_median(x, window)
    assert np.all(out >= np.min(x) - 1e-12)
    assert np.all(out <= np.max(x) + 1e-12)


@given(
    x=signals,
    window=st.integers(min_value=3, max_value=31),
    threshold=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)
@settings(max_examples=80, deadline=None)
def test_hampel_output_within_input_range(x, window, threshold):
    # Every output sample is either the original or a local median, so the
    # filter can never leave the input's value range.
    out = hampel_filter(x, window, threshold)
    assert np.all(out >= np.min(x) - 1e-12)
    assert np.all(out <= np.max(x) + 1e-12)


@given(x=signals, window=st.integers(min_value=3, max_value=31))
@settings(max_examples=80, deadline=None)
def test_hampel_threshold_zero_collapses_to_rolling_median(x, window):
    # With threshold 0 the outlier test is |x - med| > 0, so every sample
    # that differs from its local median is replaced and the filter is
    # exactly the rolling median — the degenerate regime PhaseBeat's
    # threshold=0.01 approximates.  (Repeated median filtering is *not*
    # change-count monotone — x=[3,2,0,1,0], window=4 changes 2 samples on
    # the first pass and 3 on the second — so idempotence-style bounds on
    # pass-to-pass change counts are not an invariant and are not asserted.)
    once = hampel_filter(x, window, 0.0)
    assert np.array_equal(once, rolling_median(x, window))
    # Constant signals are genuine fixed points at any threshold.
    const = np.full_like(x, x[0])
    assert np.array_equal(hampel_filter(const, window, 0.0), const)


@given(x=signals, factor=st.integers(min_value=1, max_value=10))
@settings(max_examples=80, deadline=None)
def test_decimate_picks_exact_samples(x, factor):
    assume(x.size >= factor)
    out = decimate(x, factor)
    assert np.array_equal(out, x[::factor])


@given(x=signals, window=st.integers(min_value=3, max_value=61))
@settings(max_examples=80, deadline=None)
def test_find_peaks_returns_valid_sorted_indices(x, window):
    peaks = find_peaks(x, window=window)
    assert np.all(peaks >= 0)
    assert np.all(peaks < x.size)
    assert np.all(np.diff(peaks) > 0)


@given(
    f0=st.floats(min_value=0.15, max_value=0.5, allow_nan=False),
    n=st.integers(min_value=400, max_value=1200),
)
@settings(max_examples=30, deadline=None)
def test_template_subtraction_reduces_locked_energy(f0, n):
    fs = 20.0
    t = np.arange(n) / fs
    x = np.cos(2 * np.pi * f0 * t) + 0.4 * np.cos(4 * np.pi * f0 * t + 1.0)
    residual = subtract_cycle_template(x, fs, f0)
    assert np.sum(residual**2) < 0.2 * np.sum(x**2)
