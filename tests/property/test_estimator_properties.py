"""Property-based tests for the rate estimators on synthetic signals."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.breathing import MusicBreathingEstimator, PeakBreathingEstimator
from repro.core.heart import FFTHeartEstimator
from repro.dsp.fft_utils import fundamental_frequency


@given(
    f=st.floats(min_value=0.18, max_value=0.45, allow_nan=False),
    phase=st.floats(min_value=0.0, max_value=6.28, allow_nan=False),
    amplitude=st.floats(min_value=0.05, max_value=5.0, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_peak_estimator_tracks_any_clean_rate(f, phase, amplitude):
    """The peak estimator recovers any in-band clean sinusoid's rate."""
    fs = 20.0
    t = np.arange(1800) / fs
    signal = amplitude * np.sin(2 * np.pi * f * t + phase)
    rate = PeakBreathingEstimator().estimate_bpm(signal, fs)
    assert abs(rate - 60 * f) < 0.6


@given(
    f=st.floats(min_value=0.18, max_value=0.45, allow_nan=False),
    noise=st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_peak_estimator_amplitude_invariance(f, noise, seed):
    """Scaling the signal (and its noise) must not change the estimate."""
    fs = 20.0
    rng = np.random.default_rng(seed)
    t = np.arange(1200) / fs
    base = np.sin(2 * np.pi * f * t) + noise * rng.normal(size=t.size)
    estimator = PeakBreathingEstimator()
    r1 = estimator.estimate_bpm(base, fs)
    r2 = estimator.estimate_bpm(100.0 * base, fs)
    assert abs(r1 - r2) < 1e-9


@given(
    f=st.floats(min_value=0.9, max_value=1.9, allow_nan=False),
    phase=st.floats(min_value=0.0, max_value=6.28, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_heart_estimator_tracks_any_clean_rate(f, phase):
    fs = 20.0
    t = np.arange(1200) / fs
    signal = np.sin(2 * np.pi * f * t + phase)
    rate = FFTHeartEstimator().estimate_bpm(signal, fs)
    assert abs(rate - 60 * f) < 1.0


@given(
    f1=st.floats(min_value=0.15, max_value=0.30, allow_nan=False),
    gap=st.floats(min_value=0.06, max_value=0.25, allow_nan=False),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=25, deadline=None)
def test_music_separates_well_spaced_pairs(f1, gap, seed):
    """root-MUSIC resolves any two rates ≥ 0.06 Hz apart in the band."""
    f2 = f1 + gap
    if f2 > 0.55:
        f2 = 0.55
        if f2 - f1 < 0.06:
            return  # degenerate draw
    if abs(f2 - 2 * f1) < 0.03:
        return  # documented limitation: a rate at exactly 2× another is
        # indistinguishable from that rate's harmonic (suppressed by design)
    fs = 20.0
    rng = np.random.default_rng(seed)
    t = np.arange(1200) / fs
    x = (
        np.sin(2 * np.pi * f1 * t)
        + np.sin(2 * np.pi * f2 * t + 1.0)
        + 0.05 * rng.normal(size=t.size)
    )
    rates = MusicBreathingEstimator().estimate_bpm(x, fs, 2)
    assert abs(rates[0] - 60 * f1) < 1.0
    assert abs(rates[1] - 60 * f2) < 1.0


@given(
    f=st.floats(min_value=0.15, max_value=0.35, allow_nan=False),
    harmonic_gain=st.floats(min_value=1.2, max_value=3.5, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_octave_correction_beats_dominant_harmonic(f, harmonic_gain):
    """Even when the 2nd harmonic is the tallest line, the fundamental
    estimate resolves down (the null-point failure mode)."""
    fs = 20.0
    t = np.arange(1200) / fs
    x = np.sin(2 * np.pi * f * t) + harmonic_gain * np.sin(
        2 * np.pi * 2 * f * t + 0.7
    )
    estimate = fundamental_frequency(x, fs, band=(0.1, 0.7))
    assert abs(estimate - f) < 0.02
