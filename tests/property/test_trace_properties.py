"""Property-based tests for the trace container and metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import accuracy, empirical_cdf, match_rates
from repro.io_.trace import CSITrace


@given(
    n=st.integers(min_value=2, max_value=60),
    rate=st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_trace_roundtrip_through_npz(tmp_path_factory, n, rate, seed):
    rng = np.random.default_rng(seed)
    trace = CSITrace(
        csi=rng.normal(size=(n, 3, 30)) + 1j * rng.normal(size=(n, 3, 30)),
        timestamps_s=np.sort(rng.uniform(0, 10, size=n)),
        sample_rate_hz=rate,
        subcarrier_indices=np.arange(30),
        meta={"seed": seed},
    )
    path = tmp_path_factory.mktemp("traces") / f"t{seed}.npz"
    loaded = CSITrace.load(trace.save(path))
    assert np.array_equal(loaded.csi, trace.csi)
    assert loaded.meta == trace.meta


@given(
    estimate=st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    truth=st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
)
@settings(max_examples=200, deadline=None)
def test_accuracy_in_unit_interval(estimate, truth):
    a = accuracy(estimate, truth)
    assert 0.0 <= a <= 1.0
    # Perfect estimates score exactly 1.
    assert accuracy(truth, truth) == 1.0


@given(
    rates=st.lists(
        st.floats(min_value=5.0, max_value=40.0, allow_nan=False),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=100, deadline=None)
def test_match_rates_self_match_is_exact(rates):
    arr = np.asarray(rates)
    pairs = match_rates(arr, arr)
    for estimate, truth in pairs:
        assert estimate == truth


@given(
    errors=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=100, deadline=None)
def test_cdf_is_monotone_and_ends_at_one(errors):
    x, p = empirical_cdf(np.asarray(errors))
    assert np.all(np.diff(x) >= 0)
    assert np.all(np.diff(p) > 0)
    assert p[-1] == 1.0
