"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ConfigurationError,
    EstimationError,
    NotStationaryError,
    ReproError,
    SignalTooShortError,
    TraceFormatError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            ConfigurationError,
            EstimationError,
            NotStationaryError,
            SignalTooShortError,
            TraceFormatError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_configuration_error_is_value_error(self):
        # Callers using plain `except ValueError` still catch config errors.
        assert issubclass(ConfigurationError, ValueError)

    def test_trace_format_error_is_value_error(self):
        assert issubclass(TraceFormatError, ValueError)

    def test_estimation_error_is_runtime_error(self):
        assert issubclass(EstimationError, RuntimeError)


class TestSignalTooShort:
    def test_carries_lengths(self):
        error = SignalTooShortError(100, 10, "DWT input")
        assert error.required == 100
        assert error.actual == 10
        assert "DWT input" in str(error)
        assert "100" in str(error)


class TestNotStationary:
    def test_carries_v_and_state(self):
        error = NotStationaryError(3.7, "walking")
        assert error.v_statistic == pytest.approx(3.7)
        assert error.state == "walking"
        assert "walking" in str(error)
