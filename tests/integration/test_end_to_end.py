"""End-to-end integration tests: simulate → save → load → estimate.

These walk the full user journey across module boundaries, including
persistence, multi-person monitoring, streaming, and the three deployment
scenarios.
"""

import pytest

from repro import (
    CSITrace,
    PhaseBeat,
    PhaseBeatConfig,
    Person,
    SinusoidalBreathing,
    StreamingConfig,
    StreamingMonitor,
    capture_trace,
    corridor_scenario,
    laboratory_scenario,
    through_wall_scenario,
)

SWEEP = PhaseBeatConfig(enforce_stationarity=False)


class TestFullJourney:
    def test_simulate_save_load_estimate(self, tmp_path, lab_trace, lab_person):
        path = lab_trace.save(tmp_path / "capture.npz")
        loaded = CSITrace.load(path)
        result = PhaseBeat().process(loaded, estimate_heart=False)
        truth = loaded.meta["breathing_rates_bpm"][0]
        assert truth == lab_person.breathing_rate_bpm
        assert result.breathing_rates_bpm[0] == pytest.approx(truth, abs=0.5)

    def test_all_three_deployments_estimate_breathing(self):
        person = Person(
            position=(1.5, 2.0, 1.0),
            breathing=SinusoidalBreathing(frequency_hz=0.3),
            heartbeat=None,
        )
        scenarios = [
            laboratory_scenario([person], clutter_seed=21),
            through_wall_scenario(
                4.0,
                [Person(position=(1.5, 1.2, 1.0), heartbeat=None,
                        breathing=SinusoidalBreathing(frequency_hz=0.3))],
                clutter_seed=21,
            ),
            corridor_scenario(
                5.0,
                [Person(position=(1.0, 2.5, 1.0), heartbeat=None,
                        breathing=SinusoidalBreathing(frequency_hz=0.3))],
                clutter_seed=21,
            ),
        ]
        pipeline = PhaseBeat(SWEEP)
        # Through-wall traces are the hard regime (wall loss + a dominant
        # second harmonic at this geometry): allow the wider tolerance the
        # paper's own Fig. 16 errors imply.
        tolerances = {"laboratory": 1.0, "through_wall": 1.6, "corridor": 1.0}
        for scenario in scenarios:
            trace = capture_trace(scenario, duration_s=30.0, seed=21)
            result = pipeline.process(trace, estimate_heart=False)
            assert result.breathing_rates_bpm[0] == pytest.approx(
                18.0, abs=tolerances[scenario.name]
            ), scenario.name

    def test_streaming_matches_batch(self, lab_trace, lab_person):
        batch = PhaseBeat().process(lab_trace, estimate_heart=False)
        monitor = StreamingMonitor(
            400.0, StreamingConfig(window_s=25.0, hop_s=5.0)
        )
        streamed = [e for e in monitor.push_trace(lab_trace) if e.ok]
        assert streamed
        last = streamed[-1].result.breathing_rates_bpm[0]
        assert last == pytest.approx(batch.breathing_rates_bpm[0], abs=0.8)

    def test_metadata_ground_truth_consistency(self, lab_trace, lab_person):
        assert lab_trace.meta["n_persons"] == 1
        assert lab_trace.meta["scenario"] == "laboratory"
        assert lab_trace.meta["heart_rates_bpm"][0] == pytest.approx(
            lab_person.heart_rate_bpm
        )


class TestSamplingRateRobustness:
    @pytest.mark.parametrize("rate", [100.0, 200.0, 400.0])
    def test_breathing_across_rates(self, rate, lab_person):
        scenario = laboratory_scenario([lab_person], clutter_seed=22)
        trace = capture_trace(
            scenario, duration_s=20.0, sample_rate_hz=rate, seed=22
        )
        result = PhaseBeat(SWEEP).process(trace, estimate_heart=False)
        assert result.breathing_rates_bpm[0] == pytest.approx(
            lab_person.breathing_rate_bpm, abs=0.8
        )


class TestRealisticPhysiology:
    def test_breathing_with_wander_and_harmonics(self):
        from repro import RealisticBreathing

        person = Person(
            position=(2.2, 3.0, 1.0),
            breathing=RealisticBreathing(
                frequency_hz=0.27, rate_jitter_fraction=0.02, seed=5
            ),
            heartbeat=None,
        )
        scenario = laboratory_scenario([person], clutter_seed=23)
        trace = capture_trace(scenario, duration_s=30.0, seed=23)
        result = PhaseBeat(SWEEP).process(trace, estimate_heart=False)
        assert result.breathing_rates_bpm[0] == pytest.approx(16.2, abs=1.2)

    def test_pulse_heartbeat_detectable(self):
        from repro import PulseHeartbeat

        person = Person(
            position=(2.2, 3.0, 1.0),
            breathing=SinusoidalBreathing(frequency_hz=0.22, amplitude_m=3e-3),
            heartbeat=PulseHeartbeat(frequency_hz=1.25, amplitude_m=5e-4),
        )
        scenario = laboratory_scenario(
            [person], directional_tx=True, clutter_seed=24
        )
        trace = capture_trace(scenario, duration_s=60.0, seed=24)
        result = PhaseBeat(SWEEP).process(trace)
        assert result.heart_rate_bpm == pytest.approx(75.0, abs=3.0)


class TestReadmeQuickstart:
    def test_readme_snippet_verbatim(self):
        """The README quickstart must work exactly as printed."""
        from repro import PhaseBeat, capture_trace, laboratory_scenario

        trace = capture_trace(laboratory_scenario(), duration_s=60.0)
        result = PhaseBeat().process(trace)

        assert len(result.breathing_rates_bpm) == 1
        truth_breathing = trace.meta["breathing_rates_bpm"][0]
        truth_heart = trace.meta["heart_rates_bpm"][0]
        assert result.breathing_rates_bpm[0] == pytest.approx(
            truth_breathing, abs=0.5
        )
        # Default lab scenario uses an omni TX; the heart estimate exists
        # and is at least physiological, though the paper (and this repo)
        # only promise accuracy with the directional-TX setup.
        assert result.heart_rate_bpm is None or 40 < result.heart_rate_bpm < 130
