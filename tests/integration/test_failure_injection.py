"""Failure-injection tests: the pipeline must fail loudly and specifically.

Corrupt, degenerate, or adversarial inputs should raise the library's typed
exceptions (never silently return garbage, never crash with a bare numpy
error deep in the stack).
"""

import numpy as np
import pytest

from repro import (
    CSITrace,
    ConfigurationError,
    EstimationError,
    NotStationaryError,
    PhaseBeat,
    PhaseBeatConfig,
    ReproError,
    SignalTooShortError,
    TraceFormatError,
)


def make_trace(csi, rate=400.0):
    n = csi.shape[0]
    return CSITrace(
        csi=csi,
        timestamps_s=np.arange(n) / rate,
        sample_rate_hz=rate,
        subcarrier_indices=np.arange(csi.shape[2]),
        meta={},
    )


class TestDegenerateTraces:
    def test_all_zero_csi_rejected_or_estimation_error(self):
        trace = make_trace(np.zeros((4000, 3, 30), dtype=complex))
        with pytest.raises(ReproError):
            PhaseBeat().process(trace)

    def test_pure_noise_trace(self, rng):
        csi = 0.001 * (
            rng.normal(size=(4000, 3, 30)) + 1j * rng.normal(size=(4000, 3, 30))
        )
        with pytest.raises((EstimationError, NotStationaryError)):
            PhaseBeat().process(make_trace(csi))

    def test_constant_csi_no_person(self):
        csi = np.full((4000, 3, 30), 1.0 + 0.5j)
        with pytest.raises(NotStationaryError) as excinfo:
            PhaseBeat().process(make_trace(csi))
        assert excinfo.value.state == "no_person"

    def test_very_short_trace(self, rng):
        csi = rng.normal(size=(40, 3, 30)) + 1j * rng.normal(size=(40, 3, 30))
        with pytest.raises(ReproError):
            PhaseBeat().process(make_trace(csi))

    def test_two_antenna_trace_disables_diversity_gracefully(self, lab_trace):
        # A 2-chain NIC: pair diversity must degrade to the single pair.
        two_chain = CSITrace(
            csi=lab_trace.csi[:, :2, :],
            timestamps_s=lab_trace.timestamps_s,
            sample_rate_hz=lab_trace.sample_rate_hz,
            subcarrier_indices=lab_trace.subcarrier_indices,
            meta={},
        )
        result = PhaseBeat(
            PhaseBeatConfig(enforce_stationarity=False)
        ).process(two_chain, estimate_heart=False)
        assert result.diagnostics.selected_antenna_pair == (0, 1)


class TestCorruptedFiles:
    def test_truncated_npz(self, tmp_path, lab_trace):
        path = lab_trace.save(tmp_path / "trace.npz")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(Exception):
            CSITrace.load(path)

    def test_wrong_file_type(self, tmp_path):
        path = tmp_path / "not_a_trace.npz"
        path.write_text("this is not a zip file")
        with pytest.raises(Exception):
            CSITrace.load(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CSITrace.load(tmp_path / "nope.npz")


class TestHostileSegments:
    def test_nan_in_csi_rejected_at_the_boundary(self, lab_trace):
        # Non-finite CSI is rejected when the trace is constructed: a real
        # capture never produces NaN, so it must not travel any further.
        csi = lab_trace.csi.copy()
        csi[100:200, :, :] = np.nan
        with pytest.raises(TraceFormatError):
            CSITrace(
                csi=csi,
                timestamps_s=lab_trace.timestamps_s,
                sample_rate_hz=lab_trace.sample_rate_hz,
                subcarrier_indices=lab_trace.subcarrier_indices,
                meta={},
            )

    def test_dwt_on_tiny_series_raises_typed_error(self):
        from repro.dsp.wavelet import wavedec

        with pytest.raises(SignalTooShortError) as excinfo:
            wavedec(np.zeros(4), "db4", level=4)
        assert excinfo.value.required > excinfo.value.actual

    def test_selection_on_empty_matrix_raises(self):
        from repro.core.subcarrier_selection import select_subcarrier

        with pytest.raises((ConfigurationError, ValueError, IndexError)):
            select_subcarrier(np.zeros((0, 0)))


class TestExceptionContracts:
    def test_not_stationary_carries_diagnostics(self):
        error = NotStationaryError(2.5, "walking")
        assert error.v_statistic == 2.5
        assert error.state == "walking"

    def test_all_pipeline_errors_catchable_as_repro_error(self, rng):
        csi = 0.001 * (
            rng.normal(size=(4000, 3, 30)) + 1j * rng.normal(size=(4000, 3, 30))
        )
        with pytest.raises(ReproError):
            PhaseBeat().process(make_trace(csi))

    def test_trace_format_error_is_value_error(self):
        with pytest.raises(ValueError):
            raise TraceFormatError("bad trace")
