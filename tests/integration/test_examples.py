"""Smoke tests: the shipped examples must run and print sane output.

Only the quicker examples run here (the full set is exercised manually /
by CI with a longer budget); each is executed as a subprocess exactly the
way a user would run it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: float = 300.0) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert process.returncode == 0, process.stderr[-2000:]
    return process.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "breathing:" in output
        assert "heart:" in output
        assert "error" in output

    def test_multi_person(self):
        output = run_example("multi_person_monitoring.py")
        assert "root-MUSIC" in output
        assert "ground truth" in output

    def test_sleep_apnea(self):
        output = run_example("sleep_apnea_monitoring.py")
        assert "detected events: 2" in output

    @pytest.mark.parametrize(
        "name",
        ["heart_rate_monitoring.py", "dataset_workflow.py"],
    )
    def test_other_examples(self, name):
        output = run_example(name)
        assert output.strip()
