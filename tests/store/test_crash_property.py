"""Crash-point property: kill the writer at every byte offset.

The central robustness claim of the store: for *any* prefix of a segment
file — the writer's process may die between any two bytes reaching the
medium — the salvaging reader

* never raises,
* recovers exactly the records whose frames were fully persisted, and
* reports a clean scan iff the cut landed on a frame boundary
  (including the end of the magic and the end of the header frame).
"""

from __future__ import annotations

import json

import pytest

from repro.errors import TornWriteError, TraceStoreError
from repro.store import (
    MemoryBackend,
    TornWriteFile,
    TraceReader,
    TraceWriter,
    scan_segment,
)
from repro.store.format import (
    FRAME_HEADER_BYTES,
    FRAME_SYNC,
    SEGMENT_MAGIC,
    segment_name,
    unpack_frame_header,
)

from .conftest import N_RX, N_SUB, RATE_HZ, make_packets, write_store


def frame_boundaries(data: bytes) -> list[int]:
    """Byte offsets at which a crash leaves a fully consistent prefix."""
    boundaries = [len(SEGMENT_MAGIC)]
    pos = len(SEGMENT_MAGIC)
    while pos < len(data):
        assert data[pos: pos + len(FRAME_SYNC)] == FRAME_SYNC
        _, length, _ = unpack_frame_header(
            data[pos + len(FRAME_SYNC): pos + FRAME_HEADER_BYTES]
        )
        pos += FRAME_HEADER_BYTES + length
        boundaries.append(pos)
    return boundaries


@pytest.mark.determinism
class TestKillAtEveryOffset:
    def test_every_prefix_salvages_exactly(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=8)
        data = backend.read_bytes(segment_name("t", 0))
        boundaries = frame_boundaries(data)
        header_end = boundaries[1]  # magic end, then the header frame
        packet_ends = boundaries[2:]

        for cut in range(len(data) + 1):
            scan = scan_segment(data[:cut], "seg")  # must never raise
            expected = sum(1 for end in packet_ends if end <= cut)
            if cut < header_end:
                expected = 0  # no header yet, so nothing decodable
            assert len(scan.packets) == expected, f"cut={cut}"
            is_boundary = cut in boundaries or cut == len(data)
            assert (not scan.issues) == is_boundary, f"cut={cut}"
            # A pure truncation can never read as a damaged preamble.
            assert not any(
                i.kind in ("bad-magic", "version-mismatch") for i in scan.issues
            ), f"cut={cut}"

    def test_salvage_of_a_prefix_is_deterministic(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=8)
        data = backend.read_bytes(segment_name("t", 0))
        for cut in (0, 5, 120, 200, len(data) - 13):
            first = scan_segment(data[:cut], "seg")
            second = scan_segment(data[:cut], "seg")
            assert [i.to_jsonable() for i in first.issues] == [
                i.to_jsonable() for i in second.issues
            ]
            assert len(first.packets) == len(second.packets)

    def test_reader_never_raises_on_any_prefix(self):
        clean = MemoryBackend()
        write_store(clean, n_packets=8)
        name = segment_name("t", 0)
        data = clean.read_bytes(name)
        for cut in range(len(data) + 1):
            backend = MemoryBackend()
            handle = backend.open_append(name)
            handle.write(data[:cut])
            handle.close()
            _, report = TraceReader(backend, "t").scan()
            assert report.n_segments_scanned == 1


class _TornBackend:
    """Backend whose appends die after a byte budget (test double)."""

    def __init__(self, inner: MemoryBackend, crash_after_bytes: int):
        self._inner = inner
        self._budget = crash_after_bytes

    def open_append(self, name):
        return TornWriteFile(self._inner.open_append(name), self._budget)

    def read_bytes(self, name):
        return self._inner.read_bytes(name)

    def replace_bytes(self, name, data):
        self._inner.replace_bytes(name, data)

    def exists(self, name):
        return self._inner.exists(name)

    def list_names(self):
        return self._inner.list_names()


class TestCrashResumeRoundTrip:
    def test_torn_write_then_resume_recovers_everything_persisted(self):
        storage = MemoryBackend()
        torn_backend = _TornBackend(storage, crash_after_bytes=300)
        writer = TraceWriter(
            torn_backend,
            "t",
            n_rx=N_RX,
            n_subcarriers=N_SUB,
            sample_rate_hz=RATE_HZ,
            subcarrier_indices=tuple(range(N_SUB)),
        )
        packets = make_packets(10)
        persisted_before_crash = 0
        crashed = False
        for ts, csi in packets:
            try:
                writer.append(csi, ts)
                persisted_before_crash += 1
            except TornWriteError:
                crashed = True
                break
        assert crashed
        writer.abandon()

        # Salvage sees the records whose frames fully fit the budget.
        _, report = TraceReader(storage, "t").scan()
        assert report.n_records_recovered < persisted_before_crash + 1
        assert any(i.kind == "torn-tail" for i in report.issues)
        recovered_at_crash = report.n_records_recovered

        # Restart: resume appends the remaining packets to a new segment.
        resumed = TraceWriter.resume(
            storage,
            "t",
            n_rx=N_RX,
            n_subcarriers=N_SUB,
            sample_rate_hz=RATE_HZ,
            subcarrier_indices=tuple(range(N_SUB)),
        )
        assert resumed.segment_index == 1
        for ts, csi in packets[recovered_at_crash:]:
            resumed.append(csi, ts)
        resumed.close()

        final_packets, _, final_report = TraceReader(storage, "t").read_packets()
        assert len(final_packets) == 10
        assert [ts for ts, _ in final_packets] == [ts for ts, _ in packets]
        # The torn tail is still reported — crash evidence is preserved.
        assert any(i.kind == "torn-tail" for i in final_report.issues)

    def test_index_never_claims_unpersisted_records(self):
        storage = MemoryBackend()
        torn_backend = _TornBackend(storage, crash_after_bytes=500)
        writer = TraceWriter(
            torn_backend,
            "t",
            n_rx=N_RX,
            n_subcarriers=N_SUB,
            sample_rate_hz=RATE_HZ,
            subcarrier_indices=tuple(range(N_SUB)),
        )
        appended = 0
        try:
            for ts, csi in make_packets(4):
                writer.append(csi, ts)
                appended += 1
                writer.flush()
        except TornWriteError:
            pass
        writer.abandon()
        if storage.exists("t.cidx"):
            index = json.loads(storage.read_bytes("t.cidx").decode())
            claimed = sum(r["n_records"] for r in index["segments"])
            _, report = TraceReader(storage, "t").scan()
            assert claimed <= report.n_records_recovered


def test_store_error_is_catchable_as_repro_error():
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        raise TraceStoreError("typed for the CLI's exit-code path")
