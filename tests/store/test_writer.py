"""Unit tests for the crash-safe ``TraceWriter``."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import TraceStoreError
from repro.obs import Instrumentation, MetricsRegistry
from repro.service.clock import SimulatedClock
from repro.store import MemoryBackend, TraceReader, TraceWriter
from repro.store.format import index_name, segment_name

from .conftest import N_RX, N_SUB, RATE_HZ, make_packets, write_store


def make_writer(backend, stem="t", **overrides):
    fields = dict(
        session_id="test",
        n_rx=N_RX,
        n_subcarriers=N_SUB,
        sample_rate_hz=RATE_HZ,
        subcarrier_indices=tuple(range(N_SUB)),
    )
    fields.update(overrides)
    return TraceWriter(backend, stem, **fields)


class TestBasics:
    def test_write_then_clean_read(self):
        backend = MemoryBackend()
        truth = write_store(backend, n_packets=10)
        packets, header, report = TraceReader(backend, "t").read_packets()
        assert report.clean
        assert header is not None and header.session_id == "test"
        assert len(packets) == 10
        for (ts, csi), (truth_ts, truth_csi) in zip(packets, truth):
            assert ts == truth_ts
            np.testing.assert_array_equal(csi, truth_csi)

    def test_records_written_counter(self):
        writer = make_writer(MemoryBackend())
        assert writer.n_records_written == 0
        for ts, csi in make_packets(5):
            writer.append(csi, ts)
        assert writer.n_records_written == 5
        writer.close()

    def test_validation(self):
        with pytest.raises(TraceStoreError, match="non-empty"):
            make_writer(MemoryBackend(), stem="")
        with pytest.raises(TraceStoreError, match="rotate_bytes"):
            make_writer(MemoryBackend(), rotate_bytes=100)

    def test_geometry_mismatch_rejected(self):
        writer = make_writer(MemoryBackend())
        with pytest.raises(TraceStoreError, match="does not match"):
            writer.append(np.zeros((N_RX, N_SUB + 1), dtype=np.complex64), 0.0)
        writer.close()

    def test_closed_writer_rejects_use(self):
        writer = make_writer(MemoryBackend())
        writer.close()
        assert writer.closed
        with pytest.raises(TraceStoreError, match="closed"):
            writer.append(np.zeros((N_RX, N_SUB), dtype=np.complex64), 0.0)
        with pytest.raises(TraceStoreError, match="closed"):
            writer.flush()
        writer.close()  # idempotent


class TestRotation:
    def test_rotation_splits_into_segments(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=60, rotate_bytes=4096)
        reader = TraceReader(backend, "t")
        names = reader.segment_names()
        assert len(names) > 1
        assert names[0] == segment_name("t", 0)
        packets, _, report = reader.read_packets()
        assert report.clean
        assert len(packets) == 60
        # Every segment respects its byte budget.
        for name in names:
            assert len(backend.read_bytes(name)) <= 4096

    def test_rotation_counter(self):
        registry = MetricsRegistry()
        obs = Instrumentation(clock=SimulatedClock(), registry=registry)
        backend = MemoryBackend()
        writer = make_writer(backend, rotate_bytes=4096, instrumentation=obs)
        for ts, csi in make_packets(60):
            writer.append(csi, ts)
        writer.close()
        n_segments = len(TraceReader(backend, "t").segment_names())
        rotated = next(
            sample["value"]
            for sample in registry.snapshot()["metrics"]
            if sample["name"] == "store_segments_rotated_total"
        )
        assert rotated == n_segments - 1


class TestIndex:
    def test_close_writes_complete_index(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=20, rotate_bytes=4096)
        index = json.loads(backend.read_bytes(index_name("t")).decode())
        assert index["stem"] == "t"
        rows = index["segments"]
        assert sum(row["n_records"] for row in rows) == 20
        assert [row["segment_index"] for row in rows] == list(range(len(rows)))
        last = rows[-1]
        assert last["last_timestamp_s"] == pytest.approx(19 / RATE_HZ)

    def test_flush_is_the_durability_boundary(self):
        backend = MemoryBackend()
        writer = make_writer(backend)
        packets = make_packets(6)
        for ts, csi in packets[:4]:
            writer.append(csi, ts)
        writer.flush()
        flushed = json.loads(backend.read_bytes(index_name("t")).decode())
        assert sum(r["n_records"] for r in flushed["segments"]) == 4
        for ts, csi in packets[4:]:
            writer.append(csi, ts)
        # Unflushed records are not yet claimed by the index.
        stale = json.loads(backend.read_bytes(index_name("t")).decode())
        assert sum(r["n_records"] for r in stale["segments"]) == 4
        writer.close()
        final = json.loads(backend.read_bytes(index_name("t")).decode())
        assert sum(r["n_records"] for r in final["segments"]) == 6


class TestResume:
    def test_collision_without_resume_raises(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=2)
        with pytest.raises(TraceStoreError, match="resume=True"):
            make_writer(backend)

    def test_resume_continues_in_next_segment(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=5)
        resumed = TraceWriter.resume(
            backend,
            "t",
            session_id="test",
            n_rx=N_RX,
            n_subcarriers=N_SUB,
            sample_rate_hz=RATE_HZ,
            subcarrier_indices=tuple(range(N_SUB)),
        )
        assert resumed.segment_index == 1
        for ts, csi in make_packets(5, seed=1):
            resumed.append(csi, ts)
        assert resumed.n_records_written == 5  # new records only
        resumed.close()
        packets, _, report = TraceReader(backend, "t").read_packets()
        assert report.clean
        assert len(packets) == 10
        index = json.loads(backend.read_bytes(index_name("t")).decode())
        assert [r["segment_index"] for r in index["segments"]] == [0, 1]

    def test_resume_tolerates_torn_index(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=3)
        backend.truncate(index_name("t"), 20)  # torn mid-JSON
        resumed = TraceWriter.resume(
            backend,
            "t",
            n_rx=N_RX,
            n_subcarriers=N_SUB,
            sample_rate_hz=RATE_HZ,
            subcarrier_indices=tuple(range(N_SUB)),
        )
        assert resumed.segment_index == 1
        resumed.close()


class TestContextManager:
    def test_clean_exit_closes(self):
        backend = MemoryBackend()
        with make_writer(backend) as writer:
            for ts, csi in make_packets(3):
                writer.append(csi, ts)
        assert writer.closed
        assert backend.exists(index_name("t"))

    def test_exception_abandons_without_flush(self):
        backend = MemoryBackend()
        with pytest.raises(RuntimeError, match="boom"):
            with make_writer(backend) as writer:
                for ts, csi in make_packets(3):
                    writer.append(csi, ts)
                raise RuntimeError("boom")
        assert writer.closed
        # Abandon skips the index finalization — the crash path.
        assert not backend.exists(index_name("t"))
