"""Tests for corpus loading and replay backtesting."""

from __future__ import annotations

import json
import math

import pytest

from repro import capture_trace, laboratory_scenario
from repro.errors import TraceStoreError
from repro.service.clock import SimulatedClock
from repro.service.sources import TracePacketSource
from repro.store import DirectoryBackend, RecordingTap, StoreCalibrationMemo
from repro.store.backtest import (
    MANIFEST_NAME,
    BacktestReport,
    ScenarioBaseline,
    load_manifest,
    run_backtest,
)
RATE_HZ = 30.0
DURATION_S = 20.0


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory, lab_person):
    """A one-scenario corpus recorded from a short simulated capture."""
    root = tmp_path_factory.mktemp("corpus")
    scenario = laboratory_scenario([lab_person], clutter_seed=3)
    trace = capture_trace(
        scenario, duration_s=DURATION_S, sample_rate_hz=RATE_HZ, seed=3
    )
    tap = RecordingTap(
        TracePacketSource(trace, SimulatedClock()),
        DirectoryBackend(str(root / "lab")),
        "trace",
        sample_rate_hz=RATE_HZ,
        session_id="corpus-test",
    )
    while not tap.exhausted:
        tap.next_packet()
    tap.close()
    truth_bpm = float(trace.meta["breathing_rates_bpm"][0])
    manifest = {
        "corpus_format_version": 1,
        "stem": "trace",
        "scenarios": {
            "lab": {
                "expected_breathing_bpm": truth_bpm,
                "tolerance_bpm": 6.0,
                "min_estimates": 2,
            }
        },
    }
    (root / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
    return str(root)


class TestManifest:
    def test_load_round_trip(self, corpus_dir):
        stem, baselines = load_manifest(corpus_dir)
        assert stem == "trace"
        assert [b.name for b in baselines] == ["lab"]
        assert baselines[0].min_estimates == 2

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(TraceStoreError, match="cannot read corpus manifest"):
            load_manifest(str(tmp_path))

    def test_bad_json_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{nope")
        with pytest.raises(TraceStoreError, match="not valid JSON"):
            load_manifest(str(tmp_path))

    def test_unknown_version_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"corpus_format_version": 99, "scenarios": {"a": {}}})
        )
        with pytest.raises(TraceStoreError, match="unsupported corpus manifest"):
            load_manifest(str(tmp_path))

    def test_no_scenarios_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"corpus_format_version": 1, "scenarios": {}})
        )
        with pytest.raises(TraceStoreError, match="declares no scenarios"):
            load_manifest(str(tmp_path))

    def test_unknown_scenario_keys_rejected(self):
        with pytest.raises(TraceStoreError, match="unknown manifest keys"):
            ScenarioBaseline.from_dict(
                "x", {"expected_breathing_bpm": 15.0, "typo_key": 1}
            )

    def test_baseline_validation(self):
        with pytest.raises(TraceStoreError, match="must be positive"):
            ScenarioBaseline(name="x", expected_breathing_bpm=-1.0)
        with pytest.raises(TraceStoreError, match="tolerance_bpm"):
            ScenarioBaseline(
                name="x", expected_breathing_bpm=15.0, tolerance_bpm=0.0
            )


class TestRunBacktest:
    def test_clean_corpus_passes(self, corpus_dir):
        report = run_backtest(corpus_dir, seed=0)
        assert report.passed, report.format_text()
        result = report.results[0]
        assert result.n_records == int(DURATION_S * RATE_HZ)
        assert result.salvage_clean
        assert result.n_estimates >= 2
        assert not math.isnan(result.median_bpm)
        # Replay must beat real time by a wide margin.
        assert report.overall_speedup_ratio > 20.0

    def test_injected_regression_fails_the_gate(self, corpus_dir):
        report = run_backtest(corpus_dir, seed=0, inject_bias_bpm=25.0)
        assert not report.passed
        assert "rate-regression" in report.results[0].failures

    def test_unknown_scenario_selection_raises(self, corpus_dir):
        with pytest.raises(TraceStoreError, match="unknown scenario"):
            run_backtest(corpus_dir, scenarios=["ghost"])

    def test_missing_store_directory_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps(
                {
                    "corpus_format_version": 1,
                    "stem": "trace",
                    "scenarios": {"ghost": {"expected_breathing_bpm": 15.0}},
                }
            )
        )
        with pytest.raises(TraceStoreError, match="does not exist"):
            run_backtest(str(tmp_path))

    def test_memoized_offline_estimate_hits_on_rerun(self, corpus_dir):
        memo = StoreCalibrationMemo()
        first = run_backtest(corpus_dir, seed=0, memo=memo)
        assert first.passed
        offline = first.results[0].offline_bpm
        assert offline is not None
        assert offline == pytest.approx(first.results[0].median_bpm, abs=6.0)
        misses = memo.misses
        assert misses > 0
        # Replaying the same unchanged corpus must reuse the calibrated
        # matrices instead of recomputing them.
        second = run_backtest(corpus_dir, seed=0, memo=memo)
        assert second.results[0].offline_bpm == offline
        assert memo.hits > 0
        assert memo.misses == misses
        assert memo.hit_ratio > 0.0

    def test_report_is_jsonable(self, corpus_dir):
        report = run_backtest(corpus_dir, seed=0)
        payload = json.loads(json.dumps(report.to_jsonable()))
        assert payload["passed"] is True
        assert payload["results"][0]["name"] == "lab"
        assert isinstance(report, BacktestReport)
        assert "overall" in report.format_text()
