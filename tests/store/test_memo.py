"""Content-keyed calibration memoization over recorded stores."""

from __future__ import annotations

import numpy as np
import pytest
from .conftest import write_store

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.obs.instrument import Instrumentation
from repro.store import MemoryBackend, StoreCalibrationMemo, store_digest

N_PACKETS = 240  # 8 s at the conftest's 30 Hz — enough to calibrate


class TestStoreDigest:
    def test_digest_is_stable_for_identical_bytes(self):
        backend = MemoryBackend()
        write_store(backend, "a", n_packets=N_PACKETS, seed=1)
        assert store_digest(backend, "a") == store_digest(backend, "a")

    def test_digest_tracks_content(self):
        backend = MemoryBackend()
        write_store(backend, "a", n_packets=N_PACKETS, seed=1)
        write_store(backend, "b", n_packets=N_PACKETS, seed=2)
        assert store_digest(backend, "a") != store_digest(backend, "b")

    def test_missing_store_rejected(self):
        with pytest.raises(ConfigurationError, match="no segments"):
            store_digest(MemoryBackend(), "ghost")


class TestStoreCalibrationMemo:
    def test_repeat_calibration_hits(self):
        backend = MemoryBackend()
        write_store(backend, "a", n_packets=N_PACKETS)
        memo = StoreCalibrationMemo()
        first = memo.calibrated_matrix(backend, "a")
        assert (memo.hits, memo.misses) == (0, 1)
        second = memo.calibrated_matrix(backend, "a")
        assert (memo.hits, memo.misses) == (1, 1)
        assert first[0] is second[0]  # literally the shared array
        assert memo.hit_ratio == pytest.approx(0.5)

    def test_cached_arrays_are_read_only(self):
        backend = MemoryBackend()
        write_store(backend, "a", n_packets=N_PACKETS)
        memo = StoreCalibrationMemo()
        matrix, quality, rate_hz = memo.calibrated_matrix(backend, "a")
        assert rate_hz > 0
        with pytest.raises(ValueError, match="read-only"):
            matrix[0, 0] = 0.0
        with pytest.raises(ValueError, match="read-only"):
            quality[0] = False

    def test_changed_segment_bytes_invalidate(self):
        backend = MemoryBackend()
        write_store(backend, "a", n_packets=N_PACKETS)
        write_store(backend, "donor", n_packets=N_PACKETS, seed=3)
        memo = StoreCalibrationMemo()
        memo.calibrated_matrix(backend, "a")
        # Swap in a valid segment with different content — the digest
        # changes, so the next lookup misses instead of serving stale data.
        backend.replace_bytes(
            "a-00000.cst", backend.read_bytes("donor-00000.cst")
        )
        memo.calibrated_matrix(backend, "a")
        assert (memo.hits, memo.misses) == (0, 2)

    def test_selection_reuses_the_calibrated_entry(self):
        backend = MemoryBackend()
        write_store(backend, "a", n_packets=N_PACKETS)
        memo = StoreCalibrationMemo()
        first = memo.selection(backend, "a")
        # selection miss + calibrated miss on the way in.
        assert (memo.hits, memo.misses) == (0, 2)
        second = memo.selection(backend, "a")
        assert second is first
        assert memo.hits == 1

    def test_lru_eviction_respects_capacity(self):
        backend = MemoryBackend()
        write_store(backend, "a", n_packets=N_PACKETS, seed=1)
        write_store(backend, "b", n_packets=N_PACKETS, seed=2)
        memo = StoreCalibrationMemo(max_entries=1)
        memo.calibrated_matrix(backend, "a")
        memo.calibrated_matrix(backend, "b")  # evicts a
        memo.calibrated_matrix(backend, "a")  # recomputed
        assert memo.hits == 0
        assert memo.misses == 3

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigurationError, match="max_entries"):
            StoreCalibrationMemo(max_entries=0)

    def test_hit_and_miss_counters_land_in_metrics(self):
        backend = MemoryBackend()
        write_store(backend, "a", n_packets=N_PACKETS)
        registry = MetricsRegistry()
        memo = StoreCalibrationMemo(
            instrumentation=Instrumentation(registry=registry)
        )
        memo.calibrated_matrix(backend, "a")
        memo.calibrated_matrix(backend, "a")
        counters = {
            (metric["name"], metric["labels"].get("op")): metric["value"]
            for metric in registry.snapshot()["metrics"]
            if metric["kind"] == "counter"
        }
        assert counters[("store_memo_cache_misses_count", "calibrated")] == 1.0
        assert counters[("store_memo_cache_hits_count", "calibrated")] == 1.0

    def test_calibration_config_is_part_of_the_key(self):
        from repro.core.calibration import CalibrationConfig

        backend = MemoryBackend()
        write_store(backend, "a", n_packets=N_PACKETS)
        memo = StoreCalibrationMemo()
        default = memo.calibrated_matrix(backend, "a")
        tweaked = memo.calibrated_matrix(
            backend, "a", calibration=CalibrationConfig(target_rate_hz=10.0)
        )
        assert memo.misses == 2
        assert not np.shares_memory(default[0], tweaked[0])
