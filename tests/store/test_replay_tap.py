"""Tests for ``ReplayPacketSource``, ``RecordingTap`` and store digests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceStoreError
from repro.service.clock import SimulatedClock
from repro.service.sources import Packet
from repro.store import MemoryBackend, ReplayPacketSource, RecordingTap, TraceReader
from repro.store.tap import store_digest

from .conftest import N_RX, N_SUB, RATE_HZ, make_packets, write_store


class _ListSource:
    """A PacketSource over an in-memory packet list (test double)."""

    def __init__(self, packets):
        self._packets = list(packets)
        self._index = 0

    @property
    def exhausted(self):
        return self._index >= len(self._packets)

    def next_packet(self):
        if self.exhausted:
            return None
        ts, csi = self._packets[self._index]
        self._index += 1
        return Packet(csi=csi, timestamp_s=ts)


class TestReplayPacketSource:
    def test_replays_all_packets_in_order_and_advances_clock(self):
        backend = MemoryBackend()
        truth = write_store(backend, n_packets=10)
        clock = SimulatedClock()
        source = ReplayPacketSource(backend, "t", clock)
        assert source.n_packets_total == 10
        assert source.sample_rate_hz == RATE_HZ
        assert source.duration_s == pytest.approx(9 / RATE_HZ)
        delivered = []
        while not source.exhausted:
            packet = source.next_packet()
            delivered.append(packet)
            assert clock.now_s == pytest.approx(packet.timestamp_s)
        assert source.next_packet() is None
        assert len(delivered) == 10
        for packet, (ts, csi) in zip(delivered, truth):
            assert packet.timestamp_s == ts
            np.testing.assert_array_equal(packet.csi, csi)

    def test_start_at_skips_earlier_records(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=10)
        source = ReplayPacketSource(
            backend, "t", SimulatedClock(), start_at_s=5 / RATE_HZ
        )
        first = source.next_packet()
        assert first.timestamp_s == pytest.approx(5 / RATE_HZ)

    def test_rewind(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=4)
        source = ReplayPacketSource(backend, "t", SimulatedClock())
        while not source.exhausted:
            source.next_packet()
        source.rewind()
        assert not source.exhausted
        assert source.next_packet().timestamp_s == 0.0

    def test_torn_store_replays_recoverable_prefix(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=10)
        name = "t-00000.cst"
        backend.truncate(name, len(backend.read_bytes(name)) - 25)
        source = ReplayPacketSource(backend, "t", SimulatedClock())
        assert source.n_packets_total == 9
        assert not source.salvage_report.clean

    def test_unreplayable_store_raises_with_report(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=3)
        backend.truncate("t-00000.cst", 4)
        with pytest.raises(TraceStoreError, match="no replayable") as excinfo:
            ReplayPacketSource(backend, "t", SimulatedClock())
        assert excinfo.value.report.n_records_recovered == 0

    def test_csi_matrix_stacks_recovered_packets(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=6)
        source = ReplayPacketSource(backend, "t", SimulatedClock())
        assert source.csi_matrix().shape == (6, N_RX, N_SUB)


class TestRecordingTap:
    def make_tap(self, packets, backend, **overrides):
        fields = dict(sample_rate_hz=RATE_HZ, session_id="tap-test")
        fields.update(overrides)
        return RecordingTap(_ListSource(packets), backend, "rec", **fields)

    def test_tap_is_transparent_to_the_consumer(self):
        packets = make_packets(8)
        tap = self.make_tap(packets, MemoryBackend())
        seen = []
        while not tap.exhausted:
            seen.append(tap.next_packet())
        assert len(seen) == 8
        for packet, (ts, csi) in zip(seen, packets):
            assert packet.timestamp_s == ts
            np.testing.assert_array_equal(packet.csi, csi)

    def test_tap_records_the_stream(self):
        packets = make_packets(8)
        backend = MemoryBackend()
        tap = self.make_tap(packets, backend)
        while not tap.exhausted:
            tap.next_packet()
        tap.close()
        recovered, header, report = TraceReader(backend, "rec").read_packets()
        assert report.clean
        assert len(recovered) == 8
        assert header.session_id == "tap-test"
        assert tap.n_recorded == 8

    def test_crash_resume_rotates_segment_and_preserves_torn_tail(self):
        packets = make_packets(12)
        backend = MemoryBackend()
        tap = self.make_tap(packets, backend)
        for _ in range(6):
            tap.next_packet()
        tap.crash_and_resume(torn_tail_bytes=20)
        assert tap.n_crashes == 1
        while not tap.exhausted:
            tap.next_packet()
        tap.close()
        reader = TraceReader(backend, "rec")
        assert len(reader.segment_names()) == 2
        recovered, _, report = reader.read_packets()
        # The torn tail costs exactly the one record it cut into.
        assert len(recovered) == 11
        assert any(i.kind == "torn-tail" for i in report.issues)

    def test_crash_without_resume_stops_recording_only(self):
        packets = make_packets(10)
        backend = MemoryBackend()
        tap = self.make_tap(packets, backend)
        for _ in range(4):
            tap.next_packet()
        tap.crash()
        assert not tap.recording
        remaining = 0
        while tap.next_packet() is not None:
            remaining += 1
        assert remaining == 6  # the consumer still gets every packet
        recovered, _, _ = TraceReader(backend, "rec").read_packets()
        assert len(recovered) == 4

    def test_digest_is_deterministic(self):
        def record():
            backend = MemoryBackend()
            tap = self.make_tap(make_packets(10), backend)
            for _ in range(5):
                tap.next_packet()
            tap.crash_and_resume(torn_tail_bytes=13)
            while not tap.exhausted:
                tap.next_packet()
            tap.close()
            return store_digest(backend, "rec")

        first, second = record(), record()
        assert first == second
        assert len(first["segments"]) == 2
        assert all("sha256" in seg for seg in first["segments"])
        assert first["salvage"]["n_records_recovered"] == 9

    def test_negative_torn_tail_rejected(self):
        tap = self.make_tap(make_packets(2), MemoryBackend())
        with pytest.raises(TraceStoreError, match=">= 0"):
            tap.crash(torn_tail_bytes=-1)
