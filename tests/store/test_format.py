"""Unit tests for the ``.cst`` framing and parsing primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceFormatError, TraceStoreError
from repro.store.format import (
    FRAME_HEADER_BYTES,
    FRAME_SYNC,
    KIND_PACKET,
    MAX_PAYLOAD_BYTES,
    SEGMENT_MAGIC,
    SegmentHeader,
    check_segment_magic,
    decode_header_payload,
    decode_packet_payload,
    encode_frame,
    encode_header,
    encode_packet,
    index_name,
    payload_crc,
    segment_name,
    unpack_frame_header,
)


def make_header(**overrides) -> SegmentHeader:
    fields = dict(
        session_id="s",
        segment_index=0,
        n_rx=2,
        n_subcarriers=3,
        csi_dtype="complex64",
        sample_rate_hz=30.0,
        subcarrier_indices=(0, 1, 2),
        meta={"k": 1},
    )
    fields.update(overrides)
    return SegmentHeader(**fields)


class TestFrame:
    def test_frame_layout_round_trips(self):
        payload = b"hello, frames"
        frame = encode_frame(KIND_PACKET, payload)
        assert frame.startswith(FRAME_SYNC)
        assert len(frame) == FRAME_HEADER_BYTES + len(payload)
        kind, length, crc = unpack_frame_header(frame[len(FRAME_SYNC):])
        assert kind == KIND_PACKET
        assert length == len(payload)
        assert crc == payload_crc(payload)
        assert frame[FRAME_HEADER_BYTES:] == payload

    def test_oversized_payload_rejected(self):
        with pytest.raises(TraceStoreError, match="frame cap"):
            encode_frame(KIND_PACKET, b"\x00" * (MAX_PAYLOAD_BYTES + 1))

    def test_sync_marker_has_no_repeated_byte(self):
        # A self-overlapping marker could lock the resync scan onto a
        # half-marker; the format relies on the two bytes differing.
        assert FRAME_SYNC[0] != FRAME_SYNC[1]


class TestHeader:
    def test_header_round_trips(self):
        header = make_header()
        assert decode_header_payload(encode_header(header)) == header

    def test_header_payload_is_canonical_json(self):
        payload = encode_header(make_header())
        text = payload.decode("utf-8")
        assert ": " not in text and ", " not in text
        keys = [part.split('"')[1] for part in text.split(",") if '":' in part]
        assert keys == sorted(keys)

    def test_malformed_header_payload_raises_store_error(self):
        for junk in (b"not json", b"[1,2]", b'{"n_rx": 2}'):
            with pytest.raises(TraceStoreError, match="malformed segment"):
                decode_header_payload(junk)

    def test_header_validation(self):
        with pytest.raises(TraceStoreError, match="positive geometry"):
            make_header(n_rx=0)
        with pytest.raises(TraceStoreError, match="unsupported CSI dtype"):
            make_header(csi_dtype="float32")
        with pytest.raises(TraceStoreError, match="sample_rate_hz"):
            make_header(sample_rate_hz=0.0)

    def test_packet_payload_bytes(self):
        assert make_header().packet_payload_bytes == 8 + 2 * 3 * 8
        assert (
            make_header(csi_dtype="complex128").packet_payload_bytes
            == 8 + 2 * 3 * 16
        )


class TestPacket:
    @pytest.mark.parametrize("dtype", ["complex64", "complex128"])
    def test_packet_round_trips(self, dtype):
        header = make_header(csi_dtype=dtype)
        rng = np.random.default_rng(3)
        csi = (
            rng.standard_normal((2, 3)) + 1j * rng.standard_normal((2, 3))
        ).astype(dtype)
        payload = encode_packet(csi, 1.25, header)
        ts, decoded = decode_packet_payload(payload, header)
        assert ts == 1.25
        np.testing.assert_array_equal(decoded, csi)
        assert decoded.dtype == np.dtype(dtype)

    def test_wrong_shape_rejected(self):
        with pytest.raises(TraceStoreError, match="does not match"):
            encode_packet(np.zeros((3, 2), dtype=np.complex64), 0.0, make_header())

    def test_wrong_payload_size_rejected(self):
        with pytest.raises(TraceStoreError, match="requires exactly"):
            decode_packet_payload(b"\x00" * 10, make_header())


class TestMagic:
    def test_exact_magic_accepted(self):
        check_segment_magic(SEGMENT_MAGIC)

    def test_future_version_raises_format_error(self):
        with pytest.raises(TraceFormatError) as excinfo:
            check_segment_magic(b"CSTSEG99")
        assert "'99'" in str(excinfo.value)
        assert "'01'" in str(excinfo.value)

    def test_non_segment_raises_store_error(self):
        with pytest.raises(TraceStoreError, match="not a CST segment"):
            check_segment_magic(b"PNG\r\n\x1a\n\x00")


class TestNames:
    def test_segment_and_index_names(self):
        assert segment_name("trace", 0) == "trace-00000.cst"
        assert segment_name("trace", 123) == "trace-00123.cst"
        assert index_name("trace") == "trace.cidx"

    def test_negative_segment_index_rejected(self):
        with pytest.raises(TraceStoreError, match=">= 0"):
            segment_name("trace", -1)
