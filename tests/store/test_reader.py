"""Unit tests for the salvaging ``TraceReader``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceStoreError
from repro.obs import Instrumentation, MetricsRegistry
from repro.service.clock import SimulatedClock
from repro.store import (
    MemoryBackend,
    SalvageIssue,
    TraceReader,
    scan_segment,
)
from repro.store.format import SEGMENT_MAGIC, segment_name

from .conftest import write_store


def metric(registry, name):
    return sum(
        sample["value"]
        for sample in registry.snapshot()["metrics"]
        if sample["name"] == name
    )


class TestCleanRead:
    def test_clean_store_reports_clean(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=8)
        _, report = TraceReader(backend, "t").scan()
        assert report.clean
        assert report.n_records_recovered == 8
        assert report.n_records_lost == 0
        assert report.n_bytes_skipped == 0
        assert report.issues == ()

    def test_iter_packets_matches_read_packets(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=12, rotate_bytes=4096)
        reader = TraceReader(backend, "t")
        eager, _, _ = reader.read_packets()
        lazy = list(reader.iter_packets())
        assert len(lazy) == len(eager)
        for (ts_a, csi_a), (ts_b, csi_b) in zip(lazy, eager):
            assert ts_a == ts_b
            np.testing.assert_array_equal(csi_a, csi_b)

    def test_missing_store_raises(self):
        with pytest.raises(TraceStoreError, match="no segments"):
            TraceReader(MemoryBackend(), "ghost").scan()

    def test_empty_stem_rejected(self):
        with pytest.raises(TraceStoreError, match="non-empty"):
            TraceReader(MemoryBackend(), "")


class TestSalvage:
    def test_torn_tail_recovers_prefix(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=10)
        name = segment_name("t", 0)
        backend.truncate(name, len(backend.read_bytes(name)) - 17)
        _, report = TraceReader(backend, "t").scan()
        assert report.n_records_recovered == 9
        assert [i.kind for i in report.issues] == ["torn-tail"]
        assert report.n_bytes_skipped > 0

    def test_bit_flip_costs_exactly_one_record(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=10)
        name = segment_name("t", 0)
        # Flip a byte well inside a mid-file packet payload.
        offset = len(backend.read_bytes(name)) // 2
        original = backend.read_bytes(name)[offset]
        backend.corrupt(name, offset, original ^ 0x40)
        _, report = TraceReader(backend, "t").scan()
        assert report.n_records_recovered == 9
        assert len(report.issues) == 1
        assert report.issues[0].kind in ("crc-mismatch", "desync", "bad-length", "bad-kind")

    def test_forged_version_digit_still_salvages(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=6)
        name = segment_name("t", 0)
        backend.corrupt(name, len(SEGMENT_MAGIC) - 1, ord("7"))
        _, report = TraceReader(backend, "t").scan()
        # One flipped preamble byte must not cost the segment's records.
        assert report.n_records_recovered == 6
        assert [i.kind for i in report.issues] == ["version-mismatch"]
        assert "unsupported segment format version" in report.issues[0].detail

    def test_garbage_magic_still_salvages(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=6)
        name = segment_name("t", 0)
        for k in range(4):
            backend.corrupt(name, k, ord("?"))
        _, report = TraceReader(backend, "t").scan()
        assert report.n_records_recovered == 6
        assert [i.kind for i in report.issues] == ["bad-magic"]

    def test_header_carried_across_segments(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=60, rotate_bytes=4096)
        reader = TraceReader(backend, "t")
        names = reader.segment_names()
        assert len(names) >= 2
        # Destroy the second segment's header frame payload: its packets
        # must decode via the header carried from segment 0.
        data = backend.read_bytes(names[1])
        offset = len(SEGMENT_MAGIC) + 15  # inside the header-frame JSON
        backend.corrupt(names[1], offset, data[offset] ^ 0xFF)
        _, report = reader.scan()
        assert report.n_records_recovered >= 58
        assert any(i.segment == names[1] for i in report.issues)

    def test_scan_segment_never_raises_on_any_corruption(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=4)
        data = backend.read_bytes(segment_name("t", 0))
        rng = np.random.default_rng(5)
        for _ in range(200):
            corrupted = bytearray(data)
            for _ in range(int(rng.integers(1, 6))):
                corrupted[int(rng.integers(0, len(data)))] = int(
                    rng.integers(0, 256)
                )
            scan = scan_segment(bytes(corrupted), "seg")  # must not raise
            assert len(scan.packets) <= 4


class TestReadTrace:
    def test_read_trace_carries_salvage_meta(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=10)
        trace, report = TraceReader(backend, "t").read_trace()
        assert trace.csi.shape[0] == 10
        assert trace.meta["salvage"]["clean"] is True
        assert trace.meta["salvage"] == report.to_jsonable()

    def test_nothing_recoverable_raises_with_report(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=3)
        name = segment_name("t", 0)
        backend.truncate(name, 5)  # inside the magic
        with pytest.raises(TraceStoreError, match="no recoverable") as excinfo:
            TraceReader(backend, "t").read_trace()
        assert excinfo.value.report.n_records_recovered == 0


class TestReportShapes:
    def test_issue_kind_validated(self):
        with pytest.raises(TraceStoreError, match="unknown salvage issue"):
            SalvageIssue(kind="nonsense", segment="s", offset=0, n_bytes_skipped=0)

    def test_report_round_trips_to_json(self):
        backend = MemoryBackend()
        write_store(backend, n_packets=5)
        backend.truncate(segment_name("t", 0), 100)
        _, report = TraceReader(backend, "t").scan()
        jsonable = report.to_jsonable()
        assert jsonable["n_segments_scanned"] == 1
        assert jsonable["clean"] is False
        assert jsonable["issues"][0]["kind"] == report.issues[0].kind


class TestObsCounters:
    def test_salvage_counters_recorded(self):
        registry = MetricsRegistry()
        obs = Instrumentation(clock=SimulatedClock(), registry=registry)
        backend = MemoryBackend()
        write_store(backend, n_packets=10)
        name = segment_name("t", 0)
        backend.truncate(name, len(backend.read_bytes(name)) - 30)
        TraceReader(backend, "t", instrumentation=obs).scan()
        assert metric(registry, "store_records_salvaged_total") == 9
        assert metric(registry, "store_bytes_skipped_total") > 0
