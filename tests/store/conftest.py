"""Shared helpers for the trace-store suite: tiny deterministic stores."""

from __future__ import annotations

import numpy as np

from repro.store import MemoryBackend, TraceWriter

N_RX = 2
N_SUB = 4
RATE_HZ = 30.0


def make_packets(n: int, seed: int = 0) -> list[tuple[float, np.ndarray]]:
    """``n`` deterministic complex64 packets at RATE_HZ spacing."""
    rng = np.random.default_rng(seed)
    packets = []
    for k in range(n):
        csi = (
            rng.standard_normal((N_RX, N_SUB))
            + 1j * rng.standard_normal((N_RX, N_SUB))
        ).astype(np.complex64)
        packets.append((k / RATE_HZ, csi))
    return packets


def write_store(
    backend: MemoryBackend,
    stem: str = "t",
    *,
    n_packets: int = 10,
    rotate_bytes: int = 1024 * 1024,
    seed: int = 0,
    flush: bool = True,
) -> list[tuple[float, np.ndarray]]:
    """Write a small store through ``TraceWriter``; return the truth."""
    packets = make_packets(n_packets, seed=seed)
    writer = TraceWriter(
        backend,
        stem,
        session_id="test",
        n_rx=N_RX,
        n_subcarriers=N_SUB,
        sample_rate_hz=RATE_HZ,
        subcarrier_indices=tuple(range(N_SUB)),
        rotate_bytes=rotate_bytes,
    )
    for ts, csi in packets:
        writer.append(csi, ts)
    if flush:
        writer.close()
    else:
        writer.abandon()
    return packets
