"""Unit tests for the directory and in-memory storage backends."""

from __future__ import annotations

import pytest

from repro.errors import TraceStoreError
from repro.store import DirectoryBackend, MemoryBackend


class TestDirectoryBackend:
    def test_append_read_round_trip(self, tmp_path):
        backend = DirectoryBackend(str(tmp_path / "store"))
        handle = backend.open_append("a.cst")
        handle.write(b"one")
        handle.write(b"two")
        handle.flush()
        handle.close()
        assert backend.read_bytes("a.cst") == b"onetwo"
        assert backend.exists("a.cst")
        assert not backend.exists("b.cst")
        assert backend.list_names() == ["a.cst"]

    def test_append_reopens_existing_file(self, tmp_path):
        backend = DirectoryBackend(str(tmp_path))
        first = backend.open_append("a")
        first.write(b"abc")
        first.close()
        second = backend.open_append("a")
        second.write(b"def")
        second.close()
        assert backend.read_bytes("a") == b"abcdef"

    def test_replace_is_whole_file(self, tmp_path):
        backend = DirectoryBackend(str(tmp_path))
        backend.replace_bytes("idx", b"v1")
        backend.replace_bytes("idx", b"version-two")
        assert backend.read_bytes("idx") == b"version-two"
        # No leftover temp file from the write-rename dance.
        assert backend.list_names() == ["idx"]

    def test_missing_file_raises(self, tmp_path):
        backend = DirectoryBackend(str(tmp_path))
        with pytest.raises(TraceStoreError, match="no such store file"):
            backend.read_bytes("ghost")

    @pytest.mark.parametrize("name", ["", ".", "..", "a/b"])
    def test_path_escapes_rejected(self, tmp_path, name):
        backend = DirectoryBackend(str(tmp_path))
        with pytest.raises(TraceStoreError, match="invalid store file name"):
            backend.open_append(name)


class TestMemoryBackend:
    def test_append_read_round_trip(self):
        backend = MemoryBackend()
        handle = backend.open_append("a")
        assert handle.write(b"one") == 3
        handle.close()
        assert backend.read_bytes("a") == b"one"
        assert backend.list_names() == ["a"]

    def test_write_after_close_rejected(self):
        backend = MemoryBackend()
        handle = backend.open_append("a")
        handle.close()
        with pytest.raises(TraceStoreError, match="closed append handle"):
            handle.write(b"late")

    def test_read_snapshots_are_independent(self):
        backend = MemoryBackend()
        handle = backend.open_append("a")
        handle.write(b"abc")
        snapshot = backend.read_bytes("a")
        handle.write(b"def")
        assert snapshot == b"abc"
        assert backend.read_bytes("a") == b"abcdef"

    def test_corrupt_and_truncate_hooks(self):
        backend = MemoryBackend()
        handle = backend.open_append("a")
        handle.write(b"abcdef")
        handle.close()
        backend.corrupt("a", 1, ord("X"))
        assert backend.read_bytes("a") == b"aXcdef"
        backend.truncate("a", 3)
        assert backend.read_bytes("a") == b"aXc"
        with pytest.raises(TraceStoreError, match="outside file"):
            backend.corrupt("a", 99, 0)
        with pytest.raises(TraceStoreError, match="no such store file"):
            backend.corrupt("ghost", 0, 0)

    def test_missing_file_raises(self):
        with pytest.raises(TraceStoreError, match="no such store file"):
            MemoryBackend().read_bytes("ghost")
