"""Unit tests for seeded storage fault injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TornWriteError, TraceStoreError
from repro.store import FaultyBackend, FaultyFile, MemoryBackend, TornWriteFile
from repro.store.faults import flip_bit, truncate_at


class TestPrimitives:
    def test_flip_bit_flips_exactly_one_bit(self):
        data = b"\x00\x00\x00"
        flipped = flip_bit(data, 1, 3)
        assert flipped == b"\x00\x08\x00"
        # Involution: flipping twice restores the original.
        assert flip_bit(flipped, 1, 3) == data

    def test_flip_bit_range_checks(self):
        with pytest.raises(TraceStoreError, match="outside buffer"):
            flip_bit(b"ab", 2, 0)
        with pytest.raises(TraceStoreError, match="bit index"):
            flip_bit(b"ab", 0, 8)

    def test_truncate_at(self):
        assert truncate_at(b"abcdef", 2) == b"ab"
        assert truncate_at(b"abcdef", 0) == b""
        assert truncate_at(b"abcdef", -3) == b""
        assert truncate_at(b"abcdef", 99) == b"abcdef"


class TestTornWriteFile:
    def test_writes_within_budget_pass_through(self):
        backend = MemoryBackend()
        torn = TornWriteFile(backend.open_append("a"), crash_after_bytes=10)
        assert torn.write(b"12345") == 5
        assert torn.write(b"67890") == 10 - 5
        assert not torn.crashed
        assert backend.read_bytes("a") == b"1234567890"

    def test_crossing_write_is_torn_at_the_budget(self):
        backend = MemoryBackend()
        torn = TornWriteFile(backend.open_append("a"), crash_after_bytes=4)
        torn.write(b"12")
        with pytest.raises(TornWriteError) as excinfo:
            torn.write(b"3456")
        assert excinfo.value.n_bytes_persisted == 2
        assert torn.crashed
        assert torn.n_bytes_written == 4
        # The torn prefix is on "disk"; nothing past the budget is.
        assert backend.read_bytes("a") == b"1234"

    def test_post_crash_calls_fail_with_zero_persisted(self):
        torn = TornWriteFile(MemoryBackend().open_append("a"), 0)
        with pytest.raises(TornWriteError):
            torn.write(b"x")
        with pytest.raises(TornWriteError) as excinfo:
            torn.write(b"y")
        assert excinfo.value.n_bytes_persisted == 0
        with pytest.raises(TornWriteError):
            torn.flush()
        torn.close()  # close is always allowed

    def test_negative_budget_rejected(self):
        with pytest.raises(TraceStoreError, match=">= 0"):
            TornWriteFile(MemoryBackend().open_append("a"), -1)


class TestFaultyFile:
    def test_seeded_faults_are_reproducible(self):
        def run(seed: int) -> bytes:
            backend = MemoryBackend()
            faulty = FaultyFile(
                backend.open_append("a"),
                np.random.default_rng(seed),
                torn_write_probability=0.2,
                bit_flip_probability=0.3,
            )
            for k in range(50):
                try:
                    faulty.write(bytes([k]) * 7)
                except TornWriteError:
                    break
            return backend.read_bytes("a")

        assert run(7) == run(7)

    def test_zero_probabilities_are_transparent(self):
        backend = MemoryBackend()
        faulty = FaultyFile(
            backend.open_append("a"), np.random.default_rng(0)
        )
        faulty.write(b"clean")
        faulty.flush()
        faulty.close()
        assert backend.read_bytes("a") == b"clean"

    def test_probability_validation(self):
        with pytest.raises(TraceStoreError, match="torn_write_probability"):
            FaultyFile(
                MemoryBackend().open_append("a"),
                np.random.default_rng(0),
                torn_write_probability=1.5,
            )


class TestFaultyBackend:
    def test_read_faults_never_modify_stored_bytes(self):
        inner = MemoryBackend()
        handle = inner.open_append("a")
        handle.write(b"pristine-stored-content")
        handle.close()
        faulty = FaultyBackend(
            inner,
            np.random.default_rng(1),
            read_flip_probability=1.0,
            short_read_probability=1.0,
        )
        corrupted = faulty.read_bytes("a")
        assert corrupted != b"pristine-stored-content"
        assert inner.read_bytes("a") == b"pristine-stored-content"

    def test_write_path_wraps_with_faulty_file(self):
        faulty = FaultyBackend(
            MemoryBackend(),
            np.random.default_rng(0),
            torn_write_probability=1.0,
        )
        handle = faulty.open_append("a")
        with pytest.raises(TornWriteError):
            handle.write(b"doomed-write")

    def test_pass_throughs(self):
        inner = MemoryBackend()
        faulty = FaultyBackend(inner, np.random.default_rng(0))
        faulty.replace_bytes("idx", b"data")
        assert faulty.exists("idx")
        assert faulty.list_names() == ["idx"]
        assert faulty.read_bytes("idx") == b"data"

    def test_probability_validation(self):
        with pytest.raises(TraceStoreError, match="short_read_probability"):
            FaultyBackend(
                MemoryBackend(),
                np.random.default_rng(0),
                short_read_probability=-0.1,
            )
