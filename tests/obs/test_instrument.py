"""Instrumentation facade: enabled recording vs the null object."""

import pytest

from repro.obs import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    MetricsRegistry,
    Tracer,
)
from repro.service.clock import SimulatedClock


class TestInstrumentation:
    def test_stage_times_into_component_histogram(self):
        clock = SimulatedClock()
        obs = Instrumentation(clock=clock)
        with obs.stage("dwt"):
            clock.advance(0.125)
        hist = obs.registry.histogram(
            "pipeline_stage_duration_s", labels={"stage": "dwt"}
        )
        assert hist.count == 1
        assert hist.sum == pytest.approx(0.125)

    def test_stage_component_prefix(self):
        clock = SimulatedClock()
        obs = Instrumentation(clock=clock)
        with obs.stage("reclock", component="dsp"):
            clock.advance(1.0)
        names = [series.name for series in obs.registry]
        assert names == ["dsp_stage_duration_s"]

    def test_stage_opens_tracer_span_when_attached(self):
        clock = SimulatedClock()
        tracer = Tracer(clock)
        obs = Instrumentation(clock=clock, tracer=tracer)
        with obs.stage("calibration"):
            clock.advance(0.5)
        (span,) = tracer.spans
        assert span.name == "pipeline.calibration"
        assert span.duration_s == pytest.approx(0.5)

    def test_count_gauge_observe_land_in_registry(self):
        obs = Instrumentation(clock=SimulatedClock())
        obs.count("reads_total", labels={"subject": "s1"})
        obs.count("reads_total", amount=2.0, labels={"subject": "s1"})
        obs.gauge_set("depth_packets", 42.0)
        obs.observe("latency_s", 0.3, bucket_bounds=(1.0,))
        reg = obs.registry
        assert reg.counter("reads_total", labels={"subject": "s1"}).value == 3.0
        assert reg.gauge("depth_packets").value == 42.0
        assert reg.histogram("latency_s", bucket_bounds=(1.0,)).count == 1

    def test_shares_registry_when_given_one(self):
        registry = MetricsRegistry()
        obs = Instrumentation(clock=SimulatedClock(), registry=registry)
        obs.count("x_total")
        assert registry.counter("x_total").value == 1.0


class TestNullInstrumentation:
    def test_records_nothing(self):
        with NULL_INSTRUMENTATION.stage("dwt"):
            pass
        NULL_INSTRUMENTATION.count("x_total")
        NULL_INSTRUMENTATION.gauge_set("y_level", 1.0)
        NULL_INSTRUMENTATION.observe("z_s", 1.0)
        assert len(NULL_INSTRUMENTATION.registry) == 0

    def test_disabled_stage_is_shared_null_context(self):
        a = NULL_INSTRUMENTATION.stage("a")
        b = NULL_INSTRUMENTATION.stage("b")
        assert a is b
