"""Registry semantics: get-or-create, unit discipline, determinism."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("reads_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_rejects_decrease(self):
        c = MetricsRegistry().counter("reads_total")
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            c.inc(-1.0)


class TestGauge:
    def test_set_and_inc(self):
        g = MetricsRegistry().gauge("depth_packets")
        g.set(7.0)
        g.inc(-2.0)
        assert g.value == pytest.approx(5.0)


class TestHistogram:
    def test_buckets_are_upper_bounds_with_overflow(self):
        h = MetricsRegistry().histogram(
            "read_duration_s", bucket_bounds=(1.0, 10.0)
        )
        h.observe(0.5)   # <= 1.0
        h.observe(1.0)   # <= 1.0 (bounds are inclusive)
        h.observe(5.0)   # <= 10.0
        h.observe(99.0)  # overflow
        assert h.bucket_counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(105.5)

    def test_rejects_empty_or_descending_bounds(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.histogram("a_s", bucket_bounds=())
        with pytest.raises(ConfigurationError):
            reg.histogram("b_s", bucket_bounds=(2.0, 1.0))


class TestMetricsRegistry:
    def test_get_or_create_returns_same_series(self):
        reg = MetricsRegistry()
        a = reg.counter("reads_total", labels={"subject": "s1"})
        b = reg.counter("reads_total", labels={"subject": "s1"})
        assert a is b
        assert len(reg) == 1

    def test_label_order_does_not_fork_series(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labels={"a": "1", "b": "2"})
        b = reg.counter("x_total", labels={"b": "2", "a": "1"})
        assert a is b

    def test_distinct_labels_make_distinct_series(self):
        reg = MetricsRegistry()
        a = reg.counter("reads_total", labels={"subject": "s1"})
        b = reg.counter("reads_total", labels={"subject": "s2"})
        assert a is not b
        assert len(reg) == 2

    def test_name_without_unit_suffix_is_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("pipeline_errors")

    def test_kind_conflict_is_rejected(self):
        reg = MetricsRegistry()
        reg.counter("reads_total")
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.gauge("reads_total")

    def test_histogram_bound_conflict_is_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("size_packets", bucket_bounds=DEFAULT_SIZE_BUCKETS)
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.histogram("size_packets", bucket_bounds=(1.0, 2.0))

    def test_iteration_is_sorted_regardless_of_creation_order(self):
        reg = MetricsRegistry()
        reg.counter("z_total")
        reg.gauge("a_level")
        reg.counter("m_total", labels={"k": "2"})
        reg.counter("m_total", labels={"k": "1"})
        names = [(s.name, s.labels) for s in reg]
        assert names == sorted(names)

    def test_snapshot_is_creation_order_independent(self):
        reg1 = MetricsRegistry()
        reg1.counter("a_total").inc()
        reg1.gauge("b_level").set(2.0)
        reg2 = MetricsRegistry()
        reg2.gauge("b_level").set(2.0)
        reg2.counter("a_total").inc()
        assert reg1.snapshot() == reg2.snapshot()

    def test_snapshot_carries_schema_marker(self):
        snap = MetricsRegistry().snapshot()
        assert snap["schema"] == "repro.obs/v1"
        assert snap["metrics"] == []

    def test_instrument_classes_are_exported(self):
        reg = MetricsRegistry()
        assert isinstance(reg.counter("a_total"), Counter)
        assert isinstance(reg.gauge("b_level"), Gauge)
        assert isinstance(reg.histogram("c_s"), Histogram)
