"""Exporters: canonical JSON, Prometheus text, table, and diff."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    MetricsRegistry,
    canonical_json,
    diff_snapshots,
    load_snapshot,
    render_prometheus,
    render_table,
)


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter(
        "reads_total", help_text="Reads.", labels={"subject": "s1"}
    ).inc(3.0)
    reg.gauge("depth_packets").set(7.0)
    hist = reg.histogram("latency_s", bucket_bounds=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(9.0)
    return reg


class TestCanonicalJson:
    def test_round_trips_through_load(self):
        snap = _sample_registry().snapshot()
        assert load_snapshot(canonical_json(snap)) == snap

    def test_equal_registries_serialize_byte_identically(self):
        a = canonical_json(_sample_registry().snapshot())
        b = canonical_json(_sample_registry().snapshot())
        assert a == b

    def test_ends_with_single_newline(self):
        text = canonical_json(MetricsRegistry().snapshot())
        assert text.endswith("\n") and not text.endswith("\n\n")


class TestLoadSnapshot:
    def test_rejects_non_json(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_snapshot("{nope")

    def test_rejects_missing_schema_marker(self):
        with pytest.raises(ConfigurationError, match="schema marker"):
            load_snapshot('{"metrics": []}')


class TestRenderPrometheus:
    def test_headers_series_and_cumulative_buckets(self):
        text = render_prometheus(_sample_registry().snapshot())
        assert "# TYPE reads_total counter" in text
        assert "# HELP reads_total Reads." in text
        assert 'reads_total{subject="s1"} 3.0' in text
        assert "# TYPE depth_packets gauge" in text
        assert "depth_packets 7.0" in text
        # Buckets are cumulative: 1 under 0.1, 2 under 1.0, 3 under +Inf.
        assert 'latency_s_bucket{le="0.1"} 1' in text
        assert 'latency_s_bucket{le="1.0"} 2' in text
        assert 'latency_s_bucket{le="+Inf"} 3' in text
        assert "latency_s_count 3" in text

    def test_header_emitted_once_per_family(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labels={"k": "1"})
        reg.counter("x_total", labels={"k": "2"})
        text = render_prometheus(reg.snapshot())
        assert text.count("# TYPE x_total counter") == 1


class TestRenderTable:
    def test_rows_and_histogram_summary(self):
        text = render_table(_sample_registry().snapshot())
        assert "reads_total" in text
        assert "subject=s1" in text
        assert "count=3" in text  # histogram summarized, not dumped

    def test_empty_snapshot(self):
        assert render_table(MetricsRegistry().snapshot()) == (
            "(no metrics recorded)\n"
        )


class TestDiffSnapshots:
    def test_equal_snapshots_diff_empty(self):
        a = _sample_registry().snapshot()
        b = _sample_registry().snapshot()
        assert diff_snapshots(a, b) == []

    def test_added_removed_changed(self):
        old_reg = MetricsRegistry()
        old_reg.counter("kept_total").inc()
        old_reg.counter("gone_total").inc()
        new_reg = MetricsRegistry()
        new_reg.counter("kept_total").inc(5.0)
        new_reg.counter("fresh_total").inc()
        changes = {
            (c["name"], c["change"])
            for c in diff_snapshots(old_reg.snapshot(), new_reg.snapshot())
        }
        assert changes == {
            ("kept_total", "changed"),
            ("gone_total", "removed"),
            ("fresh_total", "added"),
        }

    def test_label_fork_is_added_not_changed(self):
        old_reg = MetricsRegistry()
        old_reg.counter("x_total", labels={"k": "1"}).inc()
        new_reg = MetricsRegistry()
        new_reg.counter("x_total", labels={"k": "1"}).inc()
        new_reg.counter("x_total", labels={"k": "2"}).inc()
        (change,) = diff_snapshots(old_reg.snapshot(), new_reg.snapshot())
        assert change["change"] == "added"
        assert change["labels"] == {"k": "2"}
