"""Make ``tools/phaselint`` importable for the naming cross-check test.

The metric-name unit-suffix vocabulary must stay equal to phaselint's
PL003 ``unit-suffixes`` defaults; the cross-check imports the linter's
config, which lives outside the installed package.
"""

import sys
from pathlib import Path

_TOOLS = Path(__file__).resolve().parents[2] / "tools"
if str(_TOOLS) not in sys.path:
    sys.path.insert(0, str(_TOOLS))
