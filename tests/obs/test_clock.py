"""Clock protocol: the wall clock ticks, the simulated clock satisfies it."""

import pytest

from repro.obs import Clock, WallClock
from repro.service.clock import SimulatedClock


class TestWallClock:
    def test_is_monotone_nondecreasing(self):
        clock = WallClock()
        readings = [clock.now_s for _ in range(5)]
        assert all(b >= a for a, b in zip(readings, readings[1:]))

    def test_satisfies_protocol(self):
        assert isinstance(WallClock(), Clock)


class TestSimulatedClockInterop:
    """The service's SimulatedClock is a valid obs clock — the property
    the deterministic-trace acceptance test rests on."""

    def test_satisfies_protocol(self):
        assert isinstance(SimulatedClock(), Clock)

    def test_reads_simulated_time(self):
        clock = SimulatedClock(10.0)
        assert clock.now_s == pytest.approx(10.0)
        clock.advance(2.5)
        assert clock.now_s == pytest.approx(12.5)
