"""Metric/label naming discipline and its link to phaselint PL003."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    METRIC_UNIT_SUFFIXES,
    validate_label_name,
    validate_metric_name,
)


class TestValidateMetricName:
    @pytest.mark.parametrize(
        "name",
        [
            "pipeline_stage_duration_s",
            "monitor_rejected_windows_total",
            "supervisor_checkpoint_size_packets",
            "supervisor_fallback_level",
            "dsp_reclock_gap_fraction",
            "heart_rate_bpm",
        ],
    )
    def test_accepts_unit_suffixed_names(self, name):
        assert validate_metric_name(name) == name

    @pytest.mark.parametrize(
        "name",
        [
            "pipeline_errors",       # no unit suffix
            "window_latency",        # no unit suffix
            "Duration_s",            # not snake_case
            "monitor.stage.s",       # dots are not legal
            "",
            "_s",
        ],
    )
    def test_rejects_bad_names(self, name):
        with pytest.raises(ConfigurationError):
            validate_metric_name(name)

    def test_error_names_the_offending_metric(self):
        with pytest.raises(ConfigurationError, match="window_latency"):
            validate_metric_name("window_latency")


class TestValidateLabelName:
    def test_accepts_snake_case(self):
        assert validate_label_name("stage") == "stage"
        assert validate_label_name("from_state") == "from_state"

    @pytest.mark.parametrize("name", ["Stage", "le bad", "", "9lives"])
    def test_rejects_bad_label_names(self, name):
        with pytest.raises(ConfigurationError):
            validate_label_name(name)


class TestVocabularyMatchesPhaselint:
    """METRIC_UNIT_SUFFIXES and phaselint's PL003 defaults are the same
    vocabulary — a suffix added to one side must be added to the other."""

    def test_sets_are_equal(self):
        from phaselint.config import LintConfig

        assert METRIC_UNIT_SUFFIXES == frozenset(LintConfig().unit_suffixes)
