"""Tracer/Span/StageTimer semantics on a simulated clock."""

import pytest

from repro.obs import MetricsRegistry, Span, StageTimer, Tracer
from repro.service.clock import SimulatedClock


class TestTracer:
    def test_span_records_interval_on_clock(self):
        clock = SimulatedClock(100.0)
        tracer = Tracer(clock)
        with tracer.span("dwt"):
            clock.advance(0.25)
        (span,) = tracer.spans
        assert span.name == "dwt"
        assert span.start_s == pytest.approx(100.0)
        assert span.end_s == pytest.approx(100.25)
        assert span.duration_s == pytest.approx(0.25)

    def test_nested_spans_carry_depth(self):
        clock = SimulatedClock()
        tracer = Tracer(clock)
        with tracer.span("outer"):
            with tracer.span("inner"):
                clock.advance(1.0)
        outer, inner = tracer.spans
        assert outer.depth == 0
        assert inner.depth == 1

    def test_open_span_has_zero_duration(self):
        span = Span(name="x", start_s=1.0)
        assert span.end_s is None
        assert span.duration_s == 0.0

    def test_exception_still_closes_span(self):
        clock = SimulatedClock()
        tracer = Tracer(clock)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                clock.advance(2.0)
                raise RuntimeError("stage failed")
        (span,) = tracer.spans
        assert span.end_s == pytest.approx(2.0)

    def test_retention_cap_counts_drops(self):
        tracer = Tracer(SimulatedClock(), max_spans=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.n_dropped_total == 3

    def test_clear_resets_spans_and_drop_count(self):
        tracer = Tracer(SimulatedClock(), max_spans=1)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        tracer.clear()
        assert tracer.spans == ()
        assert tracer.n_dropped_total == 0

    def test_to_jsonable_round_trips_fields(self):
        clock = SimulatedClock(5.0)
        tracer = Tracer(clock)
        with tracer.span("stage"):
            clock.advance(0.5)
        (record,) = tracer.to_jsonable()
        assert record == {
            "name": "stage",
            "start_s": 5.0,
            "end_s": 5.5,
            "duration_s": 0.5,
            "depth": 0,
        }

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            Tracer(SimulatedClock(), max_spans=0)


class TestStageTimer:
    def test_feeds_histogram(self):
        clock = SimulatedClock()
        hist = MetricsRegistry().histogram(
            "stage_duration_s", bucket_bounds=(0.1, 1.0)
        )
        timer = StageTimer("pipeline.dwt", clock, histogram=hist)
        with timer:
            clock.advance(0.5)
        assert timer.last_duration_s == pytest.approx(0.5)
        assert hist.count == 1
        assert hist.sum == pytest.approx(0.5)

    def test_feeds_tracer_span(self):
        clock = SimulatedClock()
        tracer = Tracer(clock)
        with StageTimer("monitor.window_emit", clock, tracer=tracer):
            clock.advance(0.1)
        (span,) = tracer.spans
        assert span.name == "monitor.window_emit"
        assert span.duration_s == pytest.approx(0.1)

    def test_reusable_across_with_blocks(self):
        clock = SimulatedClock()
        hist = MetricsRegistry().histogram(
            "stage_duration_s", bucket_bounds=(1.0,)
        )
        timer = StageTimer("stage", clock, histogram=hist)
        with timer:
            clock.advance(0.2)
        with timer:
            clock.advance(0.3)
        assert hist.count == 2
        assert timer.last_duration_s == pytest.approx(0.3)

    def test_no_sinks_still_times(self):
        clock = SimulatedClock()
        timer = StageTimer("stage", clock)
        with timer:
            clock.advance(4.0)
        assert timer.last_duration_s == pytest.approx(4.0)
