"""Unit tests for activity scripts and motion events."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.physio.motion import ActivityScript, ActivityState, MotionEvent


class TestMotionEvent:
    def test_end_time(self):
        event = MotionEvent(ActivityState.WALKING, 5.0, 10.0)
        assert event.end_s == 15.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MotionEvent(ActivityState.WALKING, 0.0, 0.0)
        with pytest.raises(ConfigurationError):
            MotionEvent(ActivityState.WALKING, -1.0, 5.0)


class TestActivityScript:
    def test_state_lookup(self):
        script = ActivityScript.figure3_script()
        assert script.state_at(5.0) is ActivityState.SITTING
        assert script.state_at(20.0) is ActivityState.NO_PERSON
        assert script.state_at(35.0) is ActivityState.STANDING_UP
        assert script.state_at(50.0) is ActivityState.WALKING

    def test_states_vectorized_returns_enums(self):
        script = ActivityScript.figure3_script()
        states = script.states(np.array([5.0, 20.0, 35.0, 50.0]))
        assert states[0] is ActivityState.SITTING
        assert states[1] is ActivityState.NO_PERSON
        assert states[2] is ActivityState.STANDING_UP
        assert states[3] is ActivityState.WALKING

    def test_default_state_is_sitting(self):
        script = ActivityScript(events=())
        assert script.state_at(100.0) is ActivityState.SITTING

    def test_person_present_mask(self):
        script = ActivityScript(
            events=(MotionEvent(ActivityState.NO_PERSON, 10.0, 5.0),)
        )
        t = np.array([5.0, 12.0, 20.0])
        present = script.person_present(t)
        assert present.tolist() == [True, False, True]

    def test_overlapping_events_rejected(self):
        with pytest.raises(ConfigurationError):
            ActivityScript(
                events=(
                    MotionEvent(ActivityState.WALKING, 0.0, 10.0),
                    MotionEvent(ActivityState.SITTING, 5.0, 10.0),
                )
            )

    def test_events_sorted_by_start(self):
        script = ActivityScript(
            events=(
                MotionEvent(ActivityState.WALKING, 20.0, 5.0),
                MotionEvent(ActivityState.SITTING, 0.0, 5.0),
            )
        )
        assert script.events[0].start_s == 0.0


class TestBodyDisplacement:
    def test_sitting_and_empty_have_zero_displacement(self):
        script = ActivityScript(
            events=(MotionEvent(ActivityState.NO_PERSON, 10.0, 10.0),)
        )
        t = np.linspace(0, 25, 500)
        assert np.allclose(script.body_displacement(t), 0.0)

    def test_walking_produces_large_displacement(self):
        script = ActivityScript(
            events=(MotionEvent(ActivityState.WALKING, 0.0, 20.0),), seed=1
        )
        t = np.linspace(0, 20, 2000, endpoint=False)
        d = script.body_displacement(t)
        # Decimetre-scale sway, far beyond millimetre breathing.
        assert np.max(np.abs(d)) > 0.05

    def test_standing_up_ramps_and_persists(self):
        script = ActivityScript(
            events=(MotionEvent(ActivityState.STANDING_UP, 5.0, 5.0),)
        )
        t = np.array([4.0, 7.5, 11.0, 20.0])
        d = script.body_displacement(t)
        assert d[0] == 0.0
        assert 0.0 < d[1] < script.standing_amplitude_m
        assert d[2] == pytest.approx(script.standing_amplitude_m)
        assert d[3] == pytest.approx(script.standing_amplitude_m)

    def test_walking_reproducible_by_seed(self):
        t = np.linspace(0, 10, 500)
        make = lambda seed: ActivityScript(  # noqa: E731
            events=(MotionEvent(ActivityState.WALKING, 0.0, 10.0),), seed=seed
        ).body_displacement(t)
        assert np.array_equal(make(3), make(3))
        assert not np.allclose(make(3), make(4))

    def test_figure3_script_timeline(self):
        script = ActivityScript.figure3_script()
        assert len(script.events) == 4
        assert script.events[-1].end_s == 60.0
