"""Unit tests for heartbeat displacement models."""

import numpy as np
import pytest

from repro.dsp.fft_utils import dominant_frequency
from repro.errors import ConfigurationError
from repro.physio.heartbeat import PulseHeartbeat, SinusoidalHeartbeat


class TestSinusoidalHeartbeat:
    def test_rate_bpm(self):
        assert SinusoidalHeartbeat(frequency_hz=1.07).rate_bpm == pytest.approx(64.2)

    def test_orders_of_magnitude_weaker_than_breathing(self):
        # The paper's premise: heart displacement << breathing displacement.
        from repro.physio.breathing import SinusoidalBreathing

        heart = SinusoidalHeartbeat()
        breath = SinusoidalBreathing()
        assert heart.amplitude_m < 0.2 * breath.amplitude_m

    def test_displacement_bounds(self):
        model = SinusoidalHeartbeat(frequency_hz=1.2, amplitude_m=4e-4)
        t = np.linspace(0, 5, 4000)
        d = model.displacement(t)
        assert np.max(np.abs(d)) <= 4e-4 * (1 + 1e-9)

    def test_frequency_validation(self):
        with pytest.raises(ConfigurationError):
            SinusoidalHeartbeat(frequency_hz=0.3)
        with pytest.raises(ConfigurationError):
            SinusoidalHeartbeat(frequency_hz=5.0)


class TestPulseHeartbeat:
    def test_fundamental_at_heart_rate(self):
        model = PulseHeartbeat(frequency_hz=1.1)
        fs = 40.0
        t = np.arange(4000) / fs
        f = dominant_frequency(model.displacement(t), fs, band=(0.8, 2.0))
        assert f == pytest.approx(1.1, abs=0.02)

    def test_zero_mean(self):
        model = PulseHeartbeat(frequency_hz=1.0, duty=0.3)
        t = np.arange(8000) / 40.0  # whole number of beats
        assert abs(np.mean(model.displacement(t))) < 1e-4 * model.amplitude_m

    def test_pulse_is_sparse(self):
        model = PulseHeartbeat(frequency_hz=1.0, duty=0.2)
        t = np.arange(4000) / 40.0
        d = model.displacement(t)
        # Most of the cycle sits at the (negative) baseline.
        baseline = -model.amplitude_m * model.duty * 0.5
        assert np.mean(np.isclose(d, baseline)) > 0.7

    def test_richer_harmonics_than_sinusoid(self):
        fs = 40.0
        t = np.arange(8000) / fs
        pulse = PulseHeartbeat(frequency_hz=1.0).displacement(t)
        spectrum = np.abs(np.fft.rfft(pulse - pulse.mean()))
        freqs = np.fft.rfftfreq(t.size, 1 / fs)
        fundamental = spectrum[np.argmin(np.abs(freqs - 1.0))]
        second = spectrum[np.argmin(np.abs(freqs - 2.0))]
        assert second > 0.3 * fundamental

    def test_duty_validation(self):
        with pytest.raises(ConfigurationError):
            PulseHeartbeat(duty=0.0)
        with pytest.raises(ConfigurationError):
            PulseHeartbeat(duty=1.0)
