"""Unit tests for reference-sensor models."""

import pytest

from repro.errors import ConfigurationError
from repro.physio.ground_truth import PulseOximeter, ReferenceSensor, RespirationBelt
from repro.physio.heartbeat import SinusoidalHeartbeat
from repro.physio.person import Person


class TestReferenceSensor:
    def test_perfect_sensor_reads_truth(self):
        sensor = ReferenceSensor(noise_bpm=0.0, resolution_bpm=0.0)
        assert sensor.read(15.3) == 15.3

    def test_quantization(self):
        sensor = ReferenceSensor(noise_bpm=0.0, resolution_bpm=1.0)
        assert sensor.read(64.2) == 64.0
        assert sensor.read(64.6) == 65.0

    def test_noise_reproducible_by_seed(self):
        a = ReferenceSensor(noise_bpm=0.5, seed=3).read(60.0)
        b = ReferenceSensor(noise_bpm=0.5, seed=3).read(60.0)
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReferenceSensor(noise_bpm=-1.0)
        with pytest.raises(ConfigurationError):
            ReferenceSensor(resolution_bpm=-0.5)


class TestRespirationBelt:
    def test_reads_breathing_rate(self):
        person = Person(position=(1, 1, 1))
        belt = RespirationBelt(noise_bpm=0.0)
        assert belt.read_person(person) == pytest.approx(
            person.breathing_rate_bpm
        )


class TestPulseOximeter:
    def test_integer_display(self):
        person = Person(
            position=(1, 1, 1),
            heartbeat=SinusoidalHeartbeat(frequency_hz=1.07),
        )
        oximeter = PulseOximeter(noise_bpm=0.0)
        reading = oximeter.read_person(person)
        assert reading == round(reading)
        # 64.2 bpm displays as 64 — the paper's Fig. 9 quantization story.
        assert reading == 64.0

    def test_person_without_heartbeat_rejected(self):
        person = Person(position=(1, 1, 1), heartbeat=None)
        with pytest.raises(ConfigurationError):
            PulseOximeter().read_person(person)
