"""Unit tests for breathing displacement models."""

import numpy as np
import pytest

from repro.dsp.fft_utils import dominant_frequency
from repro.errors import ConfigurationError
from repro.physio.breathing import RealisticBreathing, SinusoidalBreathing


class TestSinusoidalBreathing:
    def test_rate_bpm(self):
        model = SinusoidalBreathing(frequency_hz=0.25)
        assert model.rate_bpm == pytest.approx(15.0)

    def test_displacement_amplitude(self):
        model = SinusoidalBreathing(frequency_hz=0.25, amplitude_m=5e-3)
        t = np.linspace(0, 8, 2000)
        d = model.displacement(t)
        assert np.max(d) == pytest.approx(5e-3, rel=1e-3)
        assert np.min(d) == pytest.approx(-5e-3, rel=1e-3)

    def test_periodicity(self):
        model = SinusoidalBreathing(frequency_hz=0.25)
        t = np.linspace(0, 4, 100, endpoint=False)
        assert np.allclose(model.displacement(t), model.displacement(t + 4.0))

    def test_phase_shift(self):
        base = SinusoidalBreathing(frequency_hz=0.25, phase=0.0)
        shifted = SinusoidalBreathing(frequency_hz=0.25, phase=np.pi)
        t = np.linspace(0, 4, 50)
        assert np.allclose(base.displacement(t), -shifted.displacement(t))

    def test_implausible_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            SinusoidalBreathing(frequency_hz=0.01)
        with pytest.raises(ConfigurationError):
            SinusoidalBreathing(frequency_hz=2.0)

    def test_nonpositive_amplitude_rejected(self):
        with pytest.raises(ConfigurationError):
            SinusoidalBreathing(amplitude_m=0.0)


class TestRealisticBreathing:
    def test_dominant_frequency_matches_nominal(self):
        model = RealisticBreathing(frequency_hz=0.25, rate_jitter_fraction=0.01, seed=3)
        fs = 20.0
        t = np.arange(2400) / fs
        f = dominant_frequency(model.displacement(t), fs, band=(0.1, 0.7))
        assert f == pytest.approx(0.25, abs=0.02)

    def test_harmonics_present(self):
        model = RealisticBreathing(
            frequency_hz=0.25, harmonic_levels=(0.3,), rate_jitter_fraction=0.0
        )
        fs = 20.0
        t = np.arange(2400) / fs
        d = model.displacement(t)
        spectrum = np.abs(np.fft.rfft(d - d.mean()))
        freqs = np.fft.rfftfreq(t.size, 1 / fs)
        fundamental = spectrum[np.argmin(np.abs(freqs - 0.25))]
        harmonic = spectrum[np.argmin(np.abs(freqs - 0.50))]
        assert harmonic == pytest.approx(0.3 * fundamental, rel=0.1)

    def test_reproducible_for_same_seed(self):
        t = np.arange(600) / 20.0
        a = RealisticBreathing(seed=7).displacement(t)
        b = RealisticBreathing(seed=7).displacement(t)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        t = np.arange(600) / 20.0
        a = RealisticBreathing(seed=7, rate_jitter_fraction=0.05).displacement(t)
        b = RealisticBreathing(seed=8, rate_jitter_fraction=0.05).displacement(t)
        assert not np.allclose(a, b)

    def test_zero_jitter_is_deterministic_tone(self):
        model = RealisticBreathing(
            frequency_hz=0.25, harmonic_levels=(), rate_jitter_fraction=0.0
        )
        t = np.arange(400) / 20.0
        expected = model.amplitude_m * np.cos(2 * np.pi * 0.25 * t)
        assert np.allclose(model.displacement(t), expected, atol=1e-12)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RealisticBreathing(rate_jitter_fraction=0.5)
        with pytest.raises(ConfigurationError):
            RealisticBreathing(harmonic_levels=(-0.1,))
        with pytest.raises(ConfigurationError):
            RealisticBreathing(amplitude_m=-1.0)
