"""Unit tests for Person and cohort generation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.physio.breathing import SinusoidalBreathing
from repro.physio.heartbeat import SinusoidalHeartbeat
from repro.physio.person import Person, random_cohort


class TestPerson:
    def test_chest_displacement_sums_models(self):
        person = Person(
            position=(1, 2, 1),
            breathing=SinusoidalBreathing(frequency_hz=0.25, amplitude_m=5e-3),
            heartbeat=SinusoidalHeartbeat(frequency_hz=1.0, amplitude_m=4e-4),
        )
        t = np.linspace(0, 10, 500)
        total = person.chest_displacement(t)
        expected = person.breathing.displacement(t) + person.heartbeat.displacement(t)
        assert np.allclose(total, expected)

    def test_breathing_only_person(self):
        person = Person(position=(1, 2, 1), heartbeat=None)
        assert person.heart_rate_bpm is None
        t = np.linspace(0, 4, 100)
        assert np.allclose(
            person.chest_displacement(t), person.breathing.displacement(t)
        )

    def test_ground_truth_rates(self):
        person = Person(
            position=(0, 0, 1),
            breathing=SinusoidalBreathing(frequency_hz=0.3),
            heartbeat=SinusoidalHeartbeat(frequency_hz=1.5),
        )
        assert person.breathing_rate_bpm == pytest.approx(18.0)
        assert person.heart_rate_bpm == pytest.approx(90.0)

    def test_position_validation(self):
        with pytest.raises(ConfigurationError):
            Person(position=(1, 2))

    def test_reflectivity_validation(self):
        with pytest.raises(ConfigurationError):
            Person(position=(1, 2, 1), reflectivity=0.0)


class TestRandomCohort:
    def test_size_and_reproducibility(self):
        a = random_cohort(3, seed=5)
        b = random_cohort(3, seed=5)
        assert len(a) == 3
        assert [p.breathing.frequency_hz for p in a] == [
            p.breathing.frequency_hz for p in b
        ]

    def test_rate_separation_enforced(self):
        cohort = random_cohort(4, seed=1, min_rate_separation_hz=0.03)
        rates = sorted(p.breathing.frequency_hz for p in cohort)
        assert min(np.diff(rates)) >= 0.03

    def test_rates_inside_band(self):
        cohort = random_cohort(3, seed=2, breathing_band_hz=(0.2, 0.3))
        for person in cohort:
            assert 0.2 <= person.breathing.frequency_hz <= 0.3

    def test_without_heartbeat(self):
        cohort = random_cohort(2, seed=3, with_heartbeat=False)
        assert all(p.heartbeat is None for p in cohort)

    def test_amplitude_range_respected(self):
        cohort = random_cohort(
            4, seed=4, breathing_amplitude_m=(2.5e-3, 3.5e-3), realistic=False
        )
        for person in cohort:
            assert 2.5e-3 <= person.breathing.amplitude_m <= 3.5e-3

    def test_impossible_packing_rejected(self):
        with pytest.raises(ConfigurationError):
            random_cohort(
                10, breathing_band_hz=(0.2, 0.25), min_rate_separation_hz=0.02
            )

    def test_positions_inside_area(self):
        cohort = random_cohort(5, seed=6, area=(4.0, 6.0))
        for person in cohort:
            x, y, _ = person.position
            assert 0.0 <= x <= 4.0
            assert 0.0 <= y <= 6.0

    def test_zero_persons_rejected(self):
        with pytest.raises(ConfigurationError):
            random_cohort(0)
