"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.io_.trace import CSITrace


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "--out", "x.npz"])
        assert args.scenario == "lab"
        assert args.duration == 30.0
        assert args.rate == 400.0

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig11"])
        assert args.figure == "fig11"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestSimulateCommand:
    def test_writes_trace(self, tmp_path):
        out = tmp_path / "capture.npz"
        code = main(
            [
                "simulate",
                "--scenario", "lab",
                "--duration", "5",
                "--rate", "200",
                "--seed", "7",
                "--out", str(out),
            ]
        )
        assert code == 0
        trace = CSITrace.load(out)
        assert trace.n_packets == 1000
        assert trace.sample_rate_hz == 200.0
        assert trace.meta["scenario"] == "laboratory"

    @pytest.mark.parametrize("scenario", ["through-wall", "corridor"])
    def test_other_scenarios(self, tmp_path, scenario):
        out = tmp_path / "capture.npz"
        code = main(
            [
                "simulate",
                "--scenario", scenario,
                "--duration", "3",
                "--distance", "4.0",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert CSITrace.load(out).n_packets == 1200


class TestEstimateCommand:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        out = tmp_path / "capture.npz"
        main(
            [
                "simulate",
                "--duration", "20",
                "--seed", "3",
                "--out", str(out),
            ]
        )
        return out

    def test_estimate_runs(self, trace_path, capsys):
        code = main(["estimate", str(trace_path), "--no-gate"])
        assert code == 0
        output = capsys.readouterr().out
        assert "breathing:" in output
        assert "ground truth:" in output

    def test_estimate_accuracy(self, trace_path, capsys):
        main(["estimate", str(trace_path), "--no-gate"])
        output = capsys.readouterr().out
        trace = CSITrace.load(trace_path)
        truth = trace.meta["breathing_rates_bpm"][0]
        estimated = float(
            output.split("breathing:")[1].split("]")[0].strip(" [")
        )
        assert abs(estimated - truth) < 1.0

    def test_tensorbeat_method(self, trace_path, capsys):
        code = main(
            ["estimate", str(trace_path), "--no-gate", "--method", "tensorbeat"]
        )
        assert code == 0
        assert "breathing:" in capsys.readouterr().out


class TestDatasetCommand:
    def test_generates_corpus(self, tmp_path, capsys):
        out = tmp_path / "corpus"
        code = main(
            [
                "dataset",
                "--out", str(out),
                "--count", "2",
                "--duration", "2",
                "--rate", "200",
            ]
        )
        assert code == 0
        assert (out / "index.json").exists()
        assert len(list(out.glob("*.npz"))) == 2


class TestExperimentCommand:
    def test_fig01(self, capsys):
        code = main(["experiment", "fig01"])
        assert code == 0
        output = capsys.readouterr().out
        assert "fig01" in output
        assert "diff_resultant_length" in output


class TestExperimentJsonExport:
    def test_json_written(self, tmp_path, capsys):
        import json

        out = tmp_path / "fig01.json"
        code = main(["experiment", "fig01", "--json", str(out)])
        assert code == 0
        data = json.loads(out.read_text())
        assert "diff_resultant_length" in data
        assert isinstance(data["diff_resultant_length"], float)


class TestMonitorCommand:
    def test_monitor_defaults(self):
        args = build_parser().parse_args(["monitor"])
        assert args.duration == 90.0
        assert args.rate == 100.0
        assert args.chaos_scenario is None

    def test_unknown_scenario_is_an_error(self, capsys):
        code = main(["monitor", "--chaos-scenario", "nope"])
        assert code == 2
        assert "neither a shipped scenario" in capsys.readouterr().err

    def test_fault_free_run_reports_healthy(self, tmp_path, capsys):
        import json

        out = tmp_path / "report.json"
        code = main(
            [
                "monitor",
                "--duration", "40",
                "--rate", "100",
                "--seed", "0",
                "--json", str(out),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "scenario fault-free" in output
        assert "recovery invariants: OK" in output
        data = json.loads(out.read_text())
        assert data["violations"] == []
        assert data["health"]["health"] == "healthy"

    def test_scenario_from_json_file(self, tmp_path, capsys):
        from repro.service import ChaosScenario, TimedFault

        path = tmp_path / "faults.json"
        scenario = ChaosScenario(
            name="one-crash",
            faults=(TimedFault(kind="crash", at_s=15.0),),
        )
        path.write_text(scenario.to_json())
        code = main(
            [
                "monitor",
                "--duration", "40",
                "--rate", "100",
                "--seed", "0",
                "--chaos-scenario", str(path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "scenario one-crash" in output
        assert "source-crash" in output


class TestMonitorObservabilityOutputs:
    def test_metrics_and_events_written(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "metrics.json"
        events = tmp_path / "events.jsonl"
        code = main(
            [
                "monitor",
                "--duration", "40",
                "--seed", "0",
                "--metrics-out", str(metrics),
                "--events-out", str(events),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"wrote {metrics}" in out
        assert f"wrote {events}" in out

        snapshot = json.loads(metrics.read_text())
        assert snapshot["schema"] == "repro.obs/v1"
        names = {sample["name"] for sample in snapshot["metrics"]}
        assert "pipeline_stage_duration_s" in names

        lines = events.read_text().splitlines()
        assert lines  # the supervisor always checkpoints at least once
        for line in lines:
            event = json.loads(line)
            assert {"time_s", "subject", "kind", "detail"} <= set(event)


class TestFleetCommand:
    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.sessions == 20
        assert args.duration == 24.0
        assert args.scenario is None
        assert not args.no_isolation_check

    def test_unknown_scenario_is_an_error(self, capsys):
        code = main(["fleet", "--scenario", "nope"])
        assert code == 2
        assert "neither a shipped fleet scenario" in capsys.readouterr().err

    def test_fault_free_fleet_reports_ok(self, tmp_path, capsys):
        import json

        report = tmp_path / "fleet.json"
        events = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "fleet",
                "--sessions", "4",
                "--duration", "20",
                "--seed", "0",
                "--json", str(report),
                "--events-out", str(events),
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario fault-free" in out
        assert "fleet invariants: OK" in out
        data = json.loads(report.read_text())
        assert data["violations"] == []
        assert data["fleet_summary"]["by_status"]["finished"] == 4
        snapshot = json.loads(metrics.read_text())
        assert snapshot["schema"] == "repro.obs/v1"
        names = {sample["name"] for sample in snapshot["metrics"]}
        assert "fleet_sessions_active_count" in names
        for line in events.read_text().splitlines():
            event = json.loads(line)
            assert {"time_s", "subject", "kind", "detail"} <= set(event)

    def test_scenario_from_json_file(self, tmp_path, capsys):
        from repro.service.fleet import FleetFault, FleetScenario

        path = tmp_path / "fleet-faults.json"
        scenario = FleetScenario(
            name="one-shard-down",
            faults=(FleetFault(kind="shard-crash", at_s=8.0, shard=0),),
        )
        path.write_text(scenario.to_json())
        code = main(
            [
                "fleet",
                "--sessions", "4",
                "--duration", "24",
                "--seed", "0",
                "--scenario", str(path),
            ]
        )
        assert code == 0
        assert "scenario one-shard-down" in capsys.readouterr().out


class TestMetricsCommand:
    @pytest.fixture(scope="class")
    def snapshot_path(self, tmp_path_factory):
        """One real --metrics-out file shared by the render/diff tests."""
        path = tmp_path_factory.mktemp("metrics") / "metrics.json"
        assert (
            main(
                [
                    "monitor",
                    "--duration", "40",
                    "--seed", "0",
                    "--metrics-out", str(path),
                ]
            )
            == 0
        )
        return path

    def test_render_table(self, snapshot_path, capsys):
        assert main(["metrics", "render", str(snapshot_path)]) == 0
        out = capsys.readouterr().out
        assert "metric" in out and "pipeline_stage_duration_s" in out

    def test_render_prometheus(self, snapshot_path, capsys):
        code = main(
            ["metrics", "render", str(snapshot_path), "--format", "prometheus"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE pipeline_stage_duration_s histogram" in out
        assert 'le="+Inf"' in out

    def test_render_json_round_trips_bytes(self, snapshot_path, capsys):
        code = main(
            ["metrics", "render", str(snapshot_path), "--format", "json"]
        )
        assert code == 0
        assert capsys.readouterr().out == snapshot_path.read_text()

    def test_diff_identical(self, snapshot_path, capsys):
        code = main(
            ["metrics", "diff", str(snapshot_path), str(snapshot_path)]
        )
        assert code == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_reports_changes(self, snapshot_path, tmp_path, capsys):
        import json

        data = json.loads(snapshot_path.read_text())
        data["metrics"] = [
            s
            for s in data["metrics"]
            if s["name"] != "monitor_fresh_windows_total"
        ]
        other = tmp_path / "edited.json"
        other.write_text(json.dumps(data))
        code = main(["metrics", "diff", str(snapshot_path), str(other)])
        assert code == 1
        assert "- monitor_fresh_windows_total" in capsys.readouterr().out

    def test_render_rejects_non_snapshot_file(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"metrics": []}')
        code = main(["metrics", "render", str(bogus)])
        assert code == 2
        assert "schema marker" in capsys.readouterr().err

    def test_missing_snapshot_is_a_clean_error(self, tmp_path, capsys):
        code = main(["metrics", "render", str(tmp_path / "missing.json")])
        assert code == 2
        assert "cannot read snapshot" in capsys.readouterr().err


@pytest.fixture(scope="module")
def recorded_store(tmp_path_factory):
    """A short capture recorded via the CLI, shared by the store commands."""
    out = tmp_path_factory.mktemp("store")
    code = main(
        [
            "record",
            "--duration", "20",
            "--rate", "30",
            "--seed", "3",
            "--session", "cli-test",
            "--out", str(out),
        ]
    )
    assert code == 0
    return out


class TestRecordCommand:
    def test_record_defaults(self):
        args = build_parser().parse_args(["record", "--out", "x"])
        assert args.scenario == "lab"
        assert args.stem == "trace"
        assert args.rotate_kib == 256
        assert args.flush_every == 64

    def test_record_writes_segments_and_index(self, recorded_store, capsys):
        names = sorted(p.name for p in recorded_store.iterdir())
        assert "trace-00000.cst" in names
        assert "trace.cidx" in names

    def test_record_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["record", "--help"])
        assert excinfo.value.code == 0
        assert "durability boundary" in capsys.readouterr().out


class TestReplayCommand:
    def test_replay_reports_estimates_and_speedup(
        self, recorded_store, tmp_path, capsys
    ):
        import json

        summary = tmp_path / "replay.json"
        code = main(
            ["replay", "--store", str(recorded_store), "--json", str(summary)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "x real time" in out
        assert "estimates:" in out
        payload = json.loads(summary.read_text())
        assert payload["n_records"] == 600
        assert payload["speedup_ratio"] > 20.0
        assert payload["salvage"]["clean"] is True

    def test_missing_store_is_a_clean_error(self, tmp_path, capsys):
        code = main(["replay", "--store", str(tmp_path)])
        assert code == 2
        assert capsys.readouterr().err != ""

    def test_replay_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["replay", "--help"])
        assert excinfo.value.code == 0
        assert "replay" in capsys.readouterr().out


class TestBacktestCommand:
    @pytest.fixture(scope="class")
    def corpus(self, recorded_store, tmp_path_factory):
        import json
        import shutil

        from repro.store import DirectoryBackend, TraceReader

        root = tmp_path_factory.mktemp("cli-corpus")
        shutil.copytree(recorded_store, root / "lab")
        backend = DirectoryBackend(str(root / "lab"))
        _, header, _ = TraceReader(backend, "trace").read_packets()
        truth_bpm = float(header.meta["breathing_rates_bpm"][0])
        manifest = {
            "corpus_format_version": 1,
            "stem": "trace",
            "scenarios": {
                "lab": {
                    "expected_breathing_bpm": truth_bpm,
                    "tolerance_bpm": 6.0,
                    "min_estimates": 2,
                }
            },
        }
        (root / "manifest.json").write_text(json.dumps(manifest))
        return root

    def test_backtest_passes_on_clean_corpus(self, corpus, tmp_path, capsys):
        import json

        report = tmp_path / "backtest.json"
        code = main(
            ["backtest", "--corpus", str(corpus), "--json", str(report)]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out
        assert json.loads(report.read_text())["passed"] is True

    def test_injected_regression_exits_nonzero(self, corpus, capsys):
        code = main(
            [
                "backtest",
                "--corpus", str(corpus),
                "--inject-regression-bpm", "25",
            ]
        )
        assert code == 1
        assert "rate-regression" in capsys.readouterr().out

    def test_missing_corpus_is_a_clean_error(self, tmp_path, capsys):
        code = main(["backtest", "--corpus", str(tmp_path / "nope")])
        assert code == 2
        assert "manifest" in capsys.readouterr().err

    def test_backtest_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["backtest", "--help"])
        assert excinfo.value.code == 0
        assert "manifest.json" in capsys.readouterr().out
