"""Learn-suite fixtures: one cheap synthetic training run per session."""

from __future__ import annotations

import pytest

from repro.learn import TrainingConfig, train


@pytest.fixture(scope="session")
def synthetic_bundle():
    """A small synthetic-corpus bundle shared across the learn suite."""
    return train(
        TrainingConfig(mode="synthetic", n_windows=64, seed=7, with_mlp=True)
    )
