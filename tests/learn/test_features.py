"""Feature extractor: determinism, refusals, and spectral sanity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, EstimationError
from repro.learn import FEATURE_NAMES, FeatureConfig, matrix_features, window_features

RATE_HZ = 25.0


def make_breathing_matrix(
    frequency_hz: float = 0.25,
    *,
    n_samples: int = 500,
    n_columns: int = 12,
    noise: float = 0.05,
    seed: int = 0,
) -> np.ndarray:
    """A clean multi-column breathing-like matrix at RATE_HZ."""
    rng = np.random.default_rng(seed)
    t = np.arange(n_samples) / RATE_HZ
    gains = rng.uniform(0.5, 1.5, size=n_columns)
    phases = rng.uniform(0, 2 * np.pi, size=n_columns)
    clean = np.sin(
        2 * np.pi * frequency_hz * t[:, None] + phases[None, :]
    ) * gains[None, :]
    return clean + noise * rng.standard_normal((n_samples, n_columns))


class TestMatrixFeatures:
    def test_vector_aligns_with_catalogue(self):
        vector = matrix_features(make_breathing_matrix(), RATE_HZ)
        assert vector.shape == (len(FEATURE_NAMES),)
        assert np.all(np.isfinite(vector))

    def test_peak_features_track_the_breathing_frequency(self):
        for frequency_hz in (0.2, 0.3, 0.4):
            vector = matrix_features(
                make_breathing_matrix(frequency_hz), RATE_HZ
            )
            named = dict(zip(FEATURE_NAMES, vector))
            assert named["pooled_peak_hz"] == pytest.approx(
                frequency_hz, abs=0.03
            )
            assert named["vote_median_hz"] == pytest.approx(
                frequency_hz, abs=0.05
            )

    def test_featurization_is_byte_deterministic(self):
        matrix = make_breathing_matrix()
        first = matrix_features(matrix, RATE_HZ)
        second = matrix_features(matrix.copy(), RATE_HZ)
        assert first.tobytes() == second.tobytes()

    def test_context_features_carry_window_geometry(self):
        matrix = make_breathing_matrix(n_samples=300)
        named = dict(zip(FEATURE_NAMES, matrix_features(matrix, RATE_HZ)))
        assert named["window_duration_s"] == pytest.approx(300 / RATE_HZ)
        assert named["window_rate_hz"] == pytest.approx(RATE_HZ)
        assert named["eligible_fraction"] == pytest.approx(1.0)

    def test_short_window_refused(self):
        matrix = make_breathing_matrix(n_samples=32)
        with pytest.raises(EstimationError, match="too short"):
            matrix_features(matrix, RATE_HZ)

    def test_degraded_window_refused(self):
        matrix = make_breathing_matrix()
        quality = np.zeros(matrix.shape[1], dtype=bool)
        with pytest.raises(EstimationError, match="quality too low"):
            matrix_features(matrix, RATE_HZ, quality=quality)

    def test_constant_columns_are_ineligible(self):
        matrix = make_breathing_matrix(n_columns=8)
        matrix[:, :6] = 1.0  # flat columns carry no motion
        config = FeatureConfig(min_eligible_fraction=0.5)
        with pytest.raises(EstimationError, match="quality too low"):
            matrix_features(matrix, RATE_HZ, config=config)

    def test_quality_mask_shape_checked(self):
        matrix = make_breathing_matrix(n_columns=8)
        with pytest.raises(ConfigurationError, match="quality mask"):
            matrix_features(
                matrix, RATE_HZ, quality=np.ones(5, dtype=bool)
            )

    def test_quiet_run_sees_an_apneic_pause(self):
        matrix = make_breathing_matrix(n_samples=750)
        paused = matrix.copy()
        start = int(15.0 * RATE_HZ)
        stop = int(25.0 * RATE_HZ)
        paused[start:stop] *= 0.02
        quiet_index = FEATURE_NAMES.index("quiet_run_s")
        active = matrix_features(matrix, RATE_HZ)[quiet_index]
        apneic = matrix_features(paused, RATE_HZ)[quiet_index]
        assert apneic > active + 4.0


class TestFeatureConfig:
    def test_bad_band_rejected(self):
        with pytest.raises(ConfigurationError, match="breathing_band_hz"):
            FeatureConfig(breathing_band_hz=(0.5, 0.2))

    def test_bad_minimums_rejected(self):
        with pytest.raises(ConfigurationError):
            FeatureConfig(min_samples=2)
        with pytest.raises(ConfigurationError):
            FeatureConfig(min_eligible_fraction=1.5)
        with pytest.raises(ConfigurationError):
            FeatureConfig(quiet_threshold_fraction=0.0)


class TestWindowFeatures:
    def test_trace_front_half_round_trip(self, short_lab_trace):
        vector = window_features(short_lab_trace)
        assert vector.shape == (len(FEATURE_NAMES),)
        assert np.all(np.isfinite(vector))
        # 15 bpm ground truth = 0.25 Hz; the pooled peak should be close.
        named = dict(zip(FEATURE_NAMES, vector))
        assert named["pooled_peak_hz"] == pytest.approx(0.25, abs=0.05)
