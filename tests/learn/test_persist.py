"""Bundle serialization: canonical JSON, round trips, refusals."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.learn import (
    FEATURE_NAMES,
    MODEL_SCHEMA_VERSION,
    LearnedBundle,
    RidgeRegressor,
    dump_bundle,
    load_bundle,
    read_bundle,
    save_bundle,
)


def make_bundle(seed: int = 0) -> LearnedBundle:
    rng = np.random.default_rng(seed)
    features = rng.standard_normal((40, len(FEATURE_NAMES)))
    targets = rng.uniform(10, 25, size=40)
    return LearnedBundle(
        feature_names=FEATURE_NAMES,
        breathing_model=RidgeRegressor().fit(features, targets),
        meta={"seed": seed},
    )


class TestDumpLoad:
    def test_round_trip_preserves_predictions(self):
        bundle = make_bundle()
        restored = load_bundle(dump_bundle(bundle))
        probe = np.linspace(-1, 1, 2 * len(FEATURE_NAMES)).reshape(
            2, len(FEATURE_NAMES)
        )
        assert np.array_equal(
            bundle.breathing_model.predict(probe),
            restored.breathing_model.predict(probe),
        )
        assert restored.feature_names == FEATURE_NAMES
        assert restored.meta == {"seed": 0}

    def test_dump_is_canonical_and_stable(self):
        bundle = make_bundle()
        first = dump_bundle(bundle)
        second = dump_bundle(load_bundle(first))
        assert first == second
        assert first.endswith("\n")
        # Canonical form: sorted keys, no whitespace padding.
        assert '", "' not in first

    def test_wrong_schema_version_rejected(self):
        payload = json.loads(dump_bundle(make_bundle()))
        payload["version"] = MODEL_SCHEMA_VERSION + 1
        with pytest.raises(ConfigurationError, match="schema version"):
            load_bundle(json.dumps(payload))

    def test_garbage_rejected(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_bundle("{nope")
        with pytest.raises(ConfigurationError, match="must be an object"):
            load_bundle("[1, 2]")

    def test_missing_rate_model_rejected(self):
        payload = json.loads(dump_bundle(make_bundle()))
        payload["breathing_model"] = None
        with pytest.raises(ConfigurationError, match="no rate model"):
            load_bundle(json.dumps(payload))

    def test_swapped_model_kind_rejected(self):
        payload = json.loads(dump_bundle(make_bundle()))
        payload["breathing_model"]["kind"] = "mlp"
        with pytest.raises(ConfigurationError, match="expected a"):
            load_bundle(json.dumps(payload))


class TestBundleChecks:
    def test_unfitted_rate_model_rejected(self):
        with pytest.raises(ConfigurationError, match="fitted rate model"):
            LearnedBundle(
                feature_names=FEATURE_NAMES, breathing_model=RidgeRegressor()
            )

    def test_catalogue_mismatch_refused(self):
        bundle = make_bundle()
        stale = LearnedBundle(
            feature_names=FEATURE_NAMES[:-1],
            breathing_model=bundle.breathing_model,
        )
        with pytest.raises(ConfigurationError, match="feature"):
            stale.check_catalogue()

    def test_missing_optional_heads_raise_cleanly(self):
        bundle = make_bundle()
        probe = np.zeros(len(FEATURE_NAMES))
        with pytest.raises(ConfigurationError, match="no MLP"):
            bundle.predict_rate_bpm(probe, use_mlp=True)
        with pytest.raises(ConfigurationError, match="no apnea"):
            bundle.apnea_probability(probe)


class TestFileRoundTrip:
    def test_save_read_is_byte_exact(self, tmp_path):
        bundle = make_bundle()
        path = str(tmp_path / "bundle.json")
        save_bundle(bundle, path)
        assert dump_bundle(read_bundle(path)) == dump_bundle(bundle)
