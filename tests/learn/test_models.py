"""The from-scratch model family: fit quality, determinism, persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.learn import LogisticClassifier, RidgeRegressor, TinyMLP


def linear_problem(n_rows: int = 200, seed: int = 0):
    rng = np.random.default_rng(seed)
    features = rng.standard_normal((n_rows, 5))
    weights = np.array([2.0, -1.0, 0.5, 0.0, 3.0])
    targets = features @ weights + 10.0 + 0.01 * rng.standard_normal(n_rows)
    return features, targets


def blob_problem(n_rows: int = 200, seed: int = 0):
    rng = np.random.default_rng(seed)
    half = n_rows // 2
    negative = rng.standard_normal((half, 3)) + np.array([-2.0, 0.0, 0.0])
    positive = rng.standard_normal((half, 3)) + np.array([2.0, 0.0, 0.0])
    features = np.vstack([negative, positive])
    labels = np.concatenate([np.zeros(half), np.ones(half)])
    return features, labels


class TestRidgeRegressor:
    def test_recovers_a_linear_relation(self):
        features, targets = linear_problem()
        model = RidgeRegressor(l2=1e-6).fit(features, targets)
        predictions = model.predict(features)
        assert float(np.abs(predictions - targets).mean()) < 0.1

    def test_near_constant_column_is_muted_not_amplified(self):
        # The serving-time failure this guards: a context feature (e.g.
        # window duration) nearly constant in training must not blow up
        # a prediction when served outside its training range.
        features, targets = linear_problem()
        features[:, 3] = 20.0 + 1e-3 * np.arange(features.shape[0]) / 1e3
        model = RidgeRegressor().fit(features, targets)
        row = features[:1].copy()
        baseline = float(model.predict(row)[0])
        row[0, 3] = 30.0  # 50% outside anything seen in training
        shifted = float(model.predict(row)[0])
        assert abs(shifted - baseline) < 1.0

    def test_unfitted_predict_rejected(self):
        with pytest.raises(ConfigurationError, match="not fitted"):
            RidgeRegressor().predict(np.zeros((1, 3)))

    def test_state_round_trip_is_exact(self):
        features, targets = linear_problem()
        model = RidgeRegressor().fit(features, targets)
        restored = RidgeRegressor.from_state(model.state())
        probe = np.linspace(-2, 2, 15).reshape(3, 5)
        assert np.array_equal(model.predict(probe), restored.predict(probe))

    def test_bad_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            RidgeRegressor(l2=-1.0)
        with pytest.raises(ConfigurationError, match="disagree"):
            RidgeRegressor().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ConfigurationError, match="at least 2"):
            RidgeRegressor().fit(np.zeros((1, 2)), np.zeros(1))


class TestLogisticClassifier:
    def test_separates_two_blobs(self):
        features, labels = blob_problem()
        model = LogisticClassifier().fit(features, labels)
        probabilities = model.predict_probability(features)
        assert np.all((probabilities >= 0) & (probabilities <= 1))
        accuracy = float(
            ((probabilities >= 0.5).astype(float) == labels).mean()
        )
        assert accuracy > 0.95

    def test_training_is_deterministic(self):
        features, labels = blob_problem()
        first = LogisticClassifier().fit(features, labels)
        second = LogisticClassifier().fit(features.copy(), labels.copy())
        assert first.state() == second.state()

    def test_non_binary_labels_rejected(self):
        features, labels = blob_problem()
        with pytest.raises(ConfigurationError, match="binary"):
            LogisticClassifier().fit(features, labels + 0.5)

    def test_state_round_trip_is_exact(self):
        features, labels = blob_problem()
        model = LogisticClassifier().fit(features, labels)
        restored = LogisticClassifier.from_state(model.state())
        assert np.array_equal(
            model.predict_probability(features),
            restored.predict_probability(features),
        )

    def test_unfitted_predict_rejected(self):
        with pytest.raises(ConfigurationError, match="not fitted"):
            LogisticClassifier().predict_probability(np.zeros((1, 3)))


class TestTinyMLP:
    def test_beats_the_mean_predictor_on_a_nonlinear_target(self):
        rng = np.random.default_rng(3)
        features = rng.uniform(-1, 1, size=(300, 2))
        targets = np.sin(2.5 * features[:, 0]) + features[:, 1] ** 2
        model = TinyMLP(seed=3).fit(features, targets)
        residual = float(np.abs(model.predict(features) - targets).mean())
        baseline = float(np.abs(targets - targets.mean()).mean())
        assert residual < 0.5 * baseline

    def test_same_seed_gives_bit_identical_weights(self):
        features, targets = linear_problem()
        first = TinyMLP(seed=11).fit(features, targets)
        second = TinyMLP(seed=11).fit(features.copy(), targets.copy())
        assert first.state() == second.state()

    def test_different_seeds_differ(self):
        features, targets = linear_problem()
        first = TinyMLP(seed=1).fit(features, targets)
        second = TinyMLP(seed=2).fit(features, targets)
        assert first.state() != second.state()

    def test_state_round_trip_is_exact(self):
        features, targets = linear_problem()
        model = TinyMLP(seed=5).fit(features, targets)
        restored = TinyMLP.from_state(model.state())
        assert np.array_equal(
            model.predict(features), restored.predict(features)
        )

    def test_bad_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            TinyMLP(hidden_units=0)
        with pytest.raises(ConfigurationError):
            TinyMLP(momentum=1.0)
        with pytest.raises(ConfigurationError):
            TinyMLP(step_size=0.0)
