"""LearnedEstimator: serving accuracy, refusals, cache, instrumentation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, EstimationError
from repro.io_.trace import CSITrace
from repro.learn import LearnedEstimator, TrainingConfig, train
from repro.obs import MetricsRegistry
from repro.obs.instrument import Instrumentation


def tiny_trace(n_packets: int = 8) -> CSITrace:
    """A trace far below the feature extractor's minimum window."""
    rng = np.random.default_rng(0)
    csi = (
        rng.standard_normal((n_packets, 2, 8))
        + 1j * rng.standard_normal((n_packets, 2, 8))
    ).astype(np.complex64)
    return CSITrace(
        csi=csi,
        timestamps_s=np.arange(n_packets) / 50.0,
        sample_rate_hz=50.0,
        subcarrier_indices=np.arange(8),
        meta={},
        strict=False,
    )


class TestServing:
    def test_estimates_near_truth_on_a_clean_window(
        self, synthetic_bundle, short_lab_trace
    ):
        estimator = LearnedEstimator(synthetic_bundle)
        estimate = estimator.estimate_breathing_bpm(short_lab_trace)
        # 15 bpm ground truth; the synthetic-corpus model generalizes to
        # the RF front half within a loose bound.
        assert estimate == pytest.approx(15.0, abs=4.0)

    def test_estimate_clamped_to_the_breathing_band(
        self, synthetic_bundle, short_lab_trace
    ):
        estimator = LearnedEstimator(synthetic_bundle)
        lo_hz, hi_hz = estimator.config.breathing_band_hz
        estimate = estimator.estimate_breathing_bpm(short_lab_trace)
        assert lo_hz * 60.0 <= estimate <= hi_hz * 60.0

    def test_mlp_head_served_on_request(
        self, synthetic_bundle, short_lab_trace
    ):
        ridge = LearnedEstimator(synthetic_bundle)
        mlp = LearnedEstimator(synthetic_bundle, use_mlp=True)
        assert ridge.estimate_breathing_bpm(
            short_lab_trace
        ) != mlp.estimate_breathing_bpm(short_lab_trace)

    def test_stale_catalogue_refused_at_construction(self, synthetic_bundle):
        from repro.learn import LearnedBundle

        stale = LearnedBundle(
            feature_names=synthetic_bundle.feature_names[:-1],
            breathing_model=synthetic_bundle.breathing_model,
        )
        with pytest.raises(ConfigurationError, match="feature"):
            LearnedEstimator(stale)


class TestRefusals:
    def test_short_window_raises_estimation_error(self, synthetic_bundle):
        estimator = LearnedEstimator(synthetic_bundle)
        with pytest.raises(EstimationError):
            estimator.estimate_breathing_bpm(tiny_trace())

    def test_apnea_probability_without_head(self, short_lab_trace):
        bundle = train(
            TrainingConfig(
                mode="synthetic",
                n_windows=16,
                seed=8,
                with_mlp=False,
                apnea_fraction=0.0,  # no positives => no apnea head
            )
        )
        assert bundle.apnea_model is None
        estimator = LearnedEstimator(bundle)
        with pytest.raises(ConfigurationError, match="no apnea"):
            estimator.apnea_probability(short_lab_trace)


class TestFeatureCacheAndMetrics:
    def test_repeat_window_hits_the_feature_cache(
        self, synthetic_bundle, short_lab_trace
    ):
        registry = MetricsRegistry()
        estimator = LearnedEstimator(
            synthetic_bundle,
            instrumentation=Instrumentation(registry=registry),
        )
        first = estimator.estimate_breathing_bpm(short_lab_trace)
        second = estimator.estimate_breathing_bpm(short_lab_trace)
        assert first == second
        by_name = {
            metric["name"]: metric
            for metric in registry.snapshot()["metrics"]
            if metric["kind"] == "counter"
        }
        assert by_name["learn_feature_cache_misses_count"]["value"] == 1.0
        assert by_name["learn_feature_cache_hits_count"]["value"] == 1.0

    def test_inference_counter_labels_the_served_head(
        self, synthetic_bundle, short_lab_trace
    ):
        registry = MetricsRegistry()
        estimator = LearnedEstimator(
            synthetic_bundle,
            instrumentation=Instrumentation(registry=registry),
        )
        estimator.estimate_breathing_bpm(short_lab_trace)
        estimator.apnea_probability(short_lab_trace)
        heads = {
            metric["labels"].get("head")
            for metric in registry.snapshot()["metrics"]
            if metric["name"] == "learn_inferences_total"
        }
        assert heads == {"rate", "apnea"}

    def test_cache_stays_bounded(self, synthetic_bundle, short_lab_trace):
        estimator = LearnedEstimator(synthetic_bundle)
        n = short_lab_trace.n_packets
        for k in range(12):
            piece = CSITrace(
                csi=short_lab_trace.csi[: n - k],
                timestamps_s=short_lab_trace.timestamps_s[: n - k],
                sample_rate_hz=short_lab_trace.sample_rate_hz,
                subcarrier_indices=short_lab_trace.subcarrier_indices,
                meta={},
                strict=False,
            )
            estimator.estimate_breathing_bpm(piece)
        assert len(estimator._feature_cache) <= 8
