"""Training pipeline: corpus shape, store path, byte-reproducibility."""

from __future__ import annotations

import numpy as np
import pytest

from repro import capture_trace, laboratory_scenario
from repro.errors import ConfigurationError, EstimationError
from repro.learn import (
    FEATURE_NAMES,
    TrainingConfig,
    dump_bundle,
    generate_corpus,
    train,
    train_from_store,
)
from repro.obs import MetricsRegistry
from repro.obs.instrument import Instrumentation
from repro.service.clock import SimulatedClock
from repro.service.sources import TracePacketSource
from repro.store import DirectoryBackend, RecordingTap, StoreCalibrationMemo

FAST = TrainingConfig(mode="synthetic", n_windows=32, seed=5, with_mlp=False)


class TestTrainingConfig:
    def test_defaults_validate(self):
        TrainingConfig()

    def test_bad_values_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown training mode"):
            TrainingConfig(mode="quantum")
        with pytest.raises(ConfigurationError, match="n_windows"):
            TrainingConfig(n_windows=4)
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            TrainingConfig(scenarios=("lab", "spaceship"))
        with pytest.raises(ConfigurationError, match="loss fractions"):
            TrainingConfig(loss_fractions=(1.5,))
        with pytest.raises(ConfigurationError, match="apnea_fraction"):
            TrainingConfig(apnea_fraction=2.0)


class TestGenerateCorpus:
    def test_synthetic_corpus_shape_and_labels(self):
        corpus = generate_corpus(FAST)
        assert corpus.features.shape == (corpus.n_windows, len(FEATURE_NAMES))
        assert corpus.n_windows >= 8
        assert corpus.feature_names == FEATURE_NAMES
        lo_hz, hi_hz = FAST.breathing_band_hz
        assert np.all(corpus.rates_bpm >= lo_hz * 60.0 - 1e-9)
        assert np.all(corpus.rates_bpm <= hi_hz * 60.0 + 1e-9)
        assert set(np.unique(corpus.apnea_labels)) <= {0.0, 1.0}
        assert corpus.apnea_labels.max() == 1.0  # apnea windows present

    def test_corpus_is_seed_deterministic(self):
        first = generate_corpus(FAST)
        second = generate_corpus(FAST)
        assert first.features.tobytes() == second.features.tobytes()
        assert np.array_equal(first.rates_bpm, second.rates_bpm)

    def test_window_counter_lands_in_metrics(self):
        registry = MetricsRegistry()
        corpus = generate_corpus(
            FAST, instrumentation=Instrumentation(registry=registry)
        )
        names = {
            metric["name"] for metric in registry.snapshot()["metrics"]
        }
        assert "learn_train_windows_total" in names
        assert corpus.n_windows > 0


class TestTrain:
    def test_bundle_fits_the_corpus_it_trained_on(self):
        bundle = train(FAST)
        assert bundle.breathing_model.fitted
        assert bundle.breathing_mlp is None  # with_mlp=False
        assert bundle.apnea_model is not None
        assert bundle.meta["mode"] == "synthetic"
        assert bundle.meta["train_mae_bpm"] < 5.0

    def test_mlp_head_optional(self, synthetic_bundle):
        assert synthetic_bundle.breathing_mlp is not None
        assert synthetic_bundle.breathing_mlp.fitted

    @pytest.mark.determinism
    def test_same_seed_trains_byte_identical_bundles(self):
        first = dump_bundle(train(FAST))
        second = dump_bundle(train(FAST))
        assert first == second

    @pytest.mark.determinism
    def test_different_seeds_train_different_bundles(self):
        other = TrainingConfig(
            mode="synthetic", n_windows=32, seed=6, with_mlp=False
        )
        assert dump_bundle(train(FAST)) != dump_bundle(train(other))


class TestTrainFromStore:
    @pytest.fixture(scope="class")
    def store_dir(self, tmp_path_factory, lab_person):
        root = tmp_path_factory.mktemp("learn_store")
        scenario = laboratory_scenario([lab_person], clutter_seed=9)
        # Long enough that 10 s windows at a 10 s hop clear the >= 8
        # window floor the trainer enforces.
        trace = capture_trace(
            scenario, duration_s=120.0, sample_rate_hz=50.0, seed=9
        )
        tap = RecordingTap(
            TracePacketSource(trace, SimulatedClock()),
            DirectoryBackend(str(root)),
            "learncorpus",
            sample_rate_hz=50.0,
            session_id="learn-test",
            meta={
                "breathing_rates_bpm": [
                    float(r) for r in trace.meta["breathing_rates_bpm"]
                ]
            },
        )
        while not tap.exhausted:
            tap.next_packet()
        tap.close()
        return str(root)

    def test_trains_a_rate_head_from_recorded_segments(self, store_dir):
        config = TrainingConfig(
            mode="synthetic",
            n_windows=8,
            window_duration_s=10.0,
            with_mlp=False,
        )
        bundle = train_from_store(store_dir, config=config)
        assert bundle.breathing_model.fitted
        assert bundle.apnea_model is None  # stores carry no apnea truth
        assert bundle.meta["mode"] == "store"

    def test_shared_memo_is_hit_across_train_calls(self, store_dir):
        config = TrainingConfig(
            mode="synthetic",
            n_windows=8,
            window_duration_s=10.0,
            with_mlp=False,
        )
        memo = StoreCalibrationMemo()
        train_from_store(store_dir, config=config, memo=memo)
        assert memo.misses > 0
        before = memo.hits
        train_from_store(store_dir, config=config, memo=memo)
        assert memo.hits > before

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no .cst stores"):
            train_from_store(str(tmp_path))

    def test_too_small_store_corpus_rejected(self, tmp_path, lab_person):
        scenario = laboratory_scenario([lab_person], clutter_seed=10)
        trace = capture_trace(
            scenario, duration_s=12.0, sample_rate_hz=50.0, seed=10
        )
        tap = RecordingTap(
            TracePacketSource(trace, SimulatedClock()),
            DirectoryBackend(str(tmp_path)),
            "tiny",
            sample_rate_hz=50.0,
            meta={
                "breathing_rates_bpm": [
                    float(r) for r in trace.meta["breathing_rates_bpm"]
                ]
            },
        )
        while not tap.exhausted:
            tap.next_packet()
        tap.close()
        with pytest.raises(EstimationError, match="too small"):
            train_from_store(str(tmp_path))
