"""Unit tests for ray construction and walls."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.physio.person import Person
from repro.rf.constants import SPEED_OF_LIGHT
from repro.rf.geometry import rx_antenna_positions
from repro.rf.multipath import (
    Wall,
    build_person_ray,
    build_static_rays,
)

RX = rx_antenna_positions((3.5, 4.0, 1.2), 0.0268, 3)
TX = (1.0, 1.5, 1.2)


class TestWall:
    def test_crossing_detection(self):
        wall = Wall(point=(0, 2, 0), normal=(0, 1, 0))
        assert wall.crossings((0, 0, 0), (0, 5, 0)) == 1
        assert wall.crossings((0, 0, 0), (0, 1, 0)) == 0
        assert wall.crossings((0, 3, 0), (0, 5, 0)) == 0

    def test_amplitude_factor(self):
        wall = Wall(point=(0, 2, 0), normal=(0, 1, 0), loss_db=6.0)
        crossing = wall.amplitude_factor((0, 0, 0), (0, 5, 0))
        no_crossing = wall.amplitude_factor((0, 0, 0), (0, 1, 0))
        assert crossing == pytest.approx(10 ** (-6.0 / 20.0))
        assert no_crossing == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Wall(point=(0, 0, 0), normal=(0, 0, 0))
        with pytest.raises(ConfigurationError):
            Wall(point=(0, 0, 0), normal=(0, 1, 0), loss_db=-1.0)


class TestStaticRays:
    def test_count_includes_los_and_clutter(self):
        rays = build_static_rays(TX, RX, n_clutter=5, seed=0)
        assert len(rays) == 6

    def test_no_los_option(self):
        rays = build_static_rays(TX, RX, n_clutter=5, include_los=False, seed=0)
        assert len(rays) == 5

    def test_per_antenna_shapes(self):
        rays = build_static_rays(TX, RX, n_clutter=3, seed=0)
        for ray in rays:
            assert ray.amplitudes.shape == (3,)
            assert ray.delays_s.shape == (3,)

    def test_los_delay_matches_distance(self):
        rays = build_static_rays(TX, RX, n_clutter=0, seed=0)
        los = rays[0]
        expected = np.linalg.norm(RX[0] - np.asarray(TX)) / SPEED_OF_LIGHT
        assert los.delays_s[0] == pytest.approx(expected)

    def test_los_is_strongest(self):
        rays = build_static_rays(TX, RX, n_clutter=8, seed=1)
        los_amp = rays[0].amplitudes.mean()
        clutter_amps = [r.amplitudes.mean() for r in rays[1:]]
        assert los_amp > max(clutter_amps)

    def test_clutter_reproducible_by_seed(self):
        a = build_static_rays(TX, RX, n_clutter=4, seed=7)
        b = build_static_rays(TX, RX, n_clutter=4, seed=7)
        for ra, rb in zip(a, b):
            assert np.allclose(ra.amplitudes, rb.amplitudes)
            assert np.allclose(ra.delays_s, rb.delays_s)

    def test_wall_attenuates_los(self):
        wall = Wall(point=(2.0, 2.75, 0), normal=(1, 0, 0), loss_db=10.0)
        with_wall = build_static_rays(TX, RX, n_clutter=0, walls=(wall,), seed=0)
        without = build_static_rays(TX, RX, n_clutter=0, seed=0)
        assert with_wall[0].amplitudes[0] == pytest.approx(
            without[0].amplitudes[0] * 10 ** (-0.5)
        )


class TestPersonRay:
    def test_delay_matches_reflection_path(self):
        person = Person(position=(2.2, 3.0, 1.0))
        ray = build_person_ray(person, TX, RX)
        d1 = np.linalg.norm(np.asarray(person.position) - np.asarray(TX))
        d2 = np.linalg.norm(RX[0] - np.asarray(person.position))
        assert ray.delays_s[0] == pytest.approx((d1 + d2) / SPEED_OF_LIGHT)

    def test_reflectivity_scales_amplitude(self):
        weak = Person(position=(2.2, 3.0, 1.0), reflectivity=0.5)
        strong = Person(position=(2.2, 3.0, 1.0), reflectivity=1.0)
        ray_weak = build_person_ray(weak, TX, RX)
        ray_strong = build_person_ray(strong, TX, RX)
        assert np.allclose(ray_weak.amplitudes, 0.5 * ray_strong.amplitudes)

    def test_antenna_delays_differ(self):
        # The 2.68 cm element spacing gives each antenna a slightly
        # different reflection path — the basis of the phase difference.
        person = Person(position=(2.2, 3.0, 1.0))
        ray = build_person_ray(person, TX, RX)
        assert ray.delays_s[0] != ray.delays_s[1]

    def test_farther_person_weaker(self):
        near = build_person_ray(Person(position=(2.0, 2.5, 1.0)), TX, RX)
        far = build_person_ray(Person(position=(4.0, 8.0, 1.0)), TX, RX)
        assert far.amplitudes.mean() < near.amplitudes.mean()
