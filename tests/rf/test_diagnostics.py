"""Tests for deployment sensitivity diagnostics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rf.diagnostics import phase_difference_sensitivity, sensitivity_map
from repro.rf.scene import Scenario, laboratory_scenario


class TestSensitivity:
    def test_per_subcarrier_shape(self):
        scenario = laboratory_scenario(clutter_seed=1)
        sensitivity = phase_difference_sensitivity(scenario)
        assert sensitivity.shape == (30,)
        assert np.all(sensitivity >= 0)

    def test_linear_in_small_displacement(self):
        # Doubling a small probe displacement doubles the response.
        scenario = laboratory_scenario(clutter_seed=1)
        s1 = phase_difference_sensitivity(scenario, displacement_m=0.5e-3)
        s2 = phase_difference_sensitivity(scenario, displacement_m=1.0e-3)
        ratio = s2[s1 > 1e-5] / s1[s1 > 1e-5]
        assert np.allclose(ratio, 2.0, rtol=0.1)

    def test_explicit_position(self):
        scenario = laboratory_scenario(clutter_seed=1)
        near = phase_difference_sensitivity(scenario, (2.2, 3.0, 1.0))
        far = phase_difference_sensitivity(scenario, (4.0, 8.0, 1.0))
        # Responses differ by position (and typically shrink with range).
        assert not np.allclose(near, far)

    def test_scenario_without_person_needs_position(self):
        scenario = Scenario(
            name="empty",
            tx_position=(0.0, 0.0, 1.0),
            rx_center=(3.0, 0.0, 1.0),
        )
        with pytest.raises(ConfigurationError):
            phase_difference_sensitivity(scenario)
        sensitivity = phase_difference_sensitivity(scenario, (1.5, 1.0, 1.0))
        assert sensitivity.shape == (30,)

    def test_validation(self):
        scenario = laboratory_scenario()
        with pytest.raises(ConfigurationError):
            phase_difference_sensitivity(scenario, displacement_m=0.0)


class TestSensitivityMap:
    def test_grid_shape_and_values(self):
        scenario = laboratory_scenario(clutter_seed=2)
        xs, ys, gain = sensitivity_map(
            scenario, (1.0, 4.0), (1.0, 6.0), resolution=4
        )
        assert xs.shape == (4,)
        assert ys.shape == (4,)
        assert gain.shape == (4, 4)
        assert np.all(gain >= 0)

    def test_map_shows_spatial_contrast(self):
        # Null points exist: the best position is far more sensitive than
        # the worst one.
        scenario = laboratory_scenario(clutter_seed=1)
        _, _, gain = sensitivity_map(
            scenario, (1.0, 4.0), (1.0, 7.0), resolution=6
        )
        assert gain.max() > 3.0 * max(gain.min(), 1e-6)

    def test_resolution_validation(self):
        scenario = laboratory_scenario()
        with pytest.raises(ConfigurationError):
            sensitivity_map(scenario, (0, 1), (0, 1), resolution=1)
