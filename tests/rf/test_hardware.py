"""Unit tests for the Eq. 3–4 hardware error model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rf.constants import INTEL5300_SUBCARRIER_INDICES
from repro.rf.hardware import HardwareConfig, HardwareErrorModel


def clean_csi(n_packets=200, n_rx=3, n_sub=30, value=1.0 + 0.5j):
    return np.full((n_packets, n_rx, n_sub), value, dtype=complex)


class TestPhaseErrors:
    def test_shape(self):
        model = HardwareErrorModel(HardwareConfig(seed=0))
        errors = model.phase_errors(100, 1 / 400.0, INTEL5300_SUBCARRIER_INDICES)
        assert errors.shape == (100, 30)

    def test_linear_in_subcarrier_index(self):
        # For each packet, e[k, i] = slope_k * m_i + offset_k exactly.
        model = HardwareErrorModel(HardwareConfig(seed=1))
        m = INTEL5300_SUBCARRIER_INDICES.astype(float)
        errors = model.phase_errors(50, 1 / 400.0, m)
        for k in range(50):
            fit = np.polyfit(m, errors[k], 1)
            predicted = np.polyval(fit, m)
            assert np.allclose(predicted, errors[k], atol=1e-9)

    def test_errors_vary_per_packet(self):
        model = HardwareErrorModel(HardwareConfig(seed=2))
        errors = model.phase_errors(100, 1 / 400.0, INTEL5300_SUBCARRIER_INDICES)
        assert np.std(errors[:, 0]) > 0.01

    def test_validation(self):
        model = HardwareErrorModel()
        with pytest.raises(ConfigurationError):
            model.phase_errors(0, 1 / 400.0, INTEL5300_SUBCARRIER_INDICES)
        with pytest.raises(ConfigurationError):
            model.phase_errors(10, 0.0, INTEL5300_SUBCARRIER_INDICES)


class TestApply:
    def test_raw_phase_scrambled_but_difference_stable(self):
        # The theorem-1 structure: per-antenna phase varies wildly across
        # packets while the cross-antenna difference is constant (up to
        # noise, disabled here).
        config = HardwareConfig(noise_sigma=0.0, agc_jitter_sigma=0.0, seed=3)
        measured = HardwareErrorModel(config).apply(
            clean_csi(), 1 / 400.0, INTEL5300_SUBCARRIER_INDICES
        )
        raw = np.angle(measured[:, 0, 0])
        assert np.std(np.diff(np.mod(raw, 2 * np.pi))) > 0.5
        diff = np.angle(measured[:, 0, :] * np.conj(measured[:, 1, :]))
        assert np.std(diff, axis=0).max() < 1e-10

    def test_constant_pll_offset_in_difference(self):
        config = HardwareConfig(
            noise_sigma=0.0,
            agc_jitter_sigma=0.0,
            pll_offsets_rad=(0.5, 1.7, 2.0),
            seed=4,
        )
        measured = HardwareErrorModel(config).apply(
            clean_csi(), 1 / 400.0, INTEL5300_SUBCARRIER_INDICES
        )
        diff = np.angle(measured[:, 0, :] * np.conj(measured[:, 1, :]))
        # Δβ = 0.5 − 1.7 = −1.2 appears as the constant offset.
        assert np.allclose(diff, -1.2, atol=1e-10)

    def test_noise_adds_variance_to_difference(self):
        noisy = HardwareConfig(noise_sigma=0.05, agc_jitter_sigma=0.0, seed=5)
        measured = HardwareErrorModel(noisy).apply(
            clean_csi(1000), 1 / 400.0, INTEL5300_SUBCARRIER_INDICES
        )
        diff = np.angle(measured[:, 0, 0] * np.conj(measured[:, 1, 0]))
        assert np.std(diff) > 0.01

    def test_agc_jitter_hits_amplitude_not_phase_difference(self):
        config = HardwareConfig(noise_sigma=0.0, agc_jitter_sigma=0.1, seed=6)
        measured = HardwareErrorModel(config).apply(
            clean_csi(500), 1 / 400.0, INTEL5300_SUBCARRIER_INDICES
        )
        amplitude = np.abs(measured[:, 0, 0])
        assert np.std(amplitude) / np.mean(amplitude) > 0.05
        diff = np.angle(measured[:, 0, :] * np.conj(measured[:, 1, :]))
        assert np.std(diff, axis=0).max() < 1e-10

    def test_agc_jitter_common_across_chains_and_subcarriers(self):
        config = HardwareConfig(noise_sigma=0.0, agc_jitter_sigma=0.1, seed=7)
        measured = HardwareErrorModel(config).apply(
            clean_csi(200), 1 / 400.0, INTEL5300_SUBCARRIER_INDICES
        )
        gains = np.abs(measured) / np.abs(clean_csi(200))
        # One gain per packet: no variation across chains or subcarriers.
        assert np.allclose(gains, gains[:, :1, :1])

    def test_too_few_pll_offsets_rejected(self):
        config = HardwareConfig(pll_offsets_rad=(0.1,))
        with pytest.raises(ConfigurationError):
            HardwareErrorModel(config).apply(
                clean_csi(10), 1 / 400.0, INTEL5300_SUBCARRIER_INDICES
            )

    def test_non_3d_csi_rejected(self):
        with pytest.raises(ConfigurationError):
            HardwareErrorModel().apply(
                np.zeros((10, 30), dtype=complex),
                1 / 400.0,
                INTEL5300_SUBCARRIER_INDICES,
            )


class TestConfigValidation:
    def test_negative_values_rejected(self):
        with pytest.raises(ConfigurationError):
            HardwareConfig(pbd_jitter_samples=-1.0)
        with pytest.raises(ConfigurationError):
            HardwareConfig(noise_sigma=-0.1)
        with pytest.raises(ConfigurationError):
            HardwareConfig(agc_jitter_sigma=-0.1)
        with pytest.raises(ConfigurationError):
            HardwareConfig(pll_offsets_rad=())
