"""Tests for the symbol-level OFDM PHY and the emergent error structure."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rf.constants import INTEL5300_SUBCARRIER_INDICES
from repro.rf.multipath import StaticRay
from repro.rf.ofdm import OfdmPhy, OfdmPhyConfig


def flat_ray(amplitude=0.7, delay=30e-9, n_rx=3):
    return StaticRay(
        amplitudes=np.full(n_rx, amplitude), delays_s=np.full(n_rx, delay)
    )


def clean_phy(**kwargs):
    defaults = dict(snr_db=np.inf, timing_jitter_samples=0.0, cfo_hz=0.0)
    defaults.update(kwargs)
    return OfdmPhy(OfdmPhyConfig(**defaults))


class TestIdealChain:
    def test_flat_channel_estimated_exactly(self):
        estimate = clean_phy().measure_packet([flat_ray(0.7)])
        assert estimate.csi.shape == (3, 30)
        assert np.allclose(np.abs(estimate.csi), 0.7, atol=1e-9)
        assert estimate.timing_error_samples == 0.0

    def test_two_ray_frequency_selectivity(self):
        # Two rays separated by 100 ns produce the textbook ripple
        # |H(f)| = |a1 + a2 e^{-j2πfΔτ}| across the band.
        rays = [flat_ray(1.0, 50e-9), flat_ray(0.5, 150e-9)]
        estimate = clean_phy().measure_packet(rays)
        freqs = INTEL5300_SUBCARRIER_INDICES * 312.5e3
        expected = np.abs(1.0 + 0.5 * np.exp(-2j * np.pi * freqs * 100e-9))
        assert np.allclose(np.abs(estimate.csi[0]), expected, rtol=1e-6)

    def test_detection_finds_packet(self):
        phy = clean_phy()
        waveforms, _ = phy.transmit([flat_ray()], guard=64)
        assert phy.detect_packet(waveforms[0]) == 64


class TestEmergentErrorStructure:
    def test_timing_error_becomes_phase_slope(self):
        """The paper's λ_p emerges: slope = −2π·Δt/N per subcarrier index."""
        phy = OfdmPhy(
            OfdmPhyConfig(snr_db=45.0, timing_jitter_samples=1.5, seed=3)
        )
        for packet in range(6):
            estimate = phy.measure_packet([flat_ray()], packet_index=packet)
            phase = np.unwrap(np.angle(estimate.csi[0]))
            slope = np.polyfit(INTEL5300_SUBCARRIER_INDICES, phase, 1)[0]
            expected = -2 * np.pi * estimate.timing_error_samples / 64
            assert slope == pytest.approx(expected, abs=0.003)

    def test_slope_varies_per_packet_but_difference_is_stable(self):
        """Theorem 1, derived: the per-packet slope scrambles raw phase,
        the cross-antenna difference cancels it."""
        phy = OfdmPhy(
            OfdmPhyConfig(snr_db=35.0, timing_jitter_samples=2.0, seed=5)
        )
        slopes = []
        differences = []
        for packet in range(8):
            estimate = phy.measure_packet([flat_ray()], packet_index=packet)
            phase = np.unwrap(np.angle(estimate.csi[0]))
            slopes.append(
                np.polyfit(INTEL5300_SUBCARRIER_INDICES, phase, 1)[0]
            )
            differences.append(
                np.angle(estimate.csi[0] * np.conj(estimate.csi[1]))
            )
        assert np.std(slopes) > 0.005  # raw slope scrambles per packet
        spread = np.std(np.asarray(differences), axis=0)
        assert spread.max() < 0.1  # the difference stays put

    def test_cfo_rotates_all_chains_equally(self):
        phy_cfo = OfdmPhy(
            OfdmPhyConfig(snr_db=np.inf, timing_jitter_samples=0.0,
                          cfo_hz=10e3, seed=1)
        )
        estimate = phy_cfo.measure_packet([flat_ray()])
        reference = clean_phy().measure_packet([flat_ray()])
        rotation = np.angle(estimate.csi / reference.csi)
        # One common rotation across subcarriers and antennas (λ_c).
        assert np.std(rotation) < 0.06
        assert np.abs(np.mean(rotation)) > 0.01

    def test_matches_injected_error_model_structure(self):
        """The PHY-derived errors have the HardwareErrorModel's signature:
        measured phase = true phase + slope·m_i + offset, shared across
        chains."""
        phy = OfdmPhy(
            OfdmPhyConfig(snr_db=45.0, timing_jitter_samples=1.5,
                          cfo_hz=2e3, seed=9)
        )
        ray = flat_ray(0.7, 40e-9)
        estimate = phy.measure_packet([ray], packet_index=3)
        m = INTEL5300_SUBCARRIER_INDICES.astype(float)
        for antenna in range(3):
            phase = np.unwrap(np.angle(estimate.csi[antenna]))
            fit = np.polyval(np.polyfit(m, phase, 1), m)
            residual = phase - fit
            # After removing slope+offset, the residual is the (flat-ish)
            # true channel phase — small for a single ray.
            assert np.std(residual) < 0.05


class TestValidation:
    def test_negative_jitter_rejected(self):
        with pytest.raises(ConfigurationError):
            OfdmPhyConfig(timing_jitter_samples=-1.0)

    def test_csi_on_intel_map(self):
        estimate = clean_phy().measure_packet([flat_ray()])
        assert estimate.csi.shape[1] == INTEL5300_SUBCARRIER_INDICES.size
