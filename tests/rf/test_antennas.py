"""Unit tests for antenna gain models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rf.antennas import DirectionalAntenna, OmniAntenna


class TestOmniAntenna:
    def test_gain_is_direction_independent(self):
        antenna = OmniAntenna(amplitude_gain=1.5)
        for direction in ([1, 0, 0], [0, 1, 0], [0, 0, -1]):
            assert antenna.gain(np.asarray(direction)) == 1.5

    def test_gain_towards(self):
        antenna = OmniAntenna()
        assert antenna.gain_towards((0, 0, 0), (5, 5, 0)) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OmniAntenna(amplitude_gain=0.0)


class TestDirectionalAntenna:
    def make(self, **kwargs):
        return DirectionalAntenna(
            position=(0, 0, 0), boresight=(0, 10, 0), **kwargs
        )

    def test_peak_on_boresight(self):
        antenna = self.make(peak_amplitude_gain=2.8)
        assert antenna.gain(np.array([0, 1, 0])) == pytest.approx(2.8)

    def test_floor_behind(self):
        antenna = self.make(floor=0.7)
        assert antenna.gain(np.array([0, -1, 0])) == 0.7

    def test_monotone_falloff(self):
        antenna = self.make()
        angles = np.deg2rad([0, 20, 40, 60, 80])
        gains = [
            antenna.gain(np.array([np.sin(a), np.cos(a), 0.0])) for a in angles
        ]
        assert all(g1 >= g2 for g1, g2 in zip(gains, gains[1:]))

    def test_gain_towards_person(self):
        antenna = DirectionalAntenna(position=(0, 0, 0), boresight=(2, 3, 1))
        on_axis = antenna.gain_towards((0, 0, 0), (2, 3, 1))
        off_axis = antenna.gain_towards((0, 0, 0), (-2, -3, 1))
        assert on_axis == pytest.approx(antenna.peak_amplitude_gain)
        assert off_axis < on_axis

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self.make(floor=0.0)
        with pytest.raises(ConfigurationError):
            self.make(peak_amplitude_gain=1.0, floor=2.0)
        with pytest.raises(ConfigurationError):
            self.make(exponent=0.0)
        with pytest.raises(ConfigurationError):
            DirectionalAntenna(position=(0, 0), boresight=(1, 1, 1))
