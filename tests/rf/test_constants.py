"""Unit tests for the 5 GHz / Intel-5300 constants."""

import numpy as np
import pytest

from repro.rf.constants import (
    ANTENNA_SPACING_M,
    DEFAULT_CARRIER_HZ,
    INTEL5300_SUBCARRIER_INDICES,
    N_REPORTED_SUBCARRIERS,
    N_RX_ANTENNAS,
    SPEED_OF_LIGHT,
    SUBCARRIER_SPACING_HZ,
    subcarrier_frequencies,
    wavelength,
)


class TestSubcarrierMap:
    def test_exactly_30_reported(self):
        assert N_REPORTED_SUBCARRIERS == 30
        assert INTEL5300_SUBCARRIER_INDICES.size == 30

    def test_grouping_structure(self):
        # The Ng=2 grouped set walks even indices on the negative side and
        # odd indices on the positive side, pinning -1/+1 and ±28.
        negative = INTEL5300_SUBCARRIER_INDICES[INTEL5300_SUBCARRIER_INDICES < 0]
        positive = INTEL5300_SUBCARRIER_INDICES[INTEL5300_SUBCARRIER_INDICES > 0]
        assert negative.size == positive.size == 15
        # Even-index walk up to the -1 edge subcarrier…
        assert np.all(np.diff(negative)[:-1] == 2)
        assert negative[-1] == -1
        # …mirrored as an odd-index walk up to the +28 edge subcarrier.
        assert np.all(np.diff(positive)[:-1] == 2)
        assert positive[0] == 1

    def test_indices_strictly_increasing(self):
        assert np.all(np.diff(INTEL5300_SUBCARRIER_INDICES) > 0)

    def test_extremes(self):
        assert INTEL5300_SUBCARRIER_INDICES[0] == -28
        assert INTEL5300_SUBCARRIER_INDICES[-1] == 28

    def test_dc_not_reported(self):
        assert 0 not in INTEL5300_SUBCARRIER_INDICES


class TestFrequencies:
    def test_antenna_spacing_is_half_wavelength(self):
        # The defining relation of the paper's setup: d = λ/2.
        lam = SPEED_OF_LIGHT / DEFAULT_CARRIER_HZ
        assert ANTENNA_SPACING_M == pytest.approx(lam / 2.0)

    def test_carrier_in_5ghz_band(self):
        assert 5.0e9 < DEFAULT_CARRIER_HZ < 6.0e9

    def test_subcarrier_frequencies_span(self):
        freqs = subcarrier_frequencies()
        assert freqs.size == 30
        span = freqs[-1] - freqs[0]
        assert span == pytest.approx(56 * SUBCARRIER_SPACING_HZ)

    def test_wavelength_roundtrip(self):
        assert wavelength(SPEED_OF_LIGHT) == pytest.approx(1.0)
        assert wavelength(DEFAULT_CARRIER_HZ) == pytest.approx(
            2 * ANTENNA_SPACING_M
        )

    def test_three_rx_antennas(self):
        assert N_RX_ANTENNAS == 3
