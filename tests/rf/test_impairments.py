"""Tests for the seeded impairment injector."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rf.impairments import (
    BernoulliLoss,
    ClippedPackets,
    ClockDrift,
    ClockGlitch,
    CorruptedTimestamps,
    DropoutGap,
    GilbertElliottLoss,
    ImpulsiveCorruption,
    SegmentImpairment,
    SubcarrierNulls,
    TimestampJitter,
    apply_impairments,
)


class TestBernoulliLoss:
    def test_drops_expected_fraction(self, lab_trace):
        out = BernoulliLoss(0.2)(lab_trace, seed=1)
        kept = out.n_packets / lab_trace.n_packets
        assert kept == pytest.approx(0.8, abs=0.02)
        assert out.meta["impairments"][0]["n_dropped"] == (
            lab_trace.n_packets - out.n_packets
        )

    def test_deterministic_under_seed(self, lab_trace):
        a = BernoulliLoss(0.1)(lab_trace, seed=3)
        b = BernoulliLoss(0.1)(lab_trace, seed=3)
        assert np.array_equal(a.timestamps_s, b.timestamps_s)
        assert np.array_equal(a.csi, b.csi)

    def test_input_untouched(self, lab_trace):
        before = lab_trace.csi.copy()
        BernoulliLoss(0.5)(lab_trace, seed=0)
        assert np.array_equal(lab_trace.csi, before)
        assert "impairments" not in lab_trace.meta

    def test_validates_rate(self):
        with pytest.raises(ConfigurationError):
            BernoulliLoss(1.0)
        with pytest.raises(ConfigurationError):
            BernoulliLoss(-0.1)


class TestGilbertElliottLoss:
    def test_loss_is_bursty(self, lab_trace):
        out = GilbertElliottLoss(
            p_enter_bad=0.002, p_exit_bad=0.05, loss_bad=1.0
        )(lab_trace, seed=2)
        record = out.meta["impairments"][0]
        assert record["n_dropped"] > 0
        # Mean burst length 1/p_exit = 20 packets: far fewer distinct loss
        # runs than dropped packets, unlike Bernoulli loss.
        gaps = np.diff(out.timestamps_s)
        interval = 1.0 / lab_trace.sample_rate_hz
        n_runs = int((gaps > 1.5 * interval).sum())
        assert 0 < n_runs < record["n_dropped"] / 3

    def test_validates_probabilities(self):
        with pytest.raises(ConfigurationError):
            GilbertElliottLoss(p_enter_bad=0.0)
        with pytest.raises(ConfigurationError):
            GilbertElliottLoss(loss_bad=1.5)


class TestDropoutGap:
    def test_carves_requested_hole(self, lab_trace):
        out = DropoutGap(1.0, start_s=10.0)(lab_trace, seed=0)
        gaps = np.diff(out.timestamps_s)
        assert gaps.max() == pytest.approx(1.0, abs=0.01)
        assert out.timestamps_s[np.argmax(gaps)] == pytest.approx(10.0, abs=0.01)

    def test_random_placement_recorded(self, lab_trace):
        out = DropoutGap(0.5)(lab_trace, seed=9)
        start = out.meta["impairments"][0]["realized_start_s"]
        assert 0.0 < start < lab_trace.duration_s

    def test_validates_duration(self):
        with pytest.raises(ConfigurationError):
            DropoutGap(0.0)


class TestTimestampFaults:
    def test_jitter_perturbs_timestamps(self, lab_trace):
        out = TimestampJitter(1e-3)(lab_trace, seed=4)
        delta = out.timestamps_s - lab_trace.timestamps_s
        assert np.std(delta) == pytest.approx(1e-3, rel=0.2)
        assert not out.quality_report().is_uniform

    def test_drift_stretches_time(self, lab_trace):
        out = ClockDrift(1000.0)(lab_trace, seed=0)
        stretch = out.duration_s / lab_trace.duration_s
        assert stretch == pytest.approx(1.001, rel=1e-6)

    def test_glitch_jumps_backwards(self, lab_trace):
        out = ClockGlitch(0.5, at_s=15.0)(lab_trace, seed=0)
        report = out.quality_report()
        assert report.n_backward_steps == 1
        assert not report.is_monotonic

    def test_corrupted_timestamps_are_nan(self, lab_trace):
        out = CorruptedTimestamps(0.05)(lab_trace, seed=1)
        report = out.quality_report()
        assert report.n_nonfinite_timestamps > 0
        assert report.n_nonfinite_timestamps == (
            out.meta["impairments"][0]["n_corrupted"]
        )


class TestCsiFaults:
    def test_impulsive_spikes_are_large_but_finite(self, lab_trace):
        out = ImpulsiveCorruption(0.05, magnitude=20.0)(lab_trace, seed=1)
        assert np.all(np.isfinite(out.csi))
        assert np.abs(out.csi).max() > 5 * np.abs(lab_trace.csi).max()

    def test_clipping_caps_amplitude_preserves_phase(self, lab_trace):
        out = ClippedPackets(1.0, clip_quantile=0.5)(lab_trace, seed=1)
        level = np.quantile(np.abs(lab_trace.csi), 0.5)
        assert np.abs(out.csi).max() <= level * (1 + 1e-9)
        clipped = np.abs(lab_trace.csi) > level
        assert np.allclose(
            np.angle(out.csi[clipped]), np.angle(lab_trace.csi[clipped])
        )

    def test_subcarrier_nulls(self, lab_trace):
        out = SubcarrierNulls(indices=(0, 7))(lab_trace, seed=0)
        assert np.all(out.csi[:, :, [0, 7]] == 0)
        assert np.any(out.csi[:, :, 1] != 0)

    def test_null_indices_validated(self, lab_trace):
        with pytest.raises(ConfigurationError):
            SubcarrierNulls(indices=(99,))(lab_trace, seed=0)


class TestSegmentImpairment:
    def test_zero_length_window_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            SegmentImpairment(
                inner=BernoulliLoss(0.3), start_s=5.0, end_s=5.0
            )

    def test_inverted_window_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            SegmentImpairment(
                inner=BernoulliLoss(0.3), start_s=5.0, end_s=2.0
            )

    def test_needs_an_inner_impairment(self):
        with pytest.raises(ConfigurationError, match="inner"):
            SegmentImpairment(inner=None, start_s=0.0, end_s=1.0)

    def test_whole_trace_window_matches_bare_inner(self, short_lab_trace):
        # A window covering every packet must degrade exactly as the inner
        # impairment would applied bare (same derived seed => same draw).
        duration = float(
            short_lab_trace.timestamps_s[-1] - short_lab_trace.timestamps_s[0]
        )
        whole = apply_impairments(
            short_lab_trace,
            [
                SegmentImpairment(
                    inner=BernoulliLoss(0.3),
                    start_s=0.0,
                    end_s=duration + 1.0,
                )
            ],
            seed=7,
        )
        bare = apply_impairments(
            short_lab_trace, [BernoulliLoss(0.3)], seed=7
        )
        assert np.array_equal(whole.timestamps_s, bare.timestamps_s)
        assert np.array_equal(whole.csi, bare.csi)

    def test_outside_window_untouched(self, short_lab_trace):
        t0 = float(short_lab_trace.timestamps_s[0])
        out = apply_impairments(
            short_lab_trace,
            [
                SegmentImpairment(
                    inner=BernoulliLoss(0.6), start_s=4.0, end_s=6.0
                )
            ],
            seed=3,
        )
        offsets_in = short_lab_trace.timestamps_s - t0
        offsets_out = out.timestamps_s - t0
        clean_in = offsets_in[(offsets_in < 4.0) | (offsets_in >= 6.0)]
        clean_out = offsets_out[(offsets_out < 4.0) | (offsets_out >= 6.0)]
        assert np.array_equal(clean_in, clean_out)
        # Inside the window packets were actually lost.
        n_window_in = int(((offsets_in >= 4.0) & (offsets_in < 6.0)).sum())
        n_window_out = int(((offsets_out >= 4.0) & (offsets_out < 6.0)).sum())
        assert n_window_out < n_window_in

    def test_tiny_window_with_fewer_than_two_packets_is_a_noop(
        self, short_lab_trace
    ):
        # 200 Hz capture: a 1 ms window holds at most one packet; the
        # splice degenerates to "nothing to degrade" rather than crashing.
        out = apply_impairments(
            short_lab_trace,
            [
                SegmentImpairment(
                    inner=BernoulliLoss(0.9), start_s=2.0, end_s=2.001
                )
            ],
            seed=0,
        )
        assert np.array_equal(out.timestamps_s, short_lab_trace.timestamps_s)
        assert out.meta["impairments"][-1]["inner_record"] is None


class TestComposition:
    def test_chain_records_every_link(self, lab_trace):
        out = apply_impairments(
            lab_trace,
            [BernoulliLoss(0.1), DropoutGap(1.0, start_s=12.0), SubcarrierNulls(2)],
            seed=5,
        )
        kinds = [r["type"] for r in out.meta["impairments"]]
        assert kinds == ["bernoulli-loss", "dropout-gap", "subcarrier-nulls"]

    def test_master_seed_reproducible(self, lab_trace):
        chain = [BernoulliLoss(0.1), DropoutGap(0.5)]
        a = apply_impairments(lab_trace, chain, seed=11)
        b = apply_impairments(lab_trace, chain, seed=11)
        c = apply_impairments(lab_trace, chain, seed=12)
        assert np.array_equal(a.timestamps_s, b.timestamps_s)
        assert not np.array_equal(a.timestamps_s, c.timestamps_s)

    def test_ground_truth_meta_survives(self, lab_trace):
        out = apply_impairments(lab_trace, [BernoulliLoss(0.3)], seed=0)
        assert out.meta["breathing_rates_bpm"] == (
            lab_trace.meta["breathing_rates_bpm"]
        )
