"""Unit tests for deployment scenarios."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.physio.person import Person
from repro.rf.antennas import DirectionalAntenna, OmniAntenna
from repro.rf.scene import (
    Scenario,
    corridor_scenario,
    laboratory_scenario,
    through_wall_scenario,
)


class TestLaboratory:
    def test_default_has_one_person(self):
        scenario = laboratory_scenario()
        assert len(scenario.persons) == 1
        assert scenario.name == "laboratory"

    def test_omni_by_default(self):
        assert isinstance(laboratory_scenario().tx_antenna(), OmniAntenna)

    def test_directional_aims_at_person(self):
        scenario = laboratory_scenario(directional_tx=True)
        antenna = scenario.tx_antenna()
        assert isinstance(antenna, DirectionalAntenna)
        assert antenna.boresight == scenario.persons[0].position

    def test_build_rays_counts(self):
        scenario = laboratory_scenario()
        static, dynamic = scenario.build_rays()
        assert len(static) == scenario.n_clutter + 1
        assert len(dynamic) == 1

    def test_rx_positions_spacing(self):
        positions = laboratory_scenario().rx_positions()
        assert positions.shape == (3, 3)
        gaps = np.linalg.norm(np.diff(positions, axis=0), axis=1)
        assert np.allclose(gaps, 0.0268)


class TestThroughWall:
    def test_wall_between_tx_and_rx(self):
        scenario = through_wall_scenario(4.0)
        assert len(scenario.walls) == 1
        wall = scenario.walls[0]
        assert wall.crossings(scenario.tx_position, scenario.rx_center) == 1

    def test_person_on_tx_side(self):
        scenario = through_wall_scenario(4.0)
        wall = scenario.walls[0]
        # TX and the person sit on the same side of the wall.
        assert (
            wall.crossings(scenario.tx_position, scenario.persons[0].position)
            == 0
        )

    def test_distance_parameter(self):
        scenario = through_wall_scenario(6.0)
        assert scenario.tx_rx_distance_m == pytest.approx(6.0)

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            through_wall_scenario(0.2)


class TestCorridor:
    def test_distance_parameter(self):
        scenario = corridor_scenario(11.0)
        assert scenario.tx_rx_distance_m == pytest.approx(11.0)

    def test_sparser_clutter_than_lab(self):
        assert corridor_scenario().n_clutter < laboratory_scenario().n_clutter

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            corridor_scenario(0.1)


class TestScenario:
    def test_with_persons_copy(self):
        scenario = laboratory_scenario()
        new_person = Person(position=(1.0, 5.0, 1.0))
        updated = scenario.with_persons([new_person])
        assert updated.persons == [new_person]
        assert len(scenario.persons) == 1  # original untouched

    def test_directional_without_person_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(
                name="bad",
                tx_position=(0, 0, 1),
                rx_center=(3, 0, 1),
                persons=[],
                directional_tx=True,
            )

    def test_negative_clutter_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(
                name="bad",
                tx_position=(0, 0, 1),
                rx_center=(3, 0, 1),
                n_clutter=-1,
            )
