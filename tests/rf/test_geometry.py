"""Unit tests for scene geometry helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rf.geometry import (
    as_point,
    distance,
    reflection_path_length,
    rx_antenna_positions,
    unit_vector,
)


class TestPoints:
    def test_as_point_coerces(self):
        p = as_point([1, 2, 3])
        assert p.dtype == float
        assert p.shape == (3,)

    def test_as_point_rejects_wrong_shape(self):
        with pytest.raises(ConfigurationError):
            as_point([1, 2])

    def test_distance(self):
        assert distance((0, 0, 0), (3, 4, 0)) == pytest.approx(5.0)

    def test_reflection_path(self):
        assert reflection_path_length((0, 0, 0), (3, 4, 0), (6, 8, 0)) == (
            pytest.approx(10.0)
        )

    def test_unit_vector(self):
        v = unit_vector((0, 0, 0), (0, 5, 0))
        assert np.allclose(v, [0, 1, 0])

    def test_unit_vector_coincident_rejected(self):
        with pytest.raises(ConfigurationError):
            unit_vector((1, 1, 1), (1, 1, 1))


class TestAntennaArray:
    def test_positions_centered(self):
        positions = rx_antenna_positions((0, 0, 0), 0.0268, 3)
        assert positions.shape == (3, 3)
        assert np.allclose(positions.mean(axis=0), [0, 0, 0])

    def test_spacing(self):
        positions = rx_antenna_positions((1, 2, 3), 0.0268, 3)
        gaps = np.linalg.norm(np.diff(positions, axis=0), axis=1)
        assert np.allclose(gaps, 0.0268)

    def test_axis_normalized(self):
        a = rx_antenna_positions((0, 0, 0), 1.0, 2, axis=(2, 0, 0))
        b = rx_antenna_positions((0, 0, 0), 1.0, 2, axis=(1, 0, 0))
        assert np.allclose(a, b)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            rx_antenna_positions((0, 0, 0), 0.0, 3)
        with pytest.raises(ConfigurationError):
            rx_antenna_positions((0, 0, 0), 1.0, 0)
        with pytest.raises(ConfigurationError):
            rx_antenna_positions((0, 0, 0), 1.0, 2, axis=(0, 0, 0))
