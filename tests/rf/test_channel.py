"""Unit tests for the Eq. 2 channel model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.physio.person import Person
from repro.rf.channel import simulate_clean_csi
from repro.rf.constants import SPEED_OF_LIGHT, subcarrier_frequencies
from repro.rf.geometry import rx_antenna_positions
from repro.rf.multipath import StaticRay, build_person_ray, build_static_rays

TX = (1.0, 1.5, 1.2)
RX = rx_antenna_positions((3.5, 4.0, 1.2), 0.0268, 3)
FREQS = subcarrier_frequencies()


def single_ray(amplitude=1.0, delay=20e-9):
    return StaticRay(
        amplitudes=np.full(3, amplitude), delays_s=np.full(3, delay)
    )


class TestStaticChannel:
    def test_single_ray_phase_matches_eq2(self):
        times = np.arange(10) / 400.0
        csi = simulate_clean_csi(
            [single_ray(0.7, 25e-9)], [], times, FREQS, n_rx=3
        )
        expected = 0.7 * np.exp(-2j * np.pi * FREQS * 25e-9)
        assert np.allclose(csi[0, 0], expected)
        # Static scene: constant over time.
        assert np.allclose(csi, csi[0])

    def test_superposition(self):
        times = np.arange(5) / 400.0
        r1, r2 = single_ray(1.0, 20e-9), single_ray(0.5, 45e-9)
        both = simulate_clean_csi([r1, r2], [], times, FREQS, n_rx=3)
        separate = simulate_clean_csi(
            [r1], [], times, FREQS, n_rx=3
        ) + simulate_clean_csi([r2], [], times, FREQS, n_rx=3)
        assert np.allclose(both, separate)

    def test_output_shape(self):
        times = np.arange(7) / 400.0
        csi = simulate_clean_csi([single_ray()], [], times, FREQS, n_rx=3)
        assert csi.shape == (7, 3, 30)


class TestDynamicChannel:
    def test_chest_displacement_modulates_phase(self):
        person = Person(position=(2.2, 3.0, 1.0), heartbeat=None)
        ray = build_person_ray(person, TX, RX)
        times = np.arange(800) / 400.0
        displacement = person.chest_displacement(times)
        csi = simulate_clean_csi([], [(ray, displacement)], times, FREQS, n_rx=3)
        phase = np.unwrap(np.angle(csi[:, 0, 0]))
        # Phase swing = 2π · 2A / λ for the dominant subcarrier.
        lam = SPEED_OF_LIGHT / FREQS[0]
        expected_swing = 2 * np.pi * 2 * (2 * 5e-3) / lam
        assert np.ptp(phase) == pytest.approx(expected_swing, rel=0.05)

    def test_presence_gate_removes_person(self):
        person = Person(position=(2.2, 3.0, 1.0), heartbeat=None)
        ray = build_person_ray(person, TX, RX)
        times = np.arange(100) / 400.0
        displacement = person.chest_displacement(times)
        gone = simulate_clean_csi(
            [],
            [(ray, displacement)],
            times,
            FREQS,
            n_rx=3,
            person_present=np.zeros(100, dtype=bool),
        )
        assert np.allclose(gone, 0.0)

    def test_static_plus_person_differs_from_static(self):
        person = Person(position=(2.2, 3.0, 1.0), heartbeat=None)
        ray = build_person_ray(person, TX, RX)
        static = build_static_rays(TX, RX, n_clutter=3, seed=0)
        times = np.arange(400) / 400.0
        displacement = person.chest_displacement(times)
        with_person = simulate_clean_csi(
            static, [(ray, displacement)], times, FREQS, n_rx=3
        )
        without = simulate_clean_csi(static, [], times, FREQS, n_rx=3)
        assert not np.allclose(with_person, without)
        # The static-only channel is constant; with the person it varies.
        assert np.allclose(without, without[0])
        assert np.std(np.abs(with_person[:, 0, 0])) > 0


class TestMotionPerturbation:
    def test_body_motion_perturbs_static_rays(self):
        ray = StaticRay(
            amplitudes=np.full(3, 1.0),
            delays_s=np.full(3, 20e-9),
            motion_amp_sens=0.8,
            motion_phase_sens=0.5,
        )
        times = np.arange(200) / 400.0
        body = 0.2 * np.sin(2 * np.pi * 1.0 * times)
        perturbed = simulate_clean_csi(
            [ray], [], times, FREQS, n_rx=3, body_displacement_m=body
        )
        assert np.std(np.abs(perturbed[:, 0, 0])) > 0.01

    def test_zero_body_motion_is_noop(self):
        ray = StaticRay(
            amplitudes=np.full(3, 1.0),
            delays_s=np.full(3, 20e-9),
            motion_amp_sens=0.8,
            motion_phase_sens=0.5,
        )
        times = np.arange(50) / 400.0
        a = simulate_clean_csi([ray], [], times, FREQS, n_rx=3)
        b = simulate_clean_csi(
            [ray], [], times, FREQS, n_rx=3, body_displacement_m=np.zeros(50)
        )
        assert np.allclose(a, b)


class TestValidation:
    def test_mismatched_displacement_rejected(self):
        person = Person(position=(2, 3, 1))
        ray = build_person_ray(person, TX, RX)
        times = np.arange(10) / 400.0
        with pytest.raises(ConfigurationError):
            simulate_clean_csi([], [(ray, np.zeros(5))], times, FREQS, n_rx=3)

    def test_mismatched_body_rejected(self):
        times = np.arange(10) / 400.0
        with pytest.raises(ConfigurationError):
            simulate_clean_csi(
                [single_ray()], [], times, FREQS, n_rx=3,
                body_displacement_m=np.zeros(3),
            )

    def test_wrong_antenna_count_rejected(self):
        times = np.arange(10) / 400.0
        with pytest.raises(ConfigurationError):
            simulate_clean_csi([single_ray()], [], times, FREQS, n_rx=2)
