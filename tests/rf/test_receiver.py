"""Unit tests for the CSI capture front end."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.physio.motion import ActivityScript, ActivityState, MotionEvent
from repro.rf.constants import INTEL5300_SUBCARRIER_INDICES
from repro.rf.hardware import HardwareConfig
from repro.rf.receiver import capture_trace
from repro.rf.scene import laboratory_scenario


class TestCaptureTrace:
    def test_shape_and_metadata(self, lab_trace, lab_person):
        assert lab_trace.csi.shape == (12_000, 3, 30)
        assert lab_trace.sample_rate_hz == 400.0
        assert lab_trace.meta["scenario"] == "laboratory"
        assert lab_trace.meta["breathing_rates_bpm"] == [
            lab_person.breathing_rate_bpm
        ]
        assert lab_trace.meta["heart_rates_bpm"] == [lab_person.heart_rate_bpm]

    def test_subcarrier_indices_are_intel_map(self, lab_trace):
        assert np.array_equal(
            lab_trace.subcarrier_indices, INTEL5300_SUBCARRIER_INDICES
        )

    def test_timestamps_regular(self, lab_trace):
        gaps = np.diff(lab_trace.timestamps_s)
        assert np.allclose(gaps, 1 / 400.0)

    def test_timing_jitter(self):
        scenario = laboratory_scenario()
        trace = capture_trace(
            scenario, duration_s=2.0, seed=0, timing_jitter=0.05
        )
        gaps = np.diff(trace.timestamps_s)
        assert np.std(gaps) > 0.0
        assert np.all(gaps >= 0.0)

    def test_reproducible_for_same_seed(self):
        scenario = laboratory_scenario(clutter_seed=9)
        a = capture_trace(scenario, duration_s=1.0, seed=4)
        b = capture_trace(scenario, duration_s=1.0, seed=4)
        assert np.array_equal(a.csi, b.csi)

    def test_different_hardware_seeds_differ(self):
        scenario = laboratory_scenario(clutter_seed=9)
        a = capture_trace(scenario, duration_s=1.0, seed=4)
        b = capture_trace(scenario, duration_s=1.0, seed=5)
        assert not np.allclose(a.csi, b.csi)

    def test_custom_hardware_config(self):
        scenario = laboratory_scenario()
        clean = capture_trace(
            scenario,
            duration_s=1.0,
            hardware=HardwareConfig(noise_sigma=0.0, agc_jitter_sigma=0.0),
        )
        noisy = capture_trace(
            scenario,
            duration_s=1.0,
            hardware=HardwareConfig(noise_sigma=0.1, agc_jitter_sigma=0.0),
        )
        assert not np.allclose(clean.csi, noisy.csi)

    def test_activity_script_gates_person(self):
        scenario = dataclasses.replace(
            laboratory_scenario(),
            activity=ActivityScript(
                events=(MotionEvent(ActivityState.NO_PERSON, 0.0, 10.0),)
            ),
        )
        empty = capture_trace(
            scenario,
            duration_s=2.0,
            hardware=HardwareConfig(noise_sigma=0.0, agc_jitter_sigma=0.0),
        )
        # No person, no noise → phase difference is constant over packets.
        diff = np.angle(empty.csi[:, 0, :] * np.conj(empty.csi[:, 1, :]))
        assert np.std(diff, axis=0).max() < 1e-9

    def test_validation(self):
        scenario = laboratory_scenario()
        with pytest.raises(ConfigurationError):
            capture_trace(scenario, duration_s=0.0)
        with pytest.raises(ConfigurationError):
            capture_trace(scenario, duration_s=10.0, sample_rate_hz=0.0)
        with pytest.raises(ConfigurationError):
            capture_trace(scenario, duration_s=0.001, sample_rate_hz=400.0)
