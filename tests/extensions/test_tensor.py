"""Unit tests for the CP-ALS tensor engine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.extensions.tensor import cp_als, khatri_rao, unfold


class TestKhatriRao:
    def test_shape(self):
        a = np.ones((3, 2))
        b = np.ones((4, 2))
        assert khatri_rao(a, b).shape == (12, 2)

    def test_columns_are_kroneckers(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(3, 2))
        b = rng.normal(size=(4, 2))
        kr = khatri_rao(a, b)
        for r in range(2):
            assert np.allclose(kr[:, r], np.kron(a[:, r], b[:, r]))

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            khatri_rao(np.ones((3, 2)), np.ones((4, 3)))


class TestUnfold:
    def test_shapes(self):
        t = np.arange(24.0).reshape(2, 3, 4)
        assert unfold(t, 0).shape == (2, 12)
        assert unfold(t, 1).shape == (3, 8)
        assert unfold(t, 2).shape == (4, 6)

    def test_mode0_consistent_with_cp_model(self):
        # X(0) must equal A · khatri_rao(B, C)ᵀ for a CP tensor.
        rng = np.random.default_rng(1)
        a, b, c = (rng.normal(size=(n, 2)) for n in (3, 4, 5))
        tensor = np.einsum("ir,jr,kr->ijk", a, b, c)
        assert np.allclose(unfold(tensor, 0), a @ khatri_rao(b, c).T)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            unfold(np.zeros((2, 2, 2)), 3)

    def test_non_3way_rejected(self):
        with pytest.raises(ConfigurationError):
            unfold(np.zeros((2, 2)), 0)


class TestCpAls:
    @pytest.mark.parametrize("rank", [1, 2, 3])
    def test_exact_recovery_real(self, rank):
        rng = np.random.default_rng(rank)
        a, b, c = (rng.normal(size=(n, rank)) for n in (10, 8, 6))
        tensor = np.einsum("ir,jr,kr->ijk", a, b, c)
        decomposition = cp_als(tensor, rank, seed=0)
        assert decomposition.fit > 0.9999

    def test_exact_recovery_complex(self):
        rng = np.random.default_rng(5)
        shapes = (9, 7, 5)
        a, b, c = (
            rng.normal(size=(n, 2)) + 1j * rng.normal(size=(n, 2))
            for n in shapes
        )
        tensor = np.einsum("ir,jr,kr->ijk", a, b, c)
        decomposition = cp_als(tensor, 2, seed=0)
        assert decomposition.fit > 0.9999

    def test_weights_sorted_descending(self):
        rng = np.random.default_rng(2)
        a, b, c = (rng.normal(size=(n, 3)) for n in (10, 8, 6))
        tensor = np.einsum("ir,jr,kr->ijk", a, b, c)
        decomposition = cp_als(tensor, 3, seed=0)
        assert np.all(np.diff(decomposition.weights) <= 0)

    def test_factor_columns_unit_norm(self):
        rng = np.random.default_rng(3)
        a, b, c = (rng.normal(size=(n, 2)) for n in (6, 5, 4))
        tensor = np.einsum("ir,jr,kr->ijk", a, b, c)
        decomposition = cp_als(tensor, 2, seed=0)
        for factor in decomposition.factors:
            assert np.allclose(np.linalg.norm(factor, axis=0), 1.0)

    def test_noisy_tensor_good_fit(self):
        rng = np.random.default_rng(4)
        a, b, c = (rng.normal(size=(n, 2)) for n in (12, 10, 8))
        tensor = np.einsum("ir,jr,kr->ijk", a, b, c)
        noisy = tensor + 0.01 * rng.normal(size=tensor.shape)
        decomposition = cp_als(noisy, 2, seed=0)
        assert decomposition.fit > 0.95

    def test_no_divergence_on_hard_tensor(self):
        # Nearly collinear components — the classic CP swamp; the solver
        # must stay bounded (fit may be imperfect but never explodes).
        rng = np.random.default_rng(6)
        base = rng.normal(size=10)
        a = np.column_stack([base, base + 0.01 * rng.normal(size=10)])
        b, c = (rng.normal(size=(n, 2)) for n in (8, 6))
        tensor = np.einsum("ir,jr,kr->ijk", a, b, c)
        decomposition = cp_als(tensor, 2, seed=0)
        assert np.all(np.isfinite(decomposition.weights))
        assert decomposition.fit > 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            cp_als(np.zeros((2, 2)), 1)
        with pytest.raises(ConfigurationError):
            cp_als(np.ones((2, 2, 2)), 0)
        with pytest.raises(ConfigurationError):
            cp_als(np.zeros((2, 2, 2)), 1)  # zero tensor


class TestCpReconstruct:
    def test_roundtrip_on_exact_tensor(self):
        from repro.extensions.tensor import cp_reconstruct

        rng = np.random.default_rng(9)
        a, b, c = (rng.normal(size=(n, 2)) for n in (5, 4, 3))
        tensor = np.einsum("ir,jr,kr->ijk", a, b, c)
        decomposition = cp_als(tensor, 2, seed=0)
        rebuilt = cp_reconstruct(decomposition)
        assert rebuilt.shape == tensor.shape
        # Accuracy is bounded by ALS convergence (ridge-damped), not
        # reconstruction arithmetic.
        assert np.allclose(rebuilt, tensor, atol=1e-3 * np.abs(tensor).max())
