"""Tests for the CSI-ratio (FarSense-style) estimator."""

import numpy as np
import pytest

from repro import Person, capture_trace, laboratory_scenario
from repro.errors import ConfigurationError
from repro.extensions.csi_ratio import (
    CsiRatioConfig,
    CsiRatioEstimator,
    csi_ratio_series,
)
from repro.rf.hardware import HardwareConfig


class TestRatioSeries:
    def test_shape(self, short_lab_trace):
        ratio = csi_ratio_series(short_lab_trace)
        assert ratio.shape == (short_lab_trace.n_packets, 30)
        assert np.iscomplexobj(ratio)

    def test_cancels_common_hardware_terms(self):
        """With noise off, the ratio of a static scene is packet-constant
        even though the raw phases are scrambled per packet."""
        person = Person(position=(2.2, 3.0, 1.0), heartbeat=None)
        scenario = laboratory_scenario([person], clutter_seed=41)
        hw = HardwareConfig(noise_sigma=0.0, agc_jitter_sigma=0.0, seed=41)
        import dataclasses

        from repro.physio.motion import ActivityScript, ActivityState, MotionEvent

        empty = dataclasses.replace(
            scenario,
            activity=ActivityScript(
                events=(MotionEvent(ActivityState.NO_PERSON, 0.0, 10.0),)
            ),
        )
        trace = capture_trace(empty, duration_s=5.0, seed=41, hardware=hw)
        ratio = csi_ratio_series(trace)
        assert np.max(np.std(ratio.real, axis=0)) < 1e-9
        assert np.max(np.std(ratio.imag, axis=0)) < 1e-9

    def test_validation(self, short_lab_trace):
        with pytest.raises(ConfigurationError):
            csi_ratio_series(short_lab_trace, (1, 1))
        with pytest.raises(ConfigurationError):
            csi_ratio_series(short_lab_trace, (0, 9))


class TestEstimator:
    def test_breathing_rate_on_lab_trace(self, lab_trace, lab_person):
        estimate = CsiRatioEstimator().estimate_breathing_bpm(lab_trace)
        assert estimate == pytest.approx(lab_person.breathing_rate_bpm, abs=0.8)

    def test_null_point_robustness(self):
        """Seed 103 is a known phase-difference null-point trial (the
        PhaseBeat estimate errs by several bpm); the complex-ratio
        principal axis still sees the motion."""
        from repro.eval.harness import default_subject

        rng = np.random.default_rng(103)
        person = default_subject(rng, with_heartbeat=False)
        scenario = laboratory_scenario([person], clutter_seed=103)
        trace = capture_trace(scenario, duration_s=30.0, seed=103)
        estimate = CsiRatioEstimator().estimate_breathing_bpm(trace)
        assert estimate == pytest.approx(person.breathing_rate_bpm, abs=1.0)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CsiRatioConfig(trend_window_s=0.1, noise_window_s=0.5)
        with pytest.raises(ConfigurationError):
            CsiRatioConfig(target_rate_hz=0.0)

    def test_breathing_series_rate(self, lab_trace):
        series, rate = CsiRatioEstimator().breathing_series(lab_trace)
        assert rate == pytest.approx(20.0)
        assert series.size == lab_trace.n_packets // 20
