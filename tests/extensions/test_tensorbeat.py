"""Tests for the TensorBeat multi-person estimator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.extensions.tensorbeat import (
    TensorBeatConfig,
    TensorBeatEstimator,
    hankel_tensor,
)


def mixed_channels(freqs, fs=20.0, n=1200, n_channels=12, noise=0.1, seed=1):
    """Tones mixed with per-channel random weights (subcarrier diversity)."""
    rng = np.random.default_rng(seed)
    t = np.arange(n) / fs
    tones = [np.sin(2 * np.pi * f * t + i) for i, f in enumerate(freqs)]
    return np.stack(
        [
            sum(rng.uniform(0.3, 1.0) * tone for tone in tones)
            + noise * rng.normal(size=n)
            for _ in range(n_channels)
        ],
        axis=1,
    )


class TestHankelTensor:
    def test_shape(self):
        m = np.arange(20.0).reshape(10, 2)
        tensor = hankel_tensor(m, 4)
        assert tensor.shape == (4, 7, 2)

    def test_hankel_structure(self):
        m = np.arange(8.0)[:, None]
        tensor = hankel_tensor(m, 3)
        # Anti-diagonal constancy: T[i, j] = x[i + j].
        for i in range(3):
            for j in range(6):
                assert tensor[i, j, 0] == i + j

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hankel_tensor(np.zeros(10), 3)
        with pytest.raises(ConfigurationError):
            hankel_tensor(np.zeros((10, 2)), 10)


class TestTensorBeatEstimator:
    def test_two_separated_rates(self):
        m = mixed_channels([0.20, 0.30])
        rates = TensorBeatEstimator().estimate_bpm(m, 20.0, 2)
        assert np.allclose(rates, [12.0, 18.0], atol=0.3)

    def test_three_rates_with_close_pair(self):
        # The paper's Fig. 8 rates including the 0.025 Hz-close pair.
        m = mixed_channels([0.1467, 0.2233, 0.2483])
        rates = TensorBeatEstimator().estimate_bpm(m, 20.0, 3)
        assert np.allclose(rates, [8.80, 13.40, 14.90], atol=0.3)

    def test_single_person(self):
        m = mixed_channels([0.25])
        rates = TensorBeatEstimator().estimate_bpm(m, 20.0, 1)
        assert rates[0] == pytest.approx(15.0, abs=0.3)

    def test_on_simulated_csi(self):
        from repro import (
            Person,
            SinusoidalBreathing,
            capture_trace,
            laboratory_scenario,
        )
        from repro.core.pipeline import prepare_calibrated_matrix

        persons = [
            Person(
                position=pos,
                heartbeat=None,
                breathing=SinusoidalBreathing(
                    frequency_hz=f, amplitude_m=3e-3, phase=0.7 * i
                ),
            )
            for i, (f, pos) in enumerate(
                [(0.1467, (0.8, 5.5, 1.0)), (0.2483, (3.8, 5.8, 1.0))]
            )
        ]
        scenario = laboratory_scenario(persons, clutter_seed=2)
        trace = capture_trace(scenario, duration_s=60.0, seed=2)
        matrix, quality, rate = prepare_calibrated_matrix(trace)
        usable = matrix[:, quality] if quality.any() else matrix
        estimates = TensorBeatEstimator().estimate_bpm(usable, rate, 2)
        assert np.allclose(estimates, [8.80, 14.90], atol=0.5)

    def test_reproducible_for_seed(self):
        m = mixed_channels([0.2, 0.3])
        a = TensorBeatEstimator().estimate_bpm(m, 20.0, 2, seed=5)
        b = TensorBeatEstimator().estimate_bpm(m, 20.0, 2, seed=5)
        assert np.array_equal(a, b)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TensorBeatConfig(band_hz=(0.7, 0.1))
        with pytest.raises(ConfigurationError):
            TensorBeatConfig(decimation=0)
        with pytest.raises(ConfigurationError):
            TensorBeatConfig(extra_rank=-1)
        with pytest.raises(ConfigurationError):
            TensorBeatConfig(n_restarts=0)

    def test_n_persons_validation(self):
        with pytest.raises(ConfigurationError):
            TensorBeatEstimator().estimate_bpm(np.zeros((100, 3)), 20.0, 0)

    def test_too_short_series_rejected(self):
        with pytest.raises(ConfigurationError):
            TensorBeatEstimator(
                TensorBeatConfig(hankel_window=50, decimation=1)
            ).estimate_bpm(np.zeros((40, 3)), 20.0, 1)
