"""Runtime array-contract tests (``repro.contracts``).

Each decorator is exercised both ways: a violating call raises
:class:`ContractError` naming the offending argument and shape, and a
conforming ndarray passes through untouched (same object, zero copies).
"""

import subprocess
import sys

import numpy as np
import pytest

from repro.contracts import (
    ArraySpec,
    check_arrays,
    check_csi,
    check_matrix,
    check_series,
    check_trace,
    contracts_enabled,
)
from repro.errors import ContractError, ReproError
from repro.io_.trace import CSITrace


@check_series("series")
def _identity(series):
    """Return the series exactly as received (identity probe)."""
    return series


@check_arrays(series="n", timestamps_s="n")
def _paired(series, timestamps_s):
    """Require equal-length series and timestamps."""
    return series.size


@check_csi()
def _csi_probe(csi):
    """Accept a raw CSI cube."""
    return csi.shape


@check_matrix("matrix")
def _matrix_probe(matrix):
    """Accept a samples-by-subcarriers matrix."""
    return matrix.shape


@check_arrays(maybe=ArraySpec(axes="n", allow_none=True))
def _optional(maybe=None):
    """Accept an optional 1-D array."""
    return maybe


@check_arrays(flexible=ArraySpec(axes="n|n,k"))
def _flexible(flexible):
    """Accept either a 1-D series or a 2-D matrix."""
    return np.asarray(flexible).ndim


@check_trace()
def _trace_probe(trace):
    """Accept only a CSITrace container."""
    return trace.n_packets


def _make_trace(n_packets=8):
    csi = np.ones((n_packets, 2, 4), dtype=np.complex128)
    timestamps_s = np.arange(n_packets, dtype=np.float64) / 50.0
    return CSITrace(
        csi=csi,
        timestamps_s=timestamps_s,
        sample_rate_hz=50.0,
        subcarrier_indices=np.arange(4),
    )


class TestCheckArrays:
    def test_conforming_ndarray_is_passed_through_uncopied(self):
        series = np.arange(16, dtype=np.float64)
        assert _identity(series) is series

    def test_wrong_ndim_raises_contract_error(self):
        with pytest.raises(ContractError) as excinfo:
            _identity(np.zeros((4, 4)))
        message = str(excinfo.value)
        assert "series" in message
        assert "shape (4, 4)" in message
        assert "1-d array" in message

    def test_wrong_dtype_raises_contract_error(self):
        with pytest.raises(ContractError, match="complex128"):
            _identity(np.zeros(4, dtype=np.complex128))

    def test_none_rejected_unless_allowed(self):
        with pytest.raises(ContractError, match="None"):
            _identity(None)

    def test_allow_none_accepts_none_and_checks_arrays(self):
        assert _optional(None) is None
        with pytest.raises(ContractError):
            _optional(np.zeros((2, 2)))

    def test_named_axis_binds_across_arguments(self):
        series = np.zeros(10)
        assert _paired(series, np.arange(10.0)) == 10
        with pytest.raises(ContractError, match="n == 10"):
            _paired(series, np.arange(9.0))

    def test_sequence_input_is_checked_not_rejected(self):
        assert _flexible([1.0, 2.0, 3.0]) == 1
        assert _flexible([[1.0, 2.0], [3.0, 4.0]]) == 2
        with pytest.raises(ContractError):
            _flexible("not an array of numbers")

    def test_unknown_parameter_fails_at_decoration_time(self):
        with pytest.raises(TypeError, match="no_such_param"):

            @check_arrays(no_such_param="n")
            def oops(series):
                return series

    def test_exact_axis_size_is_enforced(self):
        @check_arrays(pair=ArraySpec(axes="n,2"))
        def takes_pairs(pair):
            return pair

        takes_pairs(np.zeros((5, 2)))
        with pytest.raises(ContractError, match="axis 1 == 2"):
            takes_pairs(np.zeros((5, 3)))

    def test_contract_error_is_both_repro_and_type_error(self):
        with pytest.raises(ReproError):
            _identity(None)
        with pytest.raises(TypeError):
            _identity(None)


class TestShorthands:
    def test_check_csi_requires_3d_complex(self):
        assert _csi_probe(np.ones((4, 2, 8), dtype=np.complex128)) == (4, 2, 8)
        with pytest.raises(ContractError):
            _csi_probe(np.ones((4, 2, 8)))  # real dtype
        with pytest.raises(ContractError):
            _csi_probe(np.ones((4, 8), dtype=np.complex128))  # missing axis

    def test_check_matrix_requires_2d(self):
        assert _matrix_probe(np.zeros((3, 5))) == (3, 5)
        with pytest.raises(ContractError):
            _matrix_probe(np.zeros(5))

    def test_check_trace_accepts_trace_rejects_raw_array(self):
        trace = _make_trace()
        assert _trace_probe(trace) == trace.n_packets
        with pytest.raises(ContractError, match="ndarray"):
            _trace_probe(trace.csi)

    def test_check_trace_unknown_parameter_fails_at_decoration(self):
        with pytest.raises(TypeError, match="'trace'"):

            @check_trace()
            def no_trace_here(series):
                return series


class TestKillSwitch:
    def test_contracts_enabled_by_default(self):
        assert contracts_enabled()

    def test_env_var_strips_decorators(self):
        # Decoration happens at import time, so the kill-switch is probed
        # in a fresh interpreter rather than by monkeypatching os.environ.
        code = (
            "import numpy as np\n"
            "from repro.contracts import check_series, contracts_enabled\n"
            "assert not contracts_enabled()\n"
            "@check_series('series')\n"
            "def f(series):\n"
            "    return 'ok'\n"
            "assert f(np.zeros((2, 2))) == 'ok'\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            env={"REPRO_NO_CONTRACTS": "1", "PYTHONPATH": "src", "PATH": ""},
            cwd=str(__import__("pathlib").Path(__file__).resolve().parents[1]),
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr


class TestPipelineEntryPoints:
    def test_prepare_calibrated_matrix_rejects_raw_array(self):
        from repro.core.pipeline import prepare_calibrated_matrix

        with pytest.raises(ContractError):
            prepare_calibrated_matrix(np.ones((8, 2, 4), dtype=np.complex128))

    def test_v_statistic_rejects_3d_input(self):
        from repro.core.environment import v_statistic

        with pytest.raises(ContractError):
            v_statistic(np.zeros((4, 2, 3)))
