"""Tests for the run-twice determinism sanitizer (`repro.sanitize`).

Two directions are covered: the sanitizer must *pass* on the seeded chaos
scenarios the repo ships (they are byte-reproducible by construction),
and it must *catch* an injected nondeterminism — state shared across runs
through a mutable module-level collection, the exact bug class the
phaselint PL008/PL010 rules ban statically.  The injected-bug tests use
plain runner closures, so they stay fast and fail with a precise
divergence record rather than a flaky scenario.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.sanitize import (
    Divergence,
    SanitizeReport,
    run_twice,
    sanitize_fleet,
    sanitize_solo,
)


class TestRunTwice:
    def test_identical_runs_are_clean(self):
        report = run_twice(
            "toy", lambda: {"events.jsonl": "a\nb", "metrics.json": "{}"}
        )
        assert report.clean
        assert report.divergence is None
        assert report.artifacts == ("events.jsonl", "metrics.json")
        assert "clean" in report.format_text()

    def test_catches_shared_set_growing_across_runs(self):
        # The injected bug: a mutable module-level-style set survives
        # between runs, so run 2 emits a record run 1 never saw.  This is
        # the runtime face of the unordered-iteration/shared-state bug
        # class PL008/PL010 ban statically.
        seen = set()

        def buggy_runner():
            seen.add(f"record-{len(seen)}")
            return {"events.jsonl": "\n".join(sorted(seen))}

        report = run_twice("injected", buggy_runner)
        assert not report.clean
        assert report.divergence.artifact == "events.jsonl"
        assert report.divergence.line_no == 2
        assert report.divergence.first_run == ""
        assert report.divergence.second_run == "record-1"
        assert "DIVERGENT" in report.format_text()

    def test_catches_unsorted_iteration_of_contaminated_state(self):
        # Closer to the wire format: each run serializes its view of a
        # shared cache; the second run's JSON contains an extra key.
        cache = {}

        def buggy_runner():
            cache[f"k{len(cache)}"] = len(cache)
            return {
                "metrics.json": json.dumps(cache, sort_keys=True),
                "events.jsonl": "boot",
            }

        report = run_twice("injected", buggy_runner)
        assert not report.clean
        assert report.divergence.artifact == "metrics.json"

    def test_divergence_carries_trace_context(self):
        calls = []

        def buggy_runner():
            calls.append(None)
            lines = ["trace=t1 admit", "trace=t1 sample", "trace=t1 estimate"]
            lines.append(f"trace=t1 drain run={len(calls)}")
            return {"events.jsonl": "\n".join(lines)}

        report = run_twice("injected", buggy_runner)
        assert not report.clean
        divergence = report.divergence
        assert divergence.line_no == 4
        assert divergence.context == (
            "trace=t1 admit",
            "trace=t1 sample",
            "trace=t1 estimate",
        )
        assert "run=1" in divergence.first_run
        assert "run=2" in divergence.second_run

    def test_missing_artifact_is_a_divergence(self):
        calls = []

        def buggy_runner():
            calls.append(None)
            artifacts = {"events.jsonl": "x"}
            if len(calls) == 1:
                artifacts["extra.json"] = "{}"
            return artifacts

        report = run_twice("injected", buggy_runner)
        assert not report.clean
        assert report.divergence.artifact == "extra.json"

    def test_report_round_trips_to_json(self):
        report = SanitizeReport(
            label="toy",
            artifacts=("events.jsonl",),
            artifact_bytes_total=1,
            divergence=Divergence(
                artifact="events.jsonl",
                line_no=1,
                first_run="a",
                second_run="b",
                context=("ctx",),
            ),
        )
        payload = report.to_dict()
        assert payload["clean"] is False
        assert payload["divergence"]["line_no"] == 1
        assert json.loads(json.dumps(payload)) == payload


@pytest.mark.determinism
class TestSeededScenarios:
    def test_solo_chaos_scenario_is_byte_reproducible(self):
        report = sanitize_solo(
            "source-crash", duration_s=90.0, sample_rate_hz=50.0, seed=11
        )
        assert report.clean, report.format_text()
        assert report.artifacts == (
            "estimates.jsonl",
            "events.jsonl",
            "health.json",
            "metrics.json",
        )
        assert report.artifact_bytes_total > 0

    def test_fleet_chaos_scenario_is_byte_reproducible(self):
        report = sanitize_fleet(
            "shard-crash", n_sessions=6, duration_s=24.0, seed=11
        )
        assert report.clean, report.format_text()
        assert report.artifacts == (
            "events.jsonl",
            "metrics.json",
            "report.json",
        )

    def test_record_crash_resume_is_byte_reproducible(self):
        # The report embeds per-session store digests, so a clean run
        # proves record -> crash -> restart -> resume is byte-identical.
        report = sanitize_fleet(
            "record-crash-resume", n_sessions=6, duration_s=24.0, seed=11
        )
        assert report.clean, report.format_text()
        assert "report.json" in report.artifacts

    def test_learned_rung_scenario_is_byte_reproducible(self):
        # The learned rung adds a trained-model inference to the replayed
        # path; seeded training + serving must still be byte-stable.
        report = sanitize_solo(
            "learned-degradation-burst",
            duration_s=90.0,
            sample_rate_hz=50.0,
            seed=2,
        )
        assert report.clean, report.format_text()
        assert report.artifact_bytes_total > 0

    def test_unknown_scenarios_raise_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown solo"):
            sanitize_solo("nope")
        with pytest.raises(ConfigurationError, match="unknown fleet"):
            sanitize_fleet("nope")


class TestSanitizeCli:
    def test_solo_cli_exits_zero(self, capsys):
        from repro.cli import main

        code = main(
            [
                "sanitize",
                "--scenario", "source-crash",
                "--duration", "90",
                "--sample-rate", "50",
                "--seed", "3",
            ]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_fleet_cli_json_output(self, capsys):
        from repro.cli import main

        code = main(
            [
                "sanitize",
                "--mode", "fleet",
                "--sessions", "6",
                "--seed", "4",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["label"] == "fleet:shard-crash"

    def test_unknown_scenario_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["sanitize", "--scenario", "nope"]) == 2
        assert "unknown solo scenario" in capsys.readouterr().err
