"""Setuptools shim.

This environment has no network access and no ``wheel`` package, so PEP 660
editable installs (which build an editable wheel) cannot run.  Keeping a
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which works offline.  All project metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
