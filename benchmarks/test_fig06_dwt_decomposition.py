"""Fig. 6 — DWT decomposition: breathing in α₄, heart band in β₃+β₄.

Paper: at a 20 Hz processing rate with L = 4 the approximation α₄ covers
0–0.625 Hz (the denoised breathing signal) and β₃+β₄ covers 0.625–2.5 Hz
(the reconstructed heart signal).
"""

from conftest import banner, run_once

from repro.eval.experiments import fig06_dwt_decomposition
from repro.eval.reporting import format_table


def test_fig06_dwt_decomposition(benchmark):
    result = run_once(benchmark, fig06_dwt_decomposition)

    banner("Fig. 6 — DWT band split (db wavelet, L = 4, 20 Hz)")
    print(
        format_table(
            ["band", "range (Hz)", "breathing-tone energy"],
            [
                [
                    "alpha_4 (breathing)",
                    str(result["breathing_band_hz"]),
                    result["breathing_tone_in_breathing_band"],
                ],
                [
                    "beta_3+beta_4 (heart)",
                    str(result["heart_band_hz"]),
                    result["breathing_tone_in_heart_band"],
                ],
            ],
        )
    )
    print(
        "breathing-tone separation ratio: "
        f"{result['band_separation_ratio']:.0f}x"
    )

    # Shape: the paper's band edges, and a decisive separation of the
    # breathing tone into the approximation band.
    assert result["breathing_band_hz"] == (0.0, 0.625)
    assert result["heart_band_hz"] == (0.625, 2.5)
    assert result["band_separation_ratio"] > 100.0
