"""Fig. 4 — data calibration removes DC and high-frequency noise.

Paper: the raw phase differences of all subcarriers carry a DC offset and
high-frequency noise; after Hampel detrend + denoise + 20× downsampling the
series become clean sinusoid-like signals and 10 000 packets shrink to 500.
"""

from conftest import banner, run_once

from repro.eval.experiments import fig04_calibration
from repro.eval.reporting import format_table


def test_fig04_calibration(benchmark):
    result = run_once(benchmark, fig04_calibration)

    banner("Fig. 4 — calibration (raw vs calibrated, subcarrier 15)")
    print(
        format_table(
            ["quantity", "raw", "calibrated"],
            [
                ["samples", result["n_raw_packets"], result["n_calibrated_samples"]],
                ["|DC|", result["raw_dc_abs"], result["calibrated_dc_abs"]],
                [
                    ">2 Hz energy fraction",
                    result["raw_hf_fraction"],
                    result["calibrated_hf_fraction"],
                ],
            ],
        )
    )
    print("paper: 10000 packets -> 500; DC and HF noise removed")

    # Shape assertions per the paper's description.
    assert result["n_raw_packets"] == 10_000
    assert result["n_calibrated_samples"] == 500
    assert result["calibrated_rate_hz"] == 20.0
    assert result["calibrated_dc_abs"] < 0.1 * result["raw_dc_abs"]
    assert result["calibrated_hf_fraction"] < 0.5 * result["raw_hf_fraction"]
