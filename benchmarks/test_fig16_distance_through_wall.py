"""Fig. 16 — breathing error vs distance, through-wall.

Paper: the error rises with distance like the corridor but is uniformly
worse at equal distance (≈ 0.52 vs ≈ 0.3 bpm at 7 m) because the wall
attenuates the signal on every traversal.
"""

import numpy as np
from conftest import banner, run_once

from repro.eval.experiments import (
    fig15_distance_corridor,
    fig16_distance_through_wall,
)
from repro.eval.reporting import format_series


def test_fig16_distance_through_wall(benchmark):
    result = run_once(benchmark, fig16_distance_through_wall, n_trials=8)

    banner("Fig. 16 — mean breathing error vs distance (through-wall)")
    print(
        format_series(
            result["distances_m"],
            result["mean_error_bpm"],
            x_label="distance (m)",
            y_label="mean error (bpm)",
        )
    )
    print("paper: rising curve, worse than the corridor at equal distance")

    errors = np.asarray(result["mean_error_bpm"])
    # Shape: error grows overall from the near to the far end.
    assert errors[-1] > errors[0]

    # Cross-figure shape: through-wall ≥ corridor at the common 7 m point.
    corridor = fig15_distance_corridor(distances_m=(7.0,), n_trials=8)
    wall_at_7 = errors[result["distances_m"].index(7.0)]
    corridor_at_7 = corridor["mean_error_bpm"][0]
    print(
        f"\n7 m comparison: through-wall {wall_at_7:.3f} bpm vs corridor "
        f"{corridor_at_7:.3f} bpm"
    )
    assert wall_at_7 >= corridor_at_7
