"""Ablation — does MAD-based subcarrier selection actually matter?

The paper asserts (Section III-B3) that subcarriers differ in sensitivity
and selecting by MAD improves reliability, but never sweeps the choice.
This ablation estimates the breathing rate from (a) the selected
subcarrier, (b) the *least* sensitive subcarrier, and (c) every subcarrier
in turn (reporting the error spread), over several trials.

Subjects breathe quietly (2.5-3.5 mm chest amplitude): the paper's linear
small-signal theory — and its subcarrier-sensitivity narrative — applies in
that regime.  (At 5+ mm the phase nonlinearity inverts the picture: the
highest-MAD columns carry the most harmonic distortion, an effect the
original paper never encounters because its analysis is linear.)
"""

import numpy as np
from conftest import banner, run_once

from repro.core.breathing import PeakBreathingEstimator
from repro.core.dwt_stage import decompose
from repro.core.pipeline import prepare_calibrated_matrix
from repro.core.subcarrier_selection import select_subcarrier
from repro.errors import EstimationError
from repro.eval.harness import default_subject
from repro.eval.reporting import format_table
from repro.rf.receiver import capture_trace
from repro.rf.scene import laboratory_scenario


def _run(n_trials: int = 10, base_seed: int = 700) -> dict:
    estimator = PeakBreathingEstimator()
    rows = {"selected": [], "worst": [], "all_spread": []}
    for k in range(n_trials):
        seed = base_seed + k
        rng = np.random.default_rng(seed)
        person = default_subject(
            rng,
            with_heartbeat=False,
            breathing_amplitude_range_m=(2.5e-3, 3.5e-3),
        )
        scenario = laboratory_scenario([person], clutter_seed=seed)
        trace = capture_trace(scenario, duration_s=30.0, seed=seed)
        matrix, quality, sample_rate = prepare_calibrated_matrix(trace)
        selection = select_subcarrier(matrix, mask=quality)
        truth = person.breathing_rate_bpm

        def estimate(column: int) -> float:
            bands = decompose(matrix[:, column], sample_rate)
            try:
                return abs(
                    estimator.estimate_bpm(bands.breathing, 20.0) - truth
                )
            except EstimationError:
                return truth  # unusable column scores accuracy 0

        rows["selected"].append(estimate(selection.selected))
        # Worst and per-column comparisons stay within the quality-gated
        # set — deep-faded (unwrap-unstable) columns are unusable for any
        # strategy and would only measure the gate, not the selection rule.
        eligible = np.flatnonzero(quality)
        worst = int(eligible[np.argmin(selection.sensitivities[eligible])])
        rows["worst"].append(estimate(worst))
        per_column = [estimate(int(c)) for c in eligible]
        rows["all_spread"].append(float(np.mean(per_column)))

    return {key: float(np.median(val)) for key, val in rows.items()}


def test_ablation_subcarrier_selection(benchmark):
    result = run_once(benchmark, _run)

    banner("Ablation — subcarrier selection (median |error|, bpm)")
    print(
        format_table(
            ["input series", "median error (bpm)"],
            [
                ["selected (top-k median MAD)", result["selected"]],
                ["least sensitive subcarrier", result["worst"]],
                ["average over all subcarriers", result["all_spread"]],
            ],
        )
    )

    # Shape: the selected subcarrier beats both the worst one and the
    # average over all columns.
    assert result["selected"] <= result["worst"] + 0.05
    assert result["selected"] <= result["all_spread"] + 0.05
    assert result["selected"] < 0.5
