"""Capability — robustness to subject orientation / reflectivity.

The paper claims (Section I, II-B) that phase-difference data is robust
"for different distances or different orientations" but shows no
orientation figure.  Orientation changes how much of the chest faces the
link, i.e. the effective radar cross-section; in the ray model that is the
person's ``reflectivity``.  This bench sweeps reflectivity from side-on
(0.3) to square-on (1.3) and reports the breathing error at each setting.
"""

import numpy as np
from conftest import banner, run_once

from repro import (
    Person,
    PhaseBeat,
    PhaseBeatConfig,
    SinusoidalBreathing,
    capture_trace,
    laboratory_scenario,
)
from repro.errors import EstimationError, NotStationaryError
from repro.eval.reporting import format_series


def _run(n_trials: int = 6, base_seed: int = 950) -> dict:
    pipeline = PhaseBeat(PhaseBeatConfig(enforce_stationarity=False))
    reflectivities = (0.3, 0.55, 0.8, 1.05, 1.3)
    medians = []
    for reflectivity in reflectivities:
        errors = []
        for k in range(n_trials):
            seed = base_seed + k
            rng = np.random.default_rng(seed)
            person = Person(
                position=(2.2 + rng.uniform(-0.3, 0.3),
                          3.0 + rng.uniform(-0.3, 0.3), 1.0),
                breathing=SinusoidalBreathing(
                    frequency_hz=float(rng.uniform(0.2, 0.35)),
                    phase=float(rng.uniform(0, 2 * np.pi)),
                ),
                heartbeat=None,
                reflectivity=reflectivity,
            )
            scenario = laboratory_scenario([person], clutter_seed=seed)
            trace = capture_trace(scenario, duration_s=30.0, seed=seed)
            try:
                result = pipeline.process(trace, estimate_heart=False)
                errors.append(
                    abs(result.breathing_rates_bpm[0] - person.breathing_rate_bpm)
                )
            except (EstimationError, NotStationaryError):
                errors.append(person.breathing_rate_bpm * 0.1)
        medians.append(float(np.median(errors)))
    return {"reflectivities": list(reflectivities), "median_error_bpm": medians}


def test_capability_orientation(benchmark):
    result = run_once(benchmark, _run)

    banner("Capability — robustness to orientation (reflectivity sweep)")
    print(
        format_series(
            result["reflectivities"],
            result["median_error_bpm"],
            x_label="chest reflectivity",
            y_label="median error (bpm)",
        )
    )
    print(
        "\nthe paper's robustness claim: even a side-on subject (weak chest "
        "return) stays within the usable range at lab distances."
    )

    errors = np.asarray(result["median_error_bpm"])
    # Usable at every orientation, and no catastrophic cliff at the
    # weakest setting.
    assert errors.max() < 1.0
    assert errors[0] < 4 * max(errors[-1], 0.1)
