"""Fig. 12 — heart-error CDF with the directional TX.

Paper: median ≈ 1 bpm, 80% of errors under 2.5 bpm, maximum ≈ 10 bpm — an
order of magnitude worse than breathing, because the heart signal is weak
and buried under breathing interference.
"""

from conftest import banner, run_once

from repro.eval.experiments import fig11_breathing_cdf, fig12_heart_cdf
from repro.eval.reporting import format_cdf_summary


def test_fig12_heart_cdf(benchmark):
    result = run_once(benchmark, fig12_heart_cdf, n_trials=20)

    banner("Fig. 12 — heart-error CDF (20 directional-TX lab trials)")
    print(format_cdf_summary("phasebeat-heart", result))
    print(
        f"successful trials: {result['n_successful']}/{result['n_trials']}"
    )
    print("paper: median ~1 bpm, 80% < 2.5 bpm, max ~10 bpm")

    # Shape: low median; a heavier tail than breathing (heart is the hard
    # problem).  The simulator's worst-case sideband confusions exceed the
    # paper's 10 bpm — documented in EXPERIMENTS.md.
    assert result["median"] < 2.0
    assert result["n_successful"] >= 0.8 * result["n_trials"]
    # Heart errors are an order of magnitude above breathing errors.
    breathing = fig11_breathing_cdf(n_trials=10)
    assert result["max"] > breathing["phasebeat"]["median"]
