"""Ablation — what does the Hampel calibration contribute?

The paper motivates detrending (DC "affects subcarrier selection, peak
detection, and FFT frequency estimation") and denoising, but never runs the
pipeline without them.  This ablation feeds the breathing estimator with
(a) fully calibrated data, (b) decimated-but-raw data (no Hampel at all),
and (c) detrended-but-not-denoised data, reporting *median* errors over the
trials (single null-point trials would otherwise dominate a mean).

Subjects breathe quietly (2.5-3.5 mm chest amplitude): the paper's linear
small-signal theory — and its subcarrier-sensitivity narrative — applies in
that regime.  (At 5+ mm the phase nonlinearity inverts the picture: the
highest-MAD columns carry the most harmonic distortion, an effect the
original paper never encounters because its analysis is linear.)
"""

import numpy as np
from conftest import banner, run_once

from repro.core.breathing import PeakBreathingEstimator
from repro.core.dwt_stage import decompose
from repro.core.phase_difference import phase_difference
from repro.core.pipeline import prepare_calibrated_matrix
from repro.core.subcarrier_selection import select_subcarrier
from repro.dsp.hampel import hampel_filter
from repro.dsp.resample import decimate
from repro.errors import EstimationError
from repro.eval.harness import default_subject
from repro.eval.reporting import format_table
from repro.rf.receiver import capture_trace
from repro.rf.scene import laboratory_scenario


def _estimate_from(series: np.ndarray, truth: float) -> float:
    bands = decompose(series, 20.0)
    try:
        rate = PeakBreathingEstimator().estimate_bpm(bands.breathing, 20.0)
    except EstimationError:
        return truth
    return min(abs(rate - truth), truth)


def _run(n_trials: int = 10, base_seed: int = 720) -> dict:
    errors = {"full": [], "raw": [], "detrend_only": []}
    for k in range(n_trials):
        seed = base_seed + k
        rng = np.random.default_rng(seed)
        person = default_subject(
            rng,
            with_heartbeat=False,
            breathing_amplitude_range_m=(2.5e-3, 3.5e-3),
        )
        scenario = laboratory_scenario([person], clutter_seed=seed)
        trace = capture_trace(scenario, duration_s=30.0, seed=seed)
        truth = person.breathing_rate_bpm

        # (a) Full calibration (both pairs, quality-gated selection).
        matrix, quality, _ = prepare_calibrated_matrix(trace)
        column = select_subcarrier(matrix, mask=quality).selected
        errors["full"].append(_estimate_from(matrix[:, column], truth))

        # The remaining variants reuse the same selected column so the
        # ablation isolates the preprocessing, not the selection.
        pair = (0, 1) if column < trace.n_subcarriers else (1, 2)
        col = phase_difference(trace, pair)[:, column % trace.n_subcarriers]

        # (b) No Hampel at all: plain 20x decimation of the raw series.
        raw = decimate(col - col.mean(), 20)
        errors["raw"].append(_estimate_from(raw, truth))

        # (c) Detrend only (no denoising before decimation).
        trend = hampel_filter(col, min(2000, col.size), 0.01)
        detrended = decimate(col - trend, 20)
        errors["detrend_only"].append(_estimate_from(detrended, truth))
    return {key: float(np.median(val)) for key, val in errors.items()}


def test_ablation_calibration(benchmark):
    result = run_once(benchmark, _run)

    banner("Ablation — calibration stages (median |error|, bpm)")
    print(
        format_table(
            ["preprocessing", "median error (bpm)"],
            [
                ["detrend + denoise + downsample (paper)", result["full"]],
                ["detrend + downsample only", result["detrend_only"]],
                ["downsample only (no Hampel)", result["raw"]],
            ],
        )
    )

    # Shape: the full chain is at least as good as the partial ones, and
    # plainly usable on its own.
    assert result["full"] <= result["raw"] + 0.05
    assert result["full"] <= result["detrend_only"] + 0.05
    assert result["full"] < 0.5
