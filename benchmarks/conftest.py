"""Benchmark-suite helpers.

Each benchmark regenerates one figure of the paper's evaluation section:
it runs the corresponding experiment once (via the ``benchmark`` fixture so
``pytest benchmarks/ --benchmark-only`` drives it), prints the same
rows/series the paper reports, and asserts the qualitative *shape* — who
wins, by what rough factor, where crossovers fall.  Absolute numbers differ
from the paper's testbed; EXPERIMENTS.md records both sides.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark fixture.

    Experiment functions are deterministic and expensive; a single round
    both times them and yields the result object for shape assertions.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def banner(title: str) -> None:
    """Print a section banner so the bench output reads as a report."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
