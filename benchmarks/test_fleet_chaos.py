"""Robustness — the fleet gateway under fleet-scale chaos.

Not a paper figure: PhaseBeat monitors one subject per capture.  A
deployment serves *fleets* of sessions through one gateway, and faults
there are correlated — a worker shard dies, a backlog floods in, a
consumer slows down, several upstreams vanish together.  This benchmark
replays every shipped fleet scenario through :mod:`repro.service.fleet`
and checks the three fleet invariants:

* **isolation** — unfaulted sessions' estimate streams stay byte-identical
  to a solo run of the same trace (identity fields excluded);
* **recovery** — faulted, non-shed sessions emit fresh estimates again by
  the recovery horizon (judged against their fault-free solo baseline);
* **bounded shedding** — the gateway never sheds past its budget, and when
  it must shed it walks the pressure ladder (throttle → degrade → shed)
  rather than killing sessions outright.

A 100-session acceptance run and a same-seed byte-reproducibility check
pin the scale story; a tightened-budget run proves the shed ladder honours
an explicit cap and sheds lowest-priority sessions first.
"""

import pytest
from conftest import banner, run_once

from repro.obs import MetricsRegistry
from repro.service.fleet import (
    FLEET_SCENARIOS,
    FleetConfig,
    run_fleet_chaos,
)

# Event kinds that must appear in each scenario's fleet event log — a
# regression that silently skips the fault path cannot pass on the
# invariants alone.
EXPECTED_KINDS = {
    "shard-crash": {"shard-crash", "monitor-crash", "monitor-restart"},
    "ingest-burst": {"session-throttled", "session-degraded"},
    "slow-consumer": {
        "session-throttled",
        "session-degraded",
        "session-pressure-recovered",
    },
    "correlated-source-loss": {"session-finished"},
    "overload-shed": {
        "session-throttled",
        "session-degraded",
        "session-shed",
    },
}


@pytest.mark.parametrize("name", sorted(FLEET_SCENARIOS))
def test_fleet_chaos(benchmark, name):
    scenario = FLEET_SCENARIOS[name]
    registry = MetricsRegistry()
    report = run_once(
        benchmark,
        run_fleet_chaos,
        scenario,
        n_sessions=12,
        seed=0,
        registry=registry,
    )

    banner(f"Fleet chaos — {name}")
    print(f"scenario: {scenario.description}")
    summary = report.fleet_summary
    print(
        f"fleet:    {summary['n_sessions']} sessions / "
        f"{summary['n_shards']} shards, {summary['rounds']} rounds"
    )
    print(f"status:   {summary['by_status']}")
    print(
        f"faulted:  {len(report.faulted_ids)}, shed "
        f"{len(report.shed_ids)}/{report.max_shed_sessions}, "
        f"queue drops {summary['n_queue_dropped']}"
    )
    print(f"estimates: {report.n_estimates_total}")
    print("claim: unfaulted sessions are byte-identical to solo runs; "
          "faulted ones recover or are shed within budget")

    assert report.violations() == []
    kinds = set(report.events.kinds())
    missing = EXPECTED_KINDS[name] - kinds
    assert not missing, f"missing fleet events {sorted(missing)}"
    if name == "overload-shed":
        # Degradation must precede shedding for every shed session.
        for sid in report.shed_ids:
            session_kinds = [
                e.kind for e in report.events if e.subject == sid
            ]
            assert session_kinds.index(
                "session-degraded"
            ) < session_kinds.index("session-shed")


def test_fleet_shed_budget_is_a_hard_cap():
    """A tightened budget sheds exactly that many, lowest priority first.

    The overload scenario drives six sessions to shed-eligibility but the
    budget only covers three.  The gateway must stop at three (lowest
    priority first) — and the report must honestly flag the unprotected
    survivors as unrecovered rather than pretending the budget had no
    cost.
    """
    config = FleetConfig(max_shed_sessions=3)
    report = run_fleet_chaos(
        FLEET_SCENARIOS["overload-shed"],
        n_sessions=12,
        seed=0,
        fleet_config=config,
        check_isolation=False,
    )

    banner("Fleet chaos — shed budget cap")
    print(f"shed {len(report.shed_ids)}/3 budget: {list(report.shed_ids)}")
    print(f"unprotected survivors: {list(report.unrecovered_ids)}")

    assert len(report.shed_ids) == 3
    assert "shed-over-budget" not in report.violations()
    # Priorities cycle 0/1/2 over the 6 targeted sessions; the three shed
    # must all come from the lowest priorities present.
    shed_priorities = sorted(
        int(sid[-4:]) % 3 for sid in report.shed_ids
    )
    assert shed_priorities == [0, 0, 1]
    # The targeted sessions the budget could not protect kept their
    # flooded queues and are reported unrecovered — the report does not
    # hide the cost of capping protective shedding.  (A session whose
    # trace never recovers even fault-free is excused by its baseline.)
    unprotected = set(report.faulted_ids) - set(report.shed_ids)
    assert set(report.unrecovered_ids) <= unprotected
    assert len(report.unrecovered_ids) >= 2


def test_fleet_100_sessions_shard_crash_acceptance(benchmark):
    """The acceptance-scale run: 100 sessions, one shard dies."""
    registry = MetricsRegistry()
    report = run_once(
        benchmark,
        run_fleet_chaos,
        FLEET_SCENARIOS["shard-crash"],
        n_sessions=100,
        seed=0,
        registry=registry,
    )

    banner("Fleet chaos — 100-session shard crash")
    summary = report.fleet_summary
    print(f"status:  {summary['by_status']}")
    print(
        f"faulted: {len(report.faulted_ids)} on the crashed shard; "
        f"estimates {report.n_estimates_total}"
    )

    assert report.violations() == []
    assert summary["by_status"]["finished"] == 100
    assert len(report.faulted_ids) >= 100 // 8


def test_fleet_runs_are_byte_reproducible():
    """Same seed, same scenario → identical event log and metrics."""
    reports = [
        run_fleet_chaos(
            FLEET_SCENARIOS["shard-crash"],
            n_sessions=12,
            seed=42,
            registry=MetricsRegistry(),
            check_isolation=False,
        )
        for _ in range(2)
    ]

    banner("Fleet chaos — byte reproducibility")
    print(f"event log: {len(reports[0].events)} events")
    print(f"metrics:   {len(reports[0].metrics_json)} bytes of canonical JSON")

    assert reports[0].events_jsonl == reports[1].events_jsonl
    assert reports[0].metrics_json == reports[1].metrics_json
