"""Capability — fleet gateway scale: one thousand concurrent sessions.

The fleet layer exists so one process can monitor many subjects; this
bench pins the scale story.  A 1000-session fleet (round-robin over a
small trace pool, so simulation cost stays bounded) runs fault-free
through the gateway with fleet metrics on, and the headline numbers are

* **sessions / second** — whole sessions fully processed per wall second;
* **session-seconds / second** — aggregate simulated capture time
  digested per wall second (the fleet-level realtime factor: at 1000
  sessions of 24 s each, a factor of 1000 means every session runs in
  realtime simultaneously).

Set ``FLEET_BENCH_JSON=path`` to write the machine-readable report (CI
uploads it as an artifact).  Set ``FLEET_REGRESSION_GATE=1`` to fail if
throughput regresses more than 20 % below the committed
``BENCH_fleet.json`` baseline at the repo root.
"""

import json
import os
import time
from pathlib import Path

from conftest import banner

from repro.eval.reporting import format_table
from repro.obs import MetricsRegistry
from repro.service.fleet import FleetScenario, run_fleet_chaos

_N_SESSIONS = 1000
_DURATION_S = 24.0
_SAMPLE_RATE_HZ = 50.0
_TRACE_POOL = 4
# Conservative in-test floor: the committed reference run shows far more;
# this only catches "the gateway stopped being able to run a fleet at
# all", not the exact number on a noisy shared runner.
_MIN_SESSION_SECONDS_PER_S = 50.0
_BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


def test_capability_fleet_1k_sessions():
    scenario = FleetScenario(
        name="fault-free", faults=(), description="capability run"
    )
    registry = MetricsRegistry()

    start = time.perf_counter()
    report = run_fleet_chaos(
        scenario,
        n_sessions=_N_SESSIONS,
        duration_s=_DURATION_S,
        sample_rate_hz=_SAMPLE_RATE_HZ,
        seed=0,
        trace_pool_size=_TRACE_POOL,
        registry=registry,
        check_isolation=False,
    )
    wall_s = time.perf_counter() - start

    n_cores = os.cpu_count() or 1
    sessions_per_s = _N_SESSIONS / wall_s
    session_seconds_per_s = _N_SESSIONS * _DURATION_S / wall_s
    summary = report.fleet_summary

    result = {
        "config": {
            "n_sessions": _N_SESSIONS,
            "duration_s": _DURATION_S,
            "sample_rate_hz": _SAMPLE_RATE_HZ,
            "trace_pool_size": _TRACE_POOL,
            "n_shards": summary["n_shards"],
        },
        "wall_s": wall_s,
        "n_cores": n_cores,
        "sessions_per_s": sessions_per_s,
        "sessions_per_core_s": sessions_per_s / n_cores,
        "session_seconds_per_s": session_seconds_per_s,
        "rounds": summary["rounds"],
        "n_estimates_total": report.n_estimates_total,
    }

    banner("Capability — 1000-session fleet (24 s @ 50 Hz each)")
    print(
        format_table(
            ["metric", "value"],
            [
                ["sessions", _N_SESSIONS],
                ["wall time (s)", wall_s],
                ["sessions / second", sessions_per_s],
                ["sessions / core-second", sessions_per_s / n_cores],
                ["session-seconds / second", session_seconds_per_s],
                ["scheduling rounds", summary["rounds"]],
                ["estimates emitted", report.n_estimates_total],
            ],
        )
    )
    print("a factor of 1000 session-seconds/s means all 1000 sessions")
    print("run in realtime simultaneously on one core")

    out_path = os.environ.get("FLEET_BENCH_JSON")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out_path}")

    # Every session must complete; nothing is faulted, so nothing may be
    # shed or left degraded by fleet pressure.
    assert summary["by_status"]["finished"] == _N_SESSIONS
    assert summary["n_shed"] == 0
    assert report.violations() == []
    assert report.n_estimates_total > 0
    # Fleet observability was on and populated, labelled by shard only.
    assert '"fleet_sessions_active_count"' in report.metrics_json
    assert '"fleet_shard_queue_depth_packets"' in report.metrics_json
    assert session_seconds_per_s >= _MIN_SESSION_SECONDS_PER_S, (
        f"fleet digested only {session_seconds_per_s:.0f} session-seconds "
        f"per second (floor {_MIN_SESSION_SECONDS_PER_S:.0f})"
    )

    if os.environ.get("FLEET_REGRESSION_GATE") == "1":
        with open(_BASELINE_PATH, encoding="utf-8") as fh:
            baseline = json.load(fh)
        floor = 0.8 * baseline["session_seconds_per_s"]
        assert session_seconds_per_s >= floor, (
            f"fleet throughput {session_seconds_per_s:.0f} "
            f"session-seconds/s regressed more than 20% below the "
            f"committed baseline {baseline['session_seconds_per_s']:.0f} "
            f"(floor {floor:.0f})"
        )
