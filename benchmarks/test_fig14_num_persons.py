"""Fig. 14 — multi-person breathing accuracy by estimator.

Paper: for two persons every method exceeds 90% accuracy; accuracy drops
with the person count, and at four persons root-MUSIC over 30 subcarriers
is the best of the three (then single-subcarrier root-MUSIC, then FFT).
"""

import numpy as np
from conftest import banner, run_once

from repro.eval.experiments import fig14_num_persons
from repro.eval.reporting import format_table


def test_fig14_num_persons(benchmark):
    result = run_once(benchmark, fig14_num_persons, n_trials=6)

    banner("Fig. 14 — breathing accuracy vs number of persons")
    rows = []
    for i, count in enumerate(result["person_counts"]):
        rows.append(
            [
                count,
                result["music_30sc"][i],
                result["music_1sc"][i],
                result["fft"][i],
            ]
        )
    print(
        format_table(
            ["persons", "root-MUSIC 30sc", "root-MUSIC 1sc", "FFT"], rows
        )
    )
    print("paper: all > 0.9 at 2 persons; 30-subcarrier MUSIC wins at 4")

    music30 = np.asarray(result["music_30sc"])
    music1 = np.asarray(result["music_1sc"])
    fft = np.asarray(result["fft"])

    # Shape: two persons are easy for every method.
    assert music30[0] > 0.9
    assert music1[0] > 0.85
    assert fft[0] > 0.85
    # Accuracy does not improve as the cohort grows (allowing trial noise).
    assert music30[-1] <= music30[0] + 0.05
    # At four persons the 30-subcarrier root-MUSIC is the best method.
    assert music30[-1] >= music1[-1] - 0.02
    assert music30[-1] >= fft[-1] - 0.02
