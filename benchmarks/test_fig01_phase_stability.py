"""Fig. 1 — raw CSI phase vs cross-antenna phase difference.

Paper: over 600 consecutive packets, the raw phase of subcarrier 5 is nearly
uniform on [0°, 360°), while the phase difference concentrates into a
~20° sector.
"""

from conftest import banner, run_once

from repro.eval.experiments import fig01_phase_stability
from repro.eval.reporting import format_table


def test_fig01_phase_stability(benchmark):
    result = run_once(benchmark, fig01_phase_stability)

    banner("Fig. 1 — phase stability (600 packets, subcarrier 5)")
    print(
        format_table(
            ["quantity", "raw phase", "phase difference"],
            [
                [
                    "resultant length R",
                    result["raw_resultant_length"],
                    result["diff_resultant_length"],
                ],
                [
                    "99% sector width (deg)",
                    result["raw_sector_deg"],
                    result["diff_sector_deg"],
                ],
            ],
        )
    )
    print("paper: raw ~uniform over 360 deg; difference within ~20 deg")

    # Shape: raw phase is circle-filling, the difference is a narrow sector.
    assert result["raw_resultant_length"] < 0.2
    assert result["diff_resultant_length"] > 0.9
    assert result["raw_sector_deg"] > 300.0
    assert result["diff_sector_deg"] < 45.0
