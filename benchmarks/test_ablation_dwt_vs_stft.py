"""Ablation — DWT vs STFT band splitting (paper Section III-B4 claim).

The paper asserts the DWT beats the FFT/STFT because it gives "optimal
resolution both in the time and frequency domains".  This ablation runs the
identical downstream estimators on breathing/heart bands produced by (a)
the paper's level-4 DWT and (b) an STFT band-pass with the same nominal
bands, over the same captures.

Subjects breathe quietly (2.5-3.5 mm chest amplitude): the paper's linear
small-signal theory — and its subcarrier-sensitivity narrative — applies in
that regime.  (At 5+ mm the phase nonlinearity inverts the picture: the
highest-MAD columns carry the most harmonic distortion, an effect the
original paper never encounters because its analysis is linear.)
"""

import numpy as np
from conftest import banner, run_once

from repro.core.breathing import PeakBreathingEstimator
from repro.core.dwt_stage import decompose
from repro.core.pipeline import prepare_calibrated_matrix
from repro.core.subcarrier_selection import select_subcarrier
from repro.dsp.stft import stft_bandpass
from repro.errors import EstimationError
from repro.eval.harness import default_subject
from repro.eval.reporting import format_table
from repro.rf.receiver import capture_trace
from repro.rf.scene import laboratory_scenario


def _run(n_trials: int = 10, base_seed: int = 780) -> dict:
    estimator = PeakBreathingEstimator()
    errors = {"dwt": [], "stft": []}
    for k in range(n_trials):
        seed = base_seed + k
        rng = np.random.default_rng(seed)
        person = default_subject(
            rng,
            with_heartbeat=False,
            breathing_amplitude_range_m=(2.5e-3, 3.5e-3),
        )
        scenario = laboratory_scenario([person], clutter_seed=seed)
        trace = capture_trace(scenario, duration_s=30.0, seed=seed)
        matrix, quality, rate = prepare_calibrated_matrix(trace)
        column = select_subcarrier(matrix, mask=quality).selected
        series = matrix[:, column]
        truth = person.breathing_rate_bpm

        bands = decompose(series, rate)
        stft_breathing = stft_bandpass(series, rate, (0.05, 0.625))

        for name, signal in (("dwt", bands.breathing), ("stft", stft_breathing)):
            try:
                estimate = estimator.estimate_bpm(signal, rate)
                errors[name].append(min(abs(estimate - truth), truth))
            except EstimationError:
                errors[name].append(truth)
    return {name: float(np.median(vals)) for name, vals in errors.items()}


def test_ablation_dwt_vs_stft(benchmark):
    result = run_once(benchmark, _run)

    banner("Ablation — DWT vs STFT breathing-band split (median |error|, bpm)")
    print(
        format_table(
            ["band splitter", "median error (bpm)"],
            [
                ["DWT approximation alpha_4 (paper)", result["dwt"]],
                ["STFT band-pass 0.05-0.625 Hz", result["stft"]],
            ],
        )
    )
    print(
        "\nboth isolate the breathing band; the DWT needs no window-length "
        "choice and its dyadic split aligns with the paper's 20 Hz chain."
    )

    # Shape: the paper's DWT choice is at least competitive with the STFT
    # alternative, and plainly accurate.
    assert result["dwt"] <= result["stft"] + 0.1
    assert result["dwt"] < 0.5
