"""Fig. 15 — breathing error vs TX–RX distance in the long corridor.

Paper: the mean estimation error grows with the separation (weaker
reflected signal shrinks the dynamic range of the phase difference),
reaching ≈ 0.3 bpm at 7 m and ≈ 0.55 bpm at 11 m.
"""

import numpy as np
from conftest import banner, run_once

from repro.eval.experiments import fig15_distance_corridor
from repro.eval.reporting import format_series


def test_fig15_distance_corridor(benchmark):
    result = run_once(benchmark, fig15_distance_corridor, n_trials=8)

    banner("Fig. 15 — mean breathing error vs distance (corridor)")
    print(
        format_series(
            result["distances_m"],
            result["mean_error_bpm"],
            x_label="distance (m)",
            y_label="mean error (bpm)",
        )
    )
    print("paper: rising curve, ~0.3 bpm @ 7 m, ~0.55 bpm @ 11 m")

    errors = np.asarray(result["mean_error_bpm"])
    # Shape: short range is accurate; error grows with distance overall.
    assert errors[0] < 0.5
    assert errors[-1] > errors[0]
    # The far half of the sweep is worse than the near half.
    half = errors.size // 2
    assert errors[half:].mean() > errors[:half].mean()
