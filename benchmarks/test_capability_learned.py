"""Capability — the learned track beating classical under heavy impairment.

The learned estimator exists for the regimes where the classical
phase-difference chain degrades: long through-wall paths with compound
channel damage (packet loss, timestamp jitter, impulsive bursts, nulled
subcarriers).  This bench trains the shipped model family from the RF
simulator and runs a *paired* head-to-head — every trial's capture is
shared between methods — on exactly that regime, plus the apnea-presence
capability the classical chain does not have at all:

* **learned margin** — classical median |error| minus learned median
  |error| (bpm) on the heavy through-wall scenario.  The acceptance bar
  is a positive margin of at least 0.5 bpm with the learned median under
  3.5 bpm; the committed reference run shows ~1.9 bpm.
* **apnea accuracy** — held-out classification accuracy of the apnea
  head, which must beat both a 0.75 floor and the majority-class rate.

Set ``LEARN_BENCH_JSON=path`` to write the machine-readable report (CI
uploads it as an artifact).  Set ``LEARN_REGRESSION_GATE=1`` to fail if
the learned median error regresses more than 20 % above the committed
``BENCH_learn.json`` baseline at the repo root.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest
from conftest import banner, run_once

from repro.eval.harness import default_subject, run_breathing_trials
from repro.eval.reporting import format_table
from repro.learn import LearnedEstimator, TrainingConfig, generate_corpus, train
from repro.physio.person import Person
from repro.rf.impairments import (
    BernoulliLoss,
    ImpulsiveCorruption,
    SubcarrierNulls,
    TimestampJitter,
)
from repro.rf.scene import through_wall_scenario

_REPO_ROOT = Path(__file__).resolve().parent.parent
_BASELINE_PATH = _REPO_ROOT / "BENCH_learn.json"

# Acceptance bars (see docs/learned.md): the learned head must beat the
# classical chain by a measurable margin on the heavy scenario, and the
# apnea head must beat both an absolute floor and the base rate.
_MIN_MARGIN_BPM = 0.5
_MAX_LEARNED_MEDIAN_BPM = 3.5
_MIN_APNEA_ACCURACY = 0.75

_N_TRIALS = 12
_TRIAL_SEED = 777
_DURATION_S = 30.0
_SAMPLE_RATE_HZ = 50.0


@pytest.fixture(scope="module")
def bundle():
    """One RF-trained bundle shared by every test in this module."""
    return train(TrainingConfig(mode="rf", n_windows=200, seed=0, with_mlp=True))


def _scenario_factory(k, rng):
    subject = default_subject(rng, with_heartbeat=False)
    person = Person(
        position=(2.5, 0.8, 1.0),
        breathing=subject.breathing,
        heartbeat=None,
    )
    return through_wall_scenario(
        6.5, [person], wall_loss_db=10.0, clutter_seed=_TRIAL_SEED + k
    )


def _heavy_impairments(k, rng):
    # Compound channel damage: the regime of the paper's worst-case
    # through-wall runs, plus commodity-NIC pathologies.
    return [
        BernoulliLoss(loss_fraction=0.4),
        TimestampJitter(std_s=8e-3),
        ImpulsiveCorruption(hit_fraction=0.05, magnitude=12.0),
        SubcarrierNulls(n_nulls=8),
    ]


def test_capability_learned_through_wall(benchmark, bundle):
    learned = LearnedEstimator(bundle)
    results = run_once(
        benchmark,
        run_breathing_trials,
        _scenario_factory,
        _N_TRIALS,
        duration_s=_DURATION_S,
        sample_rate_hz=_SAMPLE_RATE_HZ,
        methods=("phasebeat", "learned"),
        base_seed=_TRIAL_SEED,
        learned=learned,
        impairments_factory=_heavy_impairments,
    )

    summary = {}
    for method in ("phasebeat", "learned"):
        errors = results.errors(method)
        summary[method] = {
            "median_error_bpm": float(np.median(errors)),
            "mean_error_bpm": float(np.mean(errors)),
            "failure_rate": results.failure_rate(method),
        }
    margin = (
        summary["phasebeat"]["median_error_bpm"]
        - summary["learned"]["median_error_bpm"]
    )
    result = {
        "config": {
            "scenario": "through-wall 6.5 m / 10 dB wall",
            "impairments": "loss 0.4 + jitter 8 ms + impulses 5% x12 + 8 nulls",
            "n_trials": _N_TRIALS,
            "duration_s": _DURATION_S,
            "sample_rate_hz": _SAMPLE_RATE_HZ,
            "train": {"mode": "rf", "n_windows": 200, "seed": 0},
        },
        "train_mae_bpm": float(bundle.meta["train_mae_bpm"]),
        "methods": summary,
        "margin_bpm": margin,
    }

    banner("Capability — learned vs classical, heavy through-wall")
    print(
        format_table(
            ["method", "median |err| (bpm)", "mean |err| (bpm)", "failures"],
            [
                [
                    method,
                    row["median_error_bpm"],
                    row["mean_error_bpm"],
                    row["failure_rate"],
                ]
                for method, row in summary.items()
            ],
        )
    )
    print(
        f"claim: the learned head beats the classical chain by >= "
        f"{_MIN_MARGIN_BPM} bpm median on the heavy scenario "
        f"(measured margin {margin:+.2f} bpm)"
    )

    out_path = os.environ.get("LEARN_BENCH_JSON")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out_path}")

    learned_median = summary["learned"]["median_error_bpm"]
    assert margin >= _MIN_MARGIN_BPM, (
        f"learned margin {margin:+.2f} bpm below the {_MIN_MARGIN_BPM} bpm "
        f"acceptance bar"
    )
    assert learned_median <= _MAX_LEARNED_MEDIAN_BPM, (
        f"learned median error {learned_median:.2f} bpm above the "
        f"{_MAX_LEARNED_MEDIAN_BPM} bpm ceiling"
    )
    assert summary["learned"]["failure_rate"] == 0.0

    if os.environ.get("LEARN_REGRESSION_GATE") == "1":
        with open(_BASELINE_PATH, encoding="utf-8") as fh:
            baseline = json.load(fh)
        ceiling = 1.2 * baseline["methods"]["learned"]["median_error_bpm"]
        assert learned_median <= ceiling, (
            f"learned median error {learned_median:.2f} bpm regressed more "
            f"than 20% above the committed baseline "
            f"{baseline['methods']['learned']['median_error_bpm']:.2f} bpm "
            f"(ceiling {ceiling:.2f} bpm)"
        )


def test_capability_learned_apnea(benchmark, bundle):
    # Held-out labelled corpus from a seed disjoint from training.
    corpus = run_once(
        benchmark,
        generate_corpus,
        TrainingConfig(mode="rf", n_windows=64, seed=4321),
    )
    probabilities = bundle.apnea_model.predict_probability(corpus.features)
    labels = corpus.apnea_labels
    predictions = (probabilities >= 0.5).astype(float)
    accuracy = float((predictions == labels).mean())
    base_rate = float(max(labels.mean(), 1.0 - labels.mean()))

    banner("Capability — apnea-presence head (held-out)")
    print(
        format_table(
            ["metric", "value"],
            [
                ["eval windows", len(labels)],
                ["apneic windows", int(labels.sum())],
                ["accuracy", accuracy],
                ["majority-class rate", base_rate],
            ],
        )
    )
    print(
        "claim: the apnea head classifies held-out windows above the "
        f"{_MIN_APNEA_ACCURACY:.2f} floor and the base rate — a capability "
        "the classical chain does not have"
    )

    assert bundle.apnea_model is not None
    assert accuracy >= _MIN_APNEA_ACCURACY, accuracy
    assert accuracy > base_rate, (accuracy, base_rate)
