"""Fig. 8 — multi-person breathing: FFT vs root-MUSIC.

Paper: FFT recovers two persons at 0.20/0.30 Hz accurately, but for three
persons at 0.1467/0.2233/0.2483 Hz the FFT shows only two peaks, while
root-MUSIC recovers all three (0.1467/0.2233/0.2483 in their run) and
separates the 0.025 Hz-close pair.
"""

import numpy as np
from conftest import banner, run_once

from repro.eval.experiments import fig08_multiperson_fft_vs_music
from repro.eval.reporting import format_table


def test_fig08_multiperson_fft_vs_music(benchmark):
    result = run_once(benchmark, fig08_multiperson_fft_vs_music)

    banner("Fig. 8 — breathing rates for 2 and 3 persons (bpm)")
    for label in ("two_persons", "three_persons"):
        data = result[label]
        print(f"\n{label}:")
        print(
            format_table(
                ["", "rates (bpm)"],
                [
                    ["truth", np.round(data["truth_bpm"], 2).tolist()],
                    ["fft", np.round(data["fft_bpm"], 2).tolist()],
                    ["root-music", np.round(data["music_bpm"], 2).tolist()],
                ],
            )
        )

    two = result["two_persons"]
    three = result["three_persons"]

    # Shape: both methods succeed for two persons…
    assert two["fft_errors"].max() < 1.0
    assert two["music_errors"].max() < 1.0
    # …for three persons root-MUSIC resolves everyone while FFT breaks on
    # the close pair (its worst error is an order of magnitude larger).
    assert three["music_errors"].max() < 1.0
    assert three["fft_errors"].max() > 3.0
    assert three["fft_errors"].max() > 5 * three["music_errors"].max()
