"""Fig. 3 — environment detection over a scripted minute.

Paper: sitting → sinusoid-like phase difference; empty room → flat line;
standing up and walking → large fluctuations.  A V-statistic threshold
separates the stationary (usable) state from the rest.
"""

from conftest import banner, run_once

from repro.eval.experiments import fig03_environment_detection
from repro.eval.reporting import format_table


def test_fig03_environment_detection(benchmark):
    result = run_once(benchmark, fig03_environment_detection)

    segment_v = result["segment_mean_v"]
    lo, hi = result["stationary_band"]
    banner("Fig. 3 — environment detection (V per activity segment)")
    print(
        format_table(
            ["segment", "mean V", "classified"],
            [
                [
                    state,
                    v,
                    "stationary" if lo <= v <= hi else (
                        "empty" if v < lo else "motion"
                    ),
                ]
                for state, v in segment_v.items()
            ],
        )
    )
    print(f"stationary band: [{lo}, {hi}]")

    # Shape: the four states are separated exactly as the paper's panel.
    assert segment_v["no_person"] < lo
    assert lo <= segment_v["sitting"] <= hi
    assert segment_v["standing_up"] > hi
    assert segment_v["walking"] > hi
    # Motion deviations dwarf the sitting baseline.
    assert segment_v["walking"] > 5 * segment_v["sitting"]
