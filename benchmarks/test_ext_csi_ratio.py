"""Extension — complex CSI ratio vs phase difference (null-point tails).

The phase difference discards the magnitude half of the cross-antenna
quotient; at phase-null operating points the breathing fundamental then
vanishes and the estimate can lock onto a harmonic.  The FarSense-style
complex-ratio estimator projects the full complex fluctuation on its
principal axis and keeps working there.  This bench compares error
distributions over the same randomized lab trials as Fig. 11.
"""

import numpy as np
from conftest import banner, run_once

from repro import PhaseBeat, PhaseBeatConfig, capture_trace
from repro.errors import EstimationError, NotStationaryError
from repro.eval.harness import default_subject
from repro.eval.reporting import format_table
from repro.extensions import CsiRatioEstimator
from repro.rf.scene import laboratory_scenario


def _run(n_trials: int = 20, base_seed: int = 100) -> dict:
    pipeline = PhaseBeat(PhaseBeatConfig(enforce_stationarity=False))
    ratio = CsiRatioEstimator()
    errors = {"phase_difference": [], "csi_ratio": []}
    for k in range(n_trials):
        seed = base_seed + k
        rng = np.random.default_rng(seed)
        person = default_subject(rng, with_heartbeat=False)
        scenario = laboratory_scenario([person], clutter_seed=seed)
        trace = capture_trace(scenario, duration_s=30.0, seed=seed)
        truth = person.breathing_rate_bpm
        for label, call in (
            (
                "phase_difference",
                lambda: pipeline.process(
                    trace, estimate_heart=False
                ).breathing_rates_bpm[0],
            ),
            ("csi_ratio", lambda: ratio.estimate_breathing_bpm(trace)),
        ):
            try:
                errors[label].append(min(abs(call() - truth), truth))
            except (EstimationError, NotStationaryError):
                errors[label].append(truth)
    return {
        label: {
            "median": float(np.median(values)),
            "p90": float(np.percentile(values, 90)),
            "max": float(np.max(values)),
        }
        for label, values in errors.items()
    }


def test_ext_csi_ratio(benchmark):
    result = run_once(benchmark, _run)

    banner("Extension — CSI ratio vs phase difference (20 lab trials, bpm)")
    print(
        format_table(
            ["method", "median", "p90", "max"],
            [
                [
                    label,
                    stats["median"],
                    stats["p90"],
                    stats["max"],
                ]
                for label, stats in result.items()
            ],
        )
    )
    print(
        "\nthe complex ratio keeps the magnitude observable, so phase-null "
        "operating points (the phase method's worst trials) stay usable."
    )

    phase = result["phase_difference"]
    ratio = result["csi_ratio"]
    # Both methods are accurate at the median; the ratio's worst case is
    # no worse than the phase method's (null-point robustness).
    assert phase["median"] < 0.5
    assert ratio["median"] < 0.8
    assert ratio["max"] <= phase["max"] + 0.5
