"""Fig. 11 — breathing-error CDF: PhaseBeat vs the amplitude method.

Paper: both methods share a ~0.25 bpm median, but 90% of PhaseBeat's errors
fall under 0.5 bpm versus 70% for the amplitude method, with maxima of
0.85 vs 1.7 bpm — the phase difference is more robust, not just as accurate.
"""

from conftest import banner, run_once

from repro.eval.experiments import fig11_breathing_cdf
from repro.eval.reporting import format_cdf_summary, format_table


def test_fig11_breathing_cdf(benchmark):
    result = run_once(benchmark, fig11_breathing_cdf, n_trials=25)

    banner("Fig. 11 — breathing-error CDFs (25 lab trials)")
    for method in ("phasebeat", "amplitude"):
        print(format_cdf_summary(method, result[method]))
    print(
        format_table(
            ["method", "median", "P(err<=0.5)", "max"],
            [
                [
                    m,
                    result[m]["median"],
                    result[m]["frac_under_half_bpm"],
                    result[m]["max"],
                ]
                for m in ("phasebeat", "amplitude")
            ],
        )
    )
    print("paper: medians ~0.25; 90% vs 70% under 0.5 bpm; max 0.85 vs 1.7")

    phasebeat = result["phasebeat"]
    amplitude = result["amplitude"]
    # Shape: comparable medians, PhaseBeat's tail is lighter.
    assert phasebeat["median"] < 0.5
    assert amplitude["median"] < 1.0
    assert phasebeat["frac_under_half_bpm"] > amplitude["frac_under_half_bpm"]
    assert phasebeat["frac_under_half_bpm"] >= 0.75
