"""Capability — faster-than-realtime replay backtesting.

The trace store exists so recorded fleets can be re-run offline; this
bench pins the replay-speed story.  The committed ``corpus/`` (three
20 s scenarios recorded at 30 Hz through the CLI) is replayed through
the full supervised monitor and diffed against its baselines, and the
headline number is

* **replay speedup** — recorded seconds digested per wall second.  The
  acceptance floor is 20x real time; the committed reference run shows
  far more.

Set ``REPLAY_BENCH_JSON=path`` to write the machine-readable report (CI
uploads it as an artifact).  Set ``REPLAY_REGRESSION_GATE=1`` to fail if
the speedup regresses more than 20 % below the committed
``BENCH_replay.json`` baseline at the repo root.
"""

import json
import os
from pathlib import Path

from conftest import banner

from repro.eval.reporting import format_table
from repro.store.backtest import run_backtest

_REPO_ROOT = Path(__file__).resolve().parent.parent
_CORPUS_DIR = _REPO_ROOT / "corpus"
_BASELINE_PATH = _REPO_ROOT / "BENCH_replay.json"
# Conservative in-test floor (the ISSUE's acceptance bar): replay must
# beat real time by 20x even on a noisy shared runner.
_MIN_SPEEDUP = 20.0


def test_capability_replay_backtest():
    report = run_backtest(str(_CORPUS_DIR), seed=0)

    n_cores = os.cpu_count() or 1
    result = {
        "config": {
            "corpus": "corpus",
            "n_scenarios": len(report.results),
            "n_records_total": sum(r.n_records for r in report.results),
            "recorded_s_total": sum(
                r.recorded_duration_s for r in report.results
            ),
        },
        "wall_s": sum(r.wall_s for r in report.results),
        "n_cores": n_cores,
        "speedup_ratio": report.overall_speedup_ratio,
        "per_scenario": {
            r.name: {
                "speedup_ratio": r.speedup_ratio,
                "median_bpm": r.median_bpm,
                "error_bpm": r.error_bpm,
                "n_estimates": r.n_estimates,
            }
            for r in report.results
        },
    }

    banner("Capability — corpus replay backtest (3 x 20 s @ 30 Hz)")
    print(
        format_table(
            ["metric", "value"],
            [
                ["scenarios", len(report.results)],
                ["records replayed", result["config"]["n_records_total"]],
                ["recorded seconds", result["config"]["recorded_s_total"]],
                ["wall time (s)", result["wall_s"]],
                ["replay speedup (x real time)", report.overall_speedup_ratio],
            ],
        )
    )
    print(report.format_text())

    out_path = os.environ.get("REPLAY_BENCH_JSON")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out_path}")

    # Every committed scenario must replay cleanly and hit its baseline.
    assert report.passed, report.format_text()
    for r in report.results:
        assert r.salvage_clean, r.name
    assert report.overall_speedup_ratio >= _MIN_SPEEDUP, (
        f"replay ran at only {report.overall_speedup_ratio:.1f}x real time "
        f"(floor {_MIN_SPEEDUP:.0f}x)"
    )

    if os.environ.get("REPLAY_REGRESSION_GATE") == "1":
        with open(_BASELINE_PATH, encoding="utf-8") as fh:
            baseline = json.load(fh)
        floor = 0.8 * baseline["speedup_ratio"]
        assert report.overall_speedup_ratio >= floor, (
            f"replay speedup {report.overall_speedup_ratio:.1f}x regressed "
            f"more than 20% below the committed baseline "
            f"{baseline['speedup_ratio']:.1f}x (floor {floor:.1f}x)"
        )
