"""Capability — realtime headroom of the processing pipeline.

The paper downsamples 400 Hz packets to 20 Hz precisely so estimation runs
in realtime.  This bench times the *processing* path (phase difference →
calibration → selection → DWT → estimators) on a pre-simulated 30 s
capture and reports the realtime factor: how many seconds of CSI the
pipeline digests per second of compute.
"""

import time

from conftest import banner

from repro import PhaseBeat, PhaseBeatConfig, capture_trace, laboratory_scenario
from repro.eval.reporting import format_table

_TRACE = None


def _get_trace():
    global _TRACE
    if _TRACE is None:
        _TRACE = capture_trace(
            laboratory_scenario(clutter_seed=1), duration_s=30.0, seed=1
        )
    return _TRACE


def test_capability_throughput(benchmark):
    trace = _get_trace()
    pipeline = PhaseBeat(PhaseBeatConfig(enforce_stationarity=False))

    result = benchmark.pedantic(
        lambda: pipeline.process(trace, estimate_heart=True),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    stats = benchmark.stats.stats
    per_run = stats.mean
    realtime_factor = trace.duration_s / per_run

    banner("Capability — pipeline throughput (30 s capture, 400 Hz)")
    print(
        format_table(
            ["metric", "value"],
            [
                ["capture length (s)", trace.duration_s],
                ["packets", trace.n_packets],
                ["processing time (s)", per_run],
                ["realtime factor", realtime_factor],
                ["packets / second", trace.n_packets / per_run],
            ],
        )
    )
    print("realtime operation requires a factor > 1; the paper's design")
    print("target (downsample early, estimate at 20 Hz) leaves large headroom")

    assert result.breathing_rates_bpm
    # Realtime with an order of magnitude of headroom.
    assert realtime_factor > 10.0
