"""Capability — realtime headroom of the processing and streaming paths.

The paper downsamples 400 Hz packets to 20 Hz precisely so estimation runs
in realtime.  Two benches pin that story:

* **one-shot** — the batch pipeline (phase difference → calibration →
  selection → DWT → estimators) over a pre-simulated 30 s capture; reports
  the realtime factor: seconds of CSI digested per second of compute.
* **streaming before/after** — the hopped :class:`StreamingMonitor` over a
  60 s capture, once with ``incremental=False`` (every hop recomputes the
  whole window from scratch — the seed behaviour) and once with the
  incremental trailing-calibration engine.  The improvement factor is the
  headline number of the incremental-kernels work and is gated here at a
  conservative in-test floor; the committed ``BENCH_throughput.json`` at
  the repo root records the reference run (see ``docs/performance.md``).

Set ``THROUGHPUT_BENCH_JSON=path`` to write the machine-readable report
(CI uploads it as an artifact).  Set ``THROUGHPUT_REGRESSION_GATE=1`` to
additionally fail if the measured improvement factor regresses more than
20 % below the committed baseline.
"""

import json
import os
import time
from pathlib import Path

from conftest import banner

from repro import PhaseBeat, PhaseBeatConfig, capture_trace, laboratory_scenario
from repro.core.streaming import StreamingConfig, StreamingMonitor
from repro.eval.reporting import format_table
from repro.obs import Instrumentation, MetricsRegistry

_TRACE = None
_STREAM_TRACE = None

_STREAM_DURATION_S = 60.0
_STREAM_WINDOW_S = 30.0
_STREAM_HOP_S = 1.0
# Conservative in-test floor for the incremental speed-up.  The committed
# reference run shows well above this; the floor only has to catch "the
# incremental path silently stopped being incremental", not defend the
# exact factor against shared-runner noise.
_MIN_IMPROVEMENT_FACTOR = 3.0
_BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


def _get_trace():
    global _TRACE
    if _TRACE is None:
        _TRACE = capture_trace(
            laboratory_scenario(clutter_seed=1), duration_s=30.0, seed=1
        )
    return _TRACE


def _get_stream_trace():
    global _STREAM_TRACE
    if _STREAM_TRACE is None:
        _STREAM_TRACE = capture_trace(
            laboratory_scenario(clutter_seed=1),
            duration_s=_STREAM_DURATION_S,
            seed=1,
        )
    return _STREAM_TRACE


def test_capability_throughput(benchmark):
    trace = _get_trace()
    pipeline = PhaseBeat(PhaseBeatConfig(enforce_stationarity=False))

    result = benchmark.pedantic(
        lambda: pipeline.process(trace, estimate_heart=True),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    stats = benchmark.stats.stats
    per_run = stats.mean
    realtime_factor = trace.duration_s / per_run

    banner("Capability — pipeline throughput (30 s capture, 400 Hz)")
    print(
        format_table(
            ["metric", "value"],
            [
                ["capture length (s)", trace.duration_s],
                ["packets", trace.n_packets],
                ["processing time (s)", per_run],
                ["realtime factor", realtime_factor],
                ["packets / second", trace.n_packets / per_run],
            ],
        )
    )
    print("realtime operation requires a factor > 1; the paper's design")
    print("target (downsample early, estimate at 20 Hz) leaves large headroom")

    assert result.breathing_rates_bpm
    # Realtime with an order of magnitude of headroom.
    assert realtime_factor > 10.0


def _run_streaming(trace, *, incremental: bool) -> dict:
    """Push the whole trace through a fresh monitor and time it."""
    registry = MetricsRegistry()
    monitor = StreamingMonitor(
        trace.sample_rate_hz,
        StreamingConfig(
            window_s=_STREAM_WINDOW_S,
            hop_s=_STREAM_HOP_S,
            incremental=incremental,
        ),
        instrumentation=Instrumentation(registry=registry),
    )
    timestamps = trace.timestamps_s
    csi = trace.csi
    n_windows = 0
    start = time.perf_counter()
    for i in range(trace.n_packets):
        if monitor.push_packet(csi[i], float(timestamps[i])) is not None:
            n_windows += 1
    processing_s = time.perf_counter() - start
    incremental_windows = registry.counter("monitor_incremental_windows_total").value
    return {
        "mode": "incremental" if incremental else "batch",
        "processing_s": processing_s,
        "realtime_factor": trace.duration_s / processing_s,
        "packets_per_s": trace.n_packets / processing_s,
        "windows_per_s": n_windows / processing_s,
        "n_windows": n_windows,
        "incremental_windows": incremental_windows,
    }


def test_streaming_throughput_incremental_vs_batch():
    trace = _get_stream_trace()

    # Warm FFT plans and allocator caches so the first measured mode does
    # not pay one-time costs the second mode skips.
    PhaseBeat(PhaseBeatConfig(enforce_stationarity=False)).process(
        trace, estimate_heart=False
    )

    before = _run_streaming(trace, incremental=False)
    after = _run_streaming(trace, incremental=True)
    improvement = before["processing_s"] / after["processing_s"]

    report = {
        "config": {
            "duration_s": _STREAM_DURATION_S,
            "sample_rate_hz": trace.sample_rate_hz,
            "n_packets": trace.n_packets,
            "window_s": _STREAM_WINDOW_S,
            "hop_s": _STREAM_HOP_S,
        },
        "before": before,
        "after": after,
        "improvement_factor": improvement,
    }

    banner("Capability — streaming throughput (60 s capture, 30 s / 1 s hop)")
    rows = []
    for side in (before, after):
        rows.extend(
            [
                [f"{side['mode']}: processing time (s)", side["processing_s"]],
                [f"{side['mode']}: realtime factor", side["realtime_factor"]],
                [f"{side['mode']}: packets / second", side["packets_per_s"]],
                [f"{side['mode']}: windows / second", side["windows_per_s"]],
            ]
        )
    rows.append(["improvement factor", improvement])
    print(format_table(["metric", "value"], rows))

    out_path = os.environ.get("THROUGHPUT_BENCH_JSON")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out_path}")

    # Both modes saw the same stream and must emit the same cadence.
    assert after["n_windows"] == before["n_windows"] > 0
    # The incremental run actually used the engine — a 1.0x "no regression"
    # result because every window silently fell back to the batch path must
    # fail loudly, not pass quietly.
    assert after["incremental_windows"] == after["n_windows"]
    assert before["incremental_windows"] == 0
    assert after["realtime_factor"] > 1.0
    assert improvement >= _MIN_IMPROVEMENT_FACTOR, (
        f"incremental mode is only {improvement:.2f}x the batch monitor "
        f"(floor {_MIN_IMPROVEMENT_FACTOR}x)"
    )

    if os.environ.get("THROUGHPUT_REGRESSION_GATE") == "1":
        with open(_BASELINE_PATH, encoding="utf-8") as fh:
            baseline = json.load(fh)
        floor = 0.8 * baseline["improvement_factor"]
        assert improvement >= floor, (
            f"improvement factor {improvement:.2f}x regressed more than 20% "
            f"below the committed baseline "
            f"{baseline['improvement_factor']:.2f}x (floor {floor:.2f}x)"
        )
