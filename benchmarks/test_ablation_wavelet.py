"""Ablation — wavelet order and decomposition depth.

The paper fixes "the Daubechies (db) wavelet" at level 4 without comparing
alternatives.  This ablation sweeps db2/db4/db8 and levels 3/4/5 for
single-person breathing estimation.

Subjects breathe quietly (2.5-3.5 mm chest amplitude): the paper's linear
small-signal theory — and its subcarrier-sensitivity narrative — applies in
that regime.  (At 5+ mm the phase nonlinearity inverts the picture: the
highest-MAD columns carry the most harmonic distortion, an effect the
original paper never encounters because its analysis is linear.)
"""

import numpy as np
from conftest import banner, run_once

from repro.core.breathing import PeakBreathingEstimator
from repro.core.dwt_stage import DWTConfig, decompose
from repro.core.pipeline import prepare_calibrated_matrix
from repro.core.subcarrier_selection import select_subcarrier
from repro.errors import EstimationError
from repro.eval.harness import default_subject
from repro.eval.reporting import format_table
from repro.rf.receiver import capture_trace
from repro.rf.scene import laboratory_scenario


def _run(n_trials: int = 8, base_seed: int = 740) -> dict:
    variants = {
        "db2/L4": DWTConfig(wavelet="db2", level=4),
        "db4/L4 (paper)": DWTConfig(wavelet="db4", level=4),
        "db8/L4": DWTConfig(wavelet="db8", level=4),
        "db4/L3": DWTConfig(wavelet="db4", level=3, heart_detail_levels=(2, 3)),
        "db4/L5": DWTConfig(wavelet="db4", level=5, heart_detail_levels=(4, 5)),
    }
    estimator = PeakBreathingEstimator()
    errors: dict = {name: [] for name in variants}
    for k in range(n_trials):
        seed = base_seed + k
        rng = np.random.default_rng(seed)
        person = default_subject(
            rng,
            with_heartbeat=False,
            breathing_amplitude_range_m=(2.5e-3, 3.5e-3),
        )
        scenario = laboratory_scenario([person], clutter_seed=seed)
        trace = capture_trace(scenario, duration_s=30.0, seed=seed)
        matrix, quality, sample_rate = prepare_calibrated_matrix(trace)
        column = select_subcarrier(matrix, mask=quality).selected
        series = matrix[:, column]
        truth = person.breathing_rate_bpm
        for name, config in variants.items():
            bands = decompose(series, sample_rate, config)
            try:
                rate = estimator.estimate_bpm(
                    bands.breathing, bands.sample_rate_hz
                )
                errors[name].append(abs(rate - truth))
            except EstimationError:
                errors[name].append(truth)
    return {name: float(np.median(vals)) for name, vals in errors.items()}


def test_ablation_wavelet(benchmark):
    result = run_once(benchmark, _run)

    banner("Ablation — wavelet order / level (median breathing |error|, bpm)")
    print(
        format_table(
            ["variant", "median error (bpm)"],
            [[name, err] for name, err in result.items()],
        )
    )
    print(
        "\nlevel 4 puts the 0.17-0.62 Hz breathing band entirely inside "
        "alpha_L at a 20 Hz rate; level 5 clips fast breathers (alpha_5 "
        "tops out at 0.31 Hz), level 3 admits more noise."
    )

    paper = result["db4/L4 (paper)"]
    # Shape: the paper's choice is competitive (within 0.15 bpm of the best
    # variant) and accurate in absolute terms.
    best = min(result.values())
    assert paper <= best + 0.15
    assert paper < 0.5
    # Level 5 (breathing band clipped) must not beat the paper's level 4.
    assert result["db4/L5"] >= paper - 0.05
