"""Fig. 9 — heart-rate estimation via FFT with 3-bin refinement.

Paper: the estimated heartbeat frequency is 1.07 Hz against a fingertip
pulse sensor reading of 1.06 Hz — a 0.01 Hz (0.6 bpm) error, with a
directional TX antenna boosting the reflected power.
"""

from conftest import banner, run_once

from repro.eval.experiments import fig09_heart_fft
from repro.eval.reporting import format_table


def test_fig09_heart_fft(benchmark):
    result = run_once(benchmark, fig09_heart_fft)

    banner("Fig. 9 — single-subject heart rate (directional TX)")
    print(
        format_table(
            ["quantity", "Hz", "bpm"],
            [
                ["ground truth", result["truth_hz"], result["truth_bpm"]],
                ["PhaseBeat", result["estimate_hz"], result["estimate_bpm"]],
                ["error", abs(result["truth_hz"] - result["estimate_hz"]),
                 result["error_bpm"]],
            ],
        )
    )
    print("paper: 1.07 Hz estimated vs 1.06 Hz reference (0.6 bpm error)")

    # Shape: sub-bpm error on the canonical subject, comfortably better
    # than the raw FFT bin (2 bpm at this window).
    assert result["error_bpm"] < 1.0
