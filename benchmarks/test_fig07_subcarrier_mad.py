"""Fig. 7 — per-subcarrier MAD and the top-k / median selection rule.

Paper: the MAD profile peaks around one subcarrier (19 in their trace);
with k = 3 the candidates were {19, 18, 2} and subcarrier 18 — the median
of the three MADs — was selected.
"""

import numpy as np
from conftest import banner, run_once

from repro.eval.experiments import fig07_subcarrier_mad
from repro.eval.reporting import format_series


def test_fig07_subcarrier_mad(benchmark):
    result = run_once(benchmark, fig07_subcarrier_mad)

    mads = result["mads"]
    banner("Fig. 7 — subcarrier sensitivity (MAD) and selection")
    print(
        format_series(
            list(range(len(mads))), list(mads),
            x_label="subcarrier", y_label="MAD",
        )
    )
    print(f"candidates (top-3 MAD): {result['candidates']}")
    print(f"selected (median rule): {result['selected']}")
    print("paper: candidates {19, 18, 2}, selected 18")

    candidates = result["candidates"]
    selected = result["selected"]
    # Shape: selection picks the median-MAD candidate of the top 3, which by
    # construction is neither the largest nor the smallest of the three.
    assert len(candidates) == 3
    assert selected == candidates[1]
    candidate_mads = [mads[c] for c in candidates]
    assert candidate_mads[0] >= candidate_mads[1] >= candidate_mads[2]
    # The top candidate is the global argmax of the profile.
    assert candidates[0] == int(np.argmax(mads))
