"""Fig. 5 — calibrated per-subcarrier series patterns.

Paper: after calibration the 30 subcarrier series show a smooth sensitivity
pattern — neighbouring subcarriers respond similarly, and a contiguous group
stands out as most sensitive to the breathing signal.
"""

import numpy as np
from conftest import banner, run_once

from repro.eval.experiments import fig05_subcarrier_patterns
from repro.eval.reporting import format_series


def test_fig05_subcarrier_patterns(benchmark):
    result = run_once(benchmark, fig05_subcarrier_patterns)

    mads = result["mads"]
    banner("Fig. 5 — per-subcarrier pattern after calibration")
    print(
        format_series(
            list(range(len(mads))),
            list(mads),
            x_label="subcarrier",
            y_label="MAD",
        )
    )
    print(
        "mean neighbouring-series correlation: "
        f"{result['mean_neighbour_correlation']:.3f}"
    )

    # Shape: strong correlation between adjacent subcarriers (they sample
    # nearly the same channel), and a genuine sensitivity contrast.
    assert result["mean_neighbour_correlation"] > 0.5
    assert mads.max() > 1.5 * mads.min()
    # Sensitivity profile is smooth: the MAD difference between neighbours
    # is small relative to the overall spread.
    steps = np.abs(np.diff(mads))
    assert np.median(steps) < 0.5 * (mads.max() - mads.min())
