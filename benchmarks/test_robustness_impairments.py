"""Robustness — breathing accuracy under injected capture impairments.

Not a paper figure: PhaseBeat's evaluation assumes a clean 400 pkt/s Intel
5300 capture.  Real frame-capture deployments drop packets (independently
and in bursts) and stall for seconds at a time, so this benchmark sweeps
Bernoulli loss rate and dropout-gap length (the latter on top of 10% loss)
against median breathing-rate error, in the same sweep-and-table style as
the paper's figures.

The headline robustness claim: with 10% packet loss and 1 s dropout gaps,
the gap-aware reclocking pipeline keeps the median breathing error within
0.5 bpm of the clean-capture result.
"""

import numpy as np
from conftest import banner, run_once

from repro.eval.experiments import robustness_impairments
from repro.eval.reporting import format_table


def test_robustness_impairments(benchmark):
    result = run_once(benchmark, robustness_impairments, n_trials=5)

    banner("Robustness — breathing error vs packet loss / dropout gaps")
    print(f"clean-capture median error: {result['clean_median_err']:.3f} bpm")
    print(
        format_table(
            ["loss rate", "median err (bpm)", "p90 err (bpm)"],
            list(
                zip(
                    result["loss_fractions"],
                    result["loss_median_err"],
                    result["loss_p90_err"],
                )
            ),
            title="Bernoulli packet loss",
        )
    )
    print(
        format_table(
            ["gap (s)", "median err (bpm)", "p90 err (bpm)"],
            list(
                zip(
                    result["gap_lengths_s"],
                    result["gap_median_err"],
                    result["gap_p90_err"],
                )
            ),
            title="NIC-reset dropout gap (+10% Bernoulli loss)",
        )
    )
    print(
        "claim: reclocking holds median error within 0.5 bpm of clean "
        "through 10% loss and 1 s gaps"
    )

    clean = result["clean_median_err"]
    loss_med = np.asarray(result["loss_median_err"])
    gap_med = np.asarray(result["gap_median_err"])
    loss_fractions = result["loss_fractions"]
    gaps = result["gap_lengths_s"]

    # The pipeline estimates at all (no NaN sweep cells silently hidden).
    assert result["n_failed"] == 0
    # A clean lab capture is essentially exact.
    assert clean < 1.0
    # Headline criteria: 10% Bernoulli loss, and a 1 s dropout on top of
    # 10% loss, each stay within 0.5 bpm of the clean result.
    assert loss_med[loss_fractions.index(0.1)] <= clean + 0.5
    assert gap_med[gaps.index(1.0)] <= clean + 0.5
    # Zero injected loss must reproduce the clean path exactly.
    assert loss_med[loss_fractions.index(0.0)] == clean
    # Even the harshest sweep points degrade, not explode: a 30% loss or a
    # 2 s hole still lands within a breath of the truth.
    assert loss_med.max() < 2.0
    assert gap_med.max() < 2.0
