"""Extension — TensorBeat (ref. [23]) vs root-MUSIC vs FFT.

The PhaseBeat authors' follow-up replaces root-MUSIC with Hankel-tensor CP
decomposition.  This bench runs all three multi-person estimators on the
same Fig. 8-style three-person captures (including the 0.025 Hz-close
pair) and compares worst-case per-person errors.
"""

import numpy as np
from conftest import banner, run_once

from repro import Person, SinusoidalBreathing, capture_trace, laboratory_scenario
from repro.core.breathing import FFTBreathingEstimator, MusicBreathingEstimator
from repro.core.pipeline import prepare_calibrated_matrix
from repro.errors import EstimationError
from repro.eval.metrics import multi_person_errors
from repro.eval.reporting import format_table
from repro.extensions import TensorBeatEstimator

RATES_HZ = (0.1467, 0.2233, 0.2483)
POSITIONS = ((0.8, 5.5, 1.0), (2.2, 6.2, 1.0), (3.8, 5.8, 1.0))


def _run(n_trials: int = 4, base_seed: int = 1) -> dict:
    truth_bpm = 60.0 * np.asarray(RATES_HZ)
    worst = {"tensorbeat": [], "root_music": [], "fft": []}
    for k in range(n_trials):
        seed = base_seed + k
        persons = [
            Person(
                position=POSITIONS[i],
                heartbeat=None,
                breathing=SinusoidalBreathing(
                    frequency_hz=f, amplitude_m=3e-3, phase=0.7 * i
                ),
            )
            for i, f in enumerate(RATES_HZ)
        ]
        scenario = laboratory_scenario(persons, clutter_seed=seed)
        trace = capture_trace(scenario, duration_s=60.0, seed=seed)
        matrix, quality, rate = prepare_calibrated_matrix(trace)
        usable = matrix[:, quality] if quality.any() else matrix

        estimators = {
            "tensorbeat": lambda: TensorBeatEstimator().estimate_bpm(
                usable, rate, 3
            ),
            "root_music": lambda: MusicBreathingEstimator().estimate_bpm(
                usable, rate, 3
            ),
            "fft": lambda: FFTBreathingEstimator().estimate_bpm(
                usable, rate, 3
            ),
        }
        for name, call in estimators.items():
            try:
                estimates = np.asarray(call())
            except EstimationError:
                estimates = np.empty(0)
            worst[name].append(
                float(multi_person_errors(estimates, truth_bpm).max())
            )
    return {name: float(np.median(val)) for name, val in worst.items()}


def test_ext_tensorbeat_vs_music(benchmark):
    result = run_once(benchmark, _run)

    banner("Extension — TensorBeat vs root-MUSIC vs FFT (3 persons)")
    print(
        format_table(
            ["estimator", "median worst-person error (bpm)"],
            [
                ["TensorBeat (CP tensor)", result["tensorbeat"]],
                ["root-MUSIC (paper)", result["root_music"]],
                ["FFT", result["fft"]],
            ],
        )
    )
    print(
        "\nTensorBeat reads one frequency per CP component, avoiding both "
        "the FFT's Rayleigh limit and root-MUSIC's root-selection issues."
    )

    # Shape: both subspace/tensor methods resolve all three persons; FFT
    # fails on the close pair.  TensorBeat is competitive with root-MUSIC.
    assert result["tensorbeat"] < 1.0
    assert result["root_music"] < 1.0
    assert result["fft"] > 3.0
    assert result["tensorbeat"] <= result["root_music"] + 0.5
