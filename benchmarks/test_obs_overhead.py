"""Observability — the instrumented pipeline stays within 5 % of bare.

The design bet of ``repro.obs`` is that recording into the registry is a
dict lookup plus an add, so enabling metrics must not change the realtime
story.  This bench runs the full processing path (phase difference →
calibration → selection → DWT → estimators) interleaved with and without
:class:`~repro.obs.Instrumentation` and gates the ratio of the *minimum*
round times — minima because they see the least scheduler noise; an
optimistic estimator is exactly what a regression gate wants to compare.

CI's ``obs`` job runs this file and uploads the printed report plus the
``BENCH_obs.json`` artifact written next to the working directory.
"""

import json
import os
import time

from conftest import banner

from repro import PhaseBeat, PhaseBeatConfig, capture_trace, laboratory_scenario
from repro.eval.reporting import format_table
from repro.obs import Instrumentation, MetricsRegistry

_ROUNDS = 8
_MAX_OVERHEAD_FRACTION = 0.05


def _time_once(pipeline, trace) -> float:
    start = time.perf_counter()
    pipeline.process(trace, estimate_heart=True)
    return time.perf_counter() - start


def _measure(bare, instrumented, trace) -> tuple[float, float]:
    """Best-of-N for both pipelines, alternating order each round.

    Alternation keeps a one-sided noise burst (another process waking up
    mid-run) from handing one side all the lucky rounds; minima are the
    least-noise estimator for a regression gate.
    """
    bare_times, instrumented_times = [], []
    for i in range(_ROUNDS):
        pair = [
            (bare_times, bare, trace),
            (instrumented_times, instrumented, trace),
        ]
        if i % 2:
            pair.reverse()
        for times, pipeline, t in pair:
            times.append(_time_once(pipeline, t))
    return min(bare_times), min(instrumented_times)


def test_obs_overhead_under_five_percent():
    trace = capture_trace(
        laboratory_scenario(clutter_seed=1), duration_s=30.0, seed=1
    )
    config = PhaseBeatConfig(enforce_stationarity=False)
    bare = PhaseBeat(config)
    registry = MetricsRegistry()
    instrumented = PhaseBeat(
        config, instrumentation=Instrumentation(registry=registry)
    )

    # Warm-up: first runs pay FFT planning and allocator caches for both.
    _time_once(bare, trace)
    _time_once(instrumented, trace)

    best_bare, best_instrumented = _measure(bare, instrumented, trace)
    if best_instrumented > best_bare * (1.0 + _MAX_OVERHEAD_FRACTION):
        # One full re-measure before failing: a shared-runner noise burst
        # must not fail CI, a real regression will fail twice.
        best_bare, best_instrumented = _measure(bare, instrumented, trace)
    overhead_fraction = best_instrumented / best_bare - 1.0

    n_observations = sum(
        series.count
        for series in registry
        if series.kind == "histogram"
    )

    banner("Observability — instrumentation overhead (full pipeline)")
    print(
        format_table(
            ["metric", "value"],
            [
                ["rounds", _ROUNDS],
                ["best bare (s)", best_bare],
                ["best instrumented (s)", best_instrumented],
                ["overhead fraction", overhead_fraction],
                ["budget", _MAX_OVERHEAD_FRACTION],
                ["metric series", len(registry)],
                ["stage observations", n_observations],
            ],
        )
    )

    out_path = os.environ.get("OBS_BENCH_JSON")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "rounds": _ROUNDS,
                    "best_bare_s": best_bare,
                    "best_instrumented_s": best_instrumented,
                    "overhead_fraction": overhead_fraction,
                    "budget_fraction": _MAX_OVERHEAD_FRACTION,
                    "n_series": len(registry),
                },
                fh,
                indent=2,
            )
        print(f"wrote {out_path}")

    # The registry actually saw the run — a 0 % overhead "win" because
    # instrumentation silently disconnected would be a false pass.
    assert len(registry) > 0
    assert n_observations > 0
    assert best_instrumented <= best_bare * (1.0 + _MAX_OVERHEAD_FRACTION), (
        f"instrumented pipeline is {overhead_fraction:.1%} slower than bare "
        f"(budget {_MAX_OVERHEAD_FRACTION:.0%})"
    )
