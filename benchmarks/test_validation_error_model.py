"""Validation — the injected error model matches the PHY-derived one.

The evaluation harness uses :class:`~repro.rf.hardware.HardwareErrorModel`
to inject the paper's Eq. 3 phase errors analytically.  This bench derives
the same structure from first principles with the symbol-level OFDM PHY
(packet detection + LS channel estimation) and verifies the two agree:

* the per-packet phase slope equals −2π·Δt/N with Δt the residual packet-
  boundary error (the paper's λ_p);
* the slope varies packet to packet (raw phase unusable, Fig. 1);
* the cross-antenna phase difference is invariant to it (Theorem 1).
"""

import numpy as np
from conftest import banner, run_once

from repro.eval.reporting import format_table
from repro.rf.constants import INTEL5300_SUBCARRIER_INDICES
from repro.rf.multipath import StaticRay
from repro.rf.ofdm import OfdmPhy, OfdmPhyConfig


def _run(n_packets: int = 24) -> dict:
    ray = StaticRay(
        amplitudes=np.full(3, 0.7), delays_s=np.full(3, 35e-9)
    )
    phy = OfdmPhy(
        OfdmPhyConfig(snr_db=40.0, timing_jitter_samples=2.0, seed=17)
    )
    m = INTEL5300_SUBCARRIER_INDICES.astype(float)
    slopes, predicted, diff_spread = [], [], []
    for packet in range(n_packets):
        estimate = phy.measure_packet([ray], packet_index=packet)
        phase = np.unwrap(np.angle(estimate.csi[0]))
        slopes.append(float(np.polyfit(m, phase, 1)[0]))
        predicted.append(
            float(-2 * np.pi * estimate.timing_error_samples / 64)
        )
        diff_spread.append(
            np.angle(estimate.csi[0] * np.conj(estimate.csi[1]))
        )
    slopes = np.asarray(slopes)
    predicted = np.asarray(predicted)
    residual = slopes - predicted
    return {
        "n_packets": n_packets,
        "slope_std": float(np.std(slopes)),
        "prediction_rms_error": float(np.sqrt(np.mean(residual**2))),
        "slope_correlation": float(np.corrcoef(slopes, predicted)[0, 1]),
        "difference_spread": float(
            np.std(np.asarray(diff_spread), axis=0).max()
        ),
    }


def test_validation_error_model(benchmark):
    result = run_once(benchmark, _run)

    banner("Validation — emergent (PHY) vs injected (Eq. 3) error model")
    print(
        format_table(
            ["quantity", "value"],
            [
                ["packets measured", result["n_packets"]],
                ["per-packet slope std (rad/index)", result["slope_std"]],
                [
                    "corr(measured slope, −2π·Δt/N)",
                    result["slope_correlation"],
                ],
                ["slope prediction RMS error", result["prediction_rms_error"]],
                [
                    "max cross-antenna diff spread (rad)",
                    result["difference_spread"],
                ],
            ],
        )
    )
    print(
        "\nthe boundary-detection residual Δt reappears as the Eq. 3 slope "
        "λ_p = 2πΔt/N, packet by packet; the cross-antenna difference is "
        "blind to it — the premise of the whole PhaseBeat system."
    )

    # The emergent slope tracks the λ_p prediction almost perfectly…
    assert result["slope_correlation"] > 0.99
    assert result["prediction_rms_error"] < 0.1 * result["slope_std"]
    # …it genuinely scrambles raw phase across packets…
    assert result["slope_std"] > 0.01
    # …and the cross-antenna difference doesn't see it.
    assert result["difference_spread"] < 0.1
