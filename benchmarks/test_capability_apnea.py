"""Capability — apnea detection through the full RF chain.

Not a paper figure: the paper's introduction motivates sleep-disorder and
SIDS monitoring, whose signature is a breathing *pause*.  This bench scores
the envelope-threshold apnea detector on traces with scripted cessation
episodes: event recall, false-alarm count, and boundary timing error.
"""

import numpy as np
from conftest import banner, run_once

from repro import (
    Person,
    PhaseBeat,
    PhaseBeatConfig,
    capture_trace,
    laboratory_scenario,
)
from repro.core import detect_apnea
from repro.eval.reporting import format_table
from repro.physio import ApneicBreathing, SinusoidalBreathing


def _run(n_trials: int = 6, base_seed: int = 900) -> dict:
    pipeline = PhaseBeat(PhaseBeatConfig(enforce_stationarity=False))
    detected, missed, false_alarms = 0, 0, 0
    boundary_errors = []
    rng = np.random.default_rng(base_seed)
    for k in range(n_trials):
        seed = base_seed + k
        # One or two scripted apneas at randomized times/lengths.
        n_events = 1 + k % 2
        starts = sorted(rng.uniform(25.0, 85.0, size=n_events))
        events = []
        last_end = 0.0
        for start in starts:
            start = max(start, last_end + 15.0)
            duration = float(rng.uniform(11.0, 18.0))
            if start + duration > 110.0:
                break
            events.append((float(start), duration))
            last_end = start + duration
        if not events:
            events = [(40.0, 14.0)]

        sleeper = Person(
            position=(2.2, 3.0, 0.6),
            breathing=ApneicBreathing(
                base=SinusoidalBreathing(
                    frequency_hz=float(rng.uniform(0.2, 0.3))
                ),
                pauses_s=tuple(events),
            ),
            heartbeat=None,
        )
        scenario = laboratory_scenario([sleeper], clutter_seed=seed)
        trace = capture_trace(scenario, duration_s=120.0, seed=seed)
        result = pipeline.process(trace, estimate_heart=False)
        found = detect_apnea(
            result.breathing_signal, result.diagnostics.calibrated_rate_hz
        )

        matched = set()
        for start, duration in events:
            hit = None
            for i, event in enumerate(found):
                if i in matched:
                    continue
                overlap = min(event.end_s, start + duration) - max(
                    event.start_s, start
                )
                if overlap > 0.5 * duration:
                    hit = i
                    break
            if hit is None:
                missed += 1
            else:
                matched.add(hit)
                detected += 1
                boundary_errors.append(abs(found[hit].start_s - start))
                boundary_errors.append(
                    abs(found[hit].end_s - (start + duration))
                )
        false_alarms += len(found) - len(matched)
    total = detected + missed
    return {
        "recall": detected / total if total else 0.0,
        "n_events": total,
        "false_alarms": false_alarms,
        "median_boundary_error_s": float(np.median(boundary_errors))
        if boundary_errors
        else float("nan"),
    }


def test_capability_apnea(benchmark):
    result = run_once(benchmark, _run)

    banner("Capability — apnea detection (scripted cessations, full RF chain)")
    print(
        format_table(
            ["metric", "value"],
            [
                ["scripted events", result["n_events"]],
                ["recall", result["recall"]],
                ["false alarms", result["false_alarms"]],
                ["median boundary error (s)", result["median_boundary_error_s"]],
            ],
        )
    )

    assert result["recall"] >= 0.8
    assert result["false_alarms"] <= max(2, result["n_events"] // 2)
    assert result["median_boundary_error_s"] < 3.0
