"""Robustness — supervised monitoring service under scripted chaos.

Not a paper figure: PhaseBeat's evaluation assumes an uninterrupted
capture process.  A deployed monitor also has to survive the *process*
failing — the capture tool crashing, the NIC stalling, the driver
throwing transient errors, the channel degrading — so this benchmark
replays each shipped chaos scenario through the supervised service
(``repro.service``) and checks the recovery contract:

* the run ends healthy with the circuit breaker closed,
* fresh estimates resume after the last fault clears, and
* the post-recovery median breathing error stays within 0.5 bpm of the
  fault-free run on the same scene.

Each scenario's event log is also checked for the expected failure
signature (crash → restart, stall detection, breaker trip/probe/close,
fallback escalation/recovery) so a regression that silently skips the
recovery machinery cannot pass on accuracy alone.
"""

import pytest
from conftest import banner, run_once

from repro.service import SHIPPED_SCENARIOS, run_chaos

TOLERANCE_BPM = 0.5

# One shared scene seed for every scenario.  The scene must be one whose
# clean tail is quiet enough that post-recovery error reflects recovery,
# not capture noise — seed 0's tail has intrinsic multi-bpm outliers that
# fail the budget even fault-free.
CHAOS_SEED = 2

# Event-order signatures: for each scenario, these kinds must all appear,
# in this relative order, in the faulted run's event log.
EXPECTED_ORDER = {
    "source-crash": ["source-crash", "source-restart"],
    "sustained-stall": ["stall-detected", "source-restart"],
    "transient-errors": ["breaker-open", "breaker-half-open",
                         "breaker-closed"],
    "degradation-burst": ["fallback-escalated", "fallback-recovered"],
    "learned-degradation-burst": ["fallback-escalated",
                                  "fallback-recovered"],
    "checkpoint-restore-loss": ["checkpoint", "monitor-crash",
                                "monitor-restart"],
}


def _assert_ordered(kinds, expected):
    cursor = -1
    for kind in expected:
        assert kind in kinds, f"missing event {kind!r}"
        index = kinds.index(kind, cursor + 1)
        cursor = index


@pytest.mark.parametrize("name", sorted(SHIPPED_SCENARIOS))
def test_service_chaos(benchmark, name):
    scenario = SHIPPED_SCENARIOS[name]
    report = run_once(benchmark, run_chaos, scenario, seed=CHAOS_SEED)

    banner(f"Chaos — {name}")
    print(f"scenario: {scenario.description}")
    print(f"capture:  {report.trace_quality}")
    print(f"truth:    {report.truth_bpm:.2f} bpm")
    for event in report.events:
        print(f"  t={event.time_s:7.2f}s  {event.kind}")
    print(
        f"fault-free median error:    "
        f"{report.fault_free_median_error_bpm:.3f} bpm"
    )
    print(
        f"post-recovery median error: "
        f"{report.post_recovery_median_error_bpm:.3f} bpm "
        f"({report.n_post_recovery} fresh estimates after "
        f"t={report.recovery_horizon_s:.0f}s)"
    )
    print(
        f"claim: service recovers and holds post-recovery error within "
        f"{TOLERANCE_BPM} bpm of fault-free"
    )

    assert report.violations(tolerance_bpm=TOLERANCE_BPM) == []
    _assert_ordered(report.events.kinds(), EXPECTED_ORDER[name])
    if name == "checkpoint-restore-loss":
        # The restart must come back from the periodic checkpoint, not
        # cold — that is the incremental checkpoint→restore path this
        # scenario exists to exercise.
        restarts = [
            e for e in report.events if e.kind == "monitor-restart"
        ]
        assert restarts and all(e.detail["restored"] for e in restarts)
    if name == "learned-degradation-burst":
        # Escalation must land on the learned rung (not a classical
        # baseline) and the learned estimator must actually serve
        # estimates through the burst.
        escalations = [
            e for e in report.events if e.kind == "fallback-escalated"
        ]
        assert escalations[0].detail["to_method"] == "learned"
        assert any(e.method == "learned" for e in report.estimates)
    # The last breaker event, if any, must be a close — never leave the
    # service wedged open.
    breaker_kinds = [
        k for k in report.events.kinds() if k.startswith("breaker-")
    ]
    if breaker_kinds:
        assert breaker_kinds[-1] == "breaker-closed"
