"""Fig. 13 — accuracy vs packet sampling rate.

Paper: breathing accuracy is ~98% and flat across 20–600 Hz; heart accuracy
is only ~88% at 20 Hz and reaches ~95% at 400 Hz — the reason PhaseBeat
samples at 400 Hz and downsamples to 20 Hz afterwards.
"""

import numpy as np
from conftest import banner, run_once

from repro.eval.experiments import fig13_sampling_rate
from repro.eval.reporting import format_table


def test_fig13_sampling_rate(benchmark):
    result = run_once(benchmark, fig13_sampling_rate, n_trials=8)

    banner("Fig. 13 — accuracy (and heart-tone SNR) vs sampling rate")
    print(
        format_table(
            ["rate (Hz)", "breathing acc", "heart acc", "heart tone SNR"],
            list(
                zip(
                    result["rates_hz"],
                    result["breathing"],
                    result["heart"],
                    result["heart_tone_snr"],
                )
            ),
        )
    )
    print("paper: breathing ~0.98 flat; heart 0.88 @ 20 Hz -> 0.95 @ 400 Hz")
    print(
        "mechanism: more packets per 20 Hz output sample -> more noise "
        "averaging -> taller heart peak"
    )

    breathing = np.asarray(result["breathing"])
    heart = np.asarray(result["heart"])
    snr = np.asarray(result["heart_tone_snr"])
    rates = result["rates_hz"]
    idx_20 = rates.index(20.0)
    idx_400 = rates.index(400.0)

    # Shape: breathing accuracy is high and flat across rates.
    assert breathing.min() > 0.9
    assert breathing.max() - breathing.min() < 0.07
    # Heart is always the harder problem.
    assert heart.mean() < breathing.mean()
    # The rate mechanism: the heart tone stands much taller above the
    # spectral floor at 400 Hz than at 20 Hz.  (The accuracy *mean* is also
    # perturbed by rate-independent sideband confusions — EXPERIMENTS.md.)
    assert snr[idx_400] > 1.3 * snr[idx_20]
    # Accuracy at the paper's chosen 400 Hz rate stays high.
    assert heart[idx_400] > 0.75
