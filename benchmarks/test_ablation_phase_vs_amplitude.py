"""Ablation — input representation: phase difference vs raw phase vs |CSI|.

The paper's core claim: cross-antenna phase *difference* is the right input
— raw per-antenna phase is scrambled by per-packet hardware offsets
(Theorem 1 / Fig. 1), and amplitude is noisier (Fig. 11).  This ablation
runs the identical downstream pipeline on all three representations.

Subjects breathe quietly (2.5-3.5 mm chest amplitude): the paper's linear
small-signal theory — and its subcarrier-sensitivity narrative — applies in
that regime.  (At 5+ mm the phase nonlinearity inverts the picture: the
highest-MAD columns carry the most harmonic distortion, an effect the
original paper never encounters because its analysis is linear.)
"""

import numpy as np
from conftest import banner, run_once

from repro.baselines.amplitude import AmplitudeMethod
from repro.core.breathing import PeakBreathingEstimator
from repro.core.calibration import calibrate
from repro.core.dwt_stage import decompose
from repro.core.phase_difference import phase_difference, raw_phase
from repro.core.pipeline import prepare_calibrated_matrix
from repro.core.subcarrier_selection import select_subcarrier
from repro.errors import EstimationError
from repro.eval.harness import default_subject
from repro.eval.reporting import format_table
from repro.rf.receiver import capture_trace
from repro.rf.scene import laboratory_scenario


def _pipeline_error(
    matrix: np.ndarray, rate_hz: float, truth: float, quality=None
) -> float:
    calibrated = calibrate(matrix, rate_hz)
    column = select_subcarrier(calibrated.series, mask=quality).selected
    bands = decompose(calibrated.series[:, column], calibrated.sample_rate_hz)
    try:
        rate = PeakBreathingEstimator().estimate_bpm(
            bands.breathing, bands.sample_rate_hz
        )
    except EstimationError:
        return truth
    return min(abs(rate - truth), truth)


def _run(n_trials: int = 10, base_seed: int = 760) -> dict:
    errors = {"phase_difference": [], "raw_phase": [], "amplitude": []}
    for k in range(n_trials):
        seed = base_seed + k
        rng = np.random.default_rng(seed)
        person = default_subject(
            rng,
            with_heartbeat=False,
            breathing_amplitude_range_m=(2.5e-3, 3.5e-3),
        )
        scenario = laboratory_scenario([person], clutter_seed=seed)
        trace = capture_trace(scenario, duration_s=30.0, seed=seed)
        truth = person.breathing_rate_bpm

        # Phase difference gets the full front end (pair diversity +
        # quality gating), exactly as the pipeline runs it.
        matrix, quality, sample_rate = prepare_calibrated_matrix(trace)
        column = select_subcarrier(matrix, mask=quality).selected
        bands = decompose(matrix[:, column], sample_rate)
        try:
            rate = PeakBreathingEstimator().estimate_bpm(
                bands.breathing, bands.sample_rate_hz
            )
            errors["phase_difference"].append(min(abs(rate - truth), truth))
        except EstimationError:
            errors["phase_difference"].append(truth)
        errors["raw_phase"].append(
            _pipeline_error(
                np.unwrap(raw_phase(trace), axis=0), 400.0, truth
            )
        )
        errors["amplitude"].append(
            min(
                abs(
                    AmplitudeMethod().estimate_breathing_bpm(trace) - truth
                ),
                truth,
            )
        )
    return {
        key: {
            "median": float(np.median(val)),
            "p90": float(np.percentile(val, 90)),
        }
        for key, val in errors.items()
    }


def test_ablation_phase_vs_amplitude(benchmark):
    result = run_once(benchmark, _run)

    banner("Ablation — input representation (breathing |error|, bpm)")
    print(
        format_table(
            ["input", "median", "p90"],
            [
                [
                    "phase difference (paper)",
                    result["phase_difference"]["median"],
                    result["phase_difference"]["p90"],
                ],
                [
                    "raw single-antenna phase",
                    result["raw_phase"]["median"],
                    result["raw_phase"]["p90"],
                ],
                [
                    "CSI amplitude",
                    result["amplitude"]["median"],
                    result["amplitude"]["p90"],
                ],
            ],
        )
    )
    print(
        "\nraw phase carries the per-packet PBD/SFO/CFO scramble (Fig. 1); "
        "amplitude carries the per-packet AGC gain jitter.  As in the "
        "paper\'s Fig. 11, phase and amplitude share similar medians — "
        "the phase difference wins in the tail."
    )

    # Shape: raw phase is catastrophically worse than phase difference;
    # phase difference stays usable; the medians of phase and amplitude
    # are comparable (the paper\'s observation) while the unusable raw
    # phase dwarfs both.
    assert result["phase_difference"]["median"] < 1.0
    assert (
        result["raw_phase"]["median"]
        > 3 * result["phase_difference"]["median"]
    )
    assert (
        result["raw_phase"]["median"] > 3 * result["amplitude"]["median"]
    )
